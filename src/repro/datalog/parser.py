"""A small concrete syntax for Datalog with existentials, negation and ⊥.

The syntax mirrors the paper's notation as closely as plain text allows::

    % authors of a book (rule (2) of Section 2)
    triple(?Y, is_author_of, ?Z), triple(?Y, name, ?X) -> query(?X).

    % blank-node invention (Section 2): existential variables in the head
    triple(?X, is_coauthor_of, ?Y) ->
        exists ?Z . triple(?X, is_author_of, ?Z), triple(?Y, is_author_of, ?Z).

    % stratified negation
    less0(?X, ?Y), not not_min(?X) -> zero0(?X).

    % negative constraint (⊥)
    type(?X, ?Y), type(?X, ?Z), disj(?Y, ?Z) -> false.

Terms are variables (``?X``), quoted strings (``"Jeffrey Ullman"``), URIs in
angle brackets (``<http://...>``) or bare identifiers, which may contain
``:``, ``-``, ``/``, ``#`` and ``.`` so that terms like ``rdf:type`` and
``owl:sameAs`` can be written verbatim.  Comments start with ``%`` and run to
the end of the line.  Each clause is terminated with ``.``.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.datalog.atoms import Atom
from repro.datalog.program import Program
from repro.datalog.rules import Constraint, Rule
from repro.datalog.terms import Constant, Term, Variable


class ParseError(ValueError):
    """Raised on malformed program text, with line/column information."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class _Token(NamedTuple):
    kind: str
    value: str
    line: int
    column: int


_TOKEN_SPEC = [
    ("COMMENT", r"%[^\n]*"),
    ("WS", r"[ \t\r\n]+"),
    ("ARROW", r"->|:-"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("VARIABLE", r"\?[A-Za-z_][A-Za-z0-9_']*"),
    ("STRING", r'"[^"]*"'),
    ("URIREF", r"<[^<>\s]*>"),
    ("NOT", r"(?:not\b|¬)"),
    ("EXISTS", r"(?:exists\b|∃)"),
    ("FALSE", r"(?:false\b|bottom\b|⊥)"),
    ("IDENT", r"[A-Za-z0-9_][A-Za-z0-9_:\-/#.]*"),
    ("DOT", r"\."),
    ("MISMATCH", r"."),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    line = 1
    line_start = 0
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup or "MISMATCH"
        value = match.group()
        column = match.start() - line_start + 1
        if kind in ("WS", "COMMENT"):
            newlines = value.count("\n")
            if newlines:
                line += newlines
                line_start = match.start() + value.rfind("\n") + 1
            continue
        if kind == "MISMATCH":
            raise ParseError(f"unexpected character {value!r}", line, column)
        if kind == "IDENT":
            # A greedy identifier may swallow the clause-terminating dot
            # (e.g. ``false.`` or ``query(?X).`` never hits this, but
            # ``-> p.`` style zero-arity heads would).  Strip trailing dots
            # and emit them as DOT tokens.
            stripped = value.rstrip(".")
            trailing = len(value) - len(stripped)
            if stripped:
                tokens.append(_Token(kind, stripped, line, column))
            for i in range(trailing):
                tokens.append(_Token("DOT", ".", line, column + len(stripped) + i))
            continue
        tokens.append(_Token(kind, value, line, column))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: Sequence[_Token]):
        self._tokens = list(tokens)
        self._index = 0

    # -- token utilities -------------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"expected {kind}, found end of input")
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.kind} {token.value!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _accept(self, kind: str) -> Optional[_Token]:
        token = self._peek()
        if token is not None and token.kind == kind:
            return self._advance()
        return None

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._tokens)

    # -- grammar ------------------------------------------------------------------

    def parse_term(self) -> Term:
        token = self._advance()
        if token.kind == "VARIABLE":
            return Variable(token.value)
        if token.kind == "STRING":
            return Constant(token.value[1:-1])
        if token.kind == "URIREF":
            return Constant(token.value[1:-1])
        if token.kind in ("IDENT", "NOT", "EXISTS", "FALSE"):
            return Constant(token.value)
        raise ParseError(
            f"expected a term, found {token.kind} {token.value!r}", token.line, token.column
        )

    def parse_atom(self) -> Atom:
        name_token = self._peek()
        if name_token is None:
            raise ParseError("expected an atom, found end of input")
        if name_token.kind not in ("IDENT", "STRING", "URIREF"):
            raise ParseError(
                f"expected a predicate name, found {name_token.kind} {name_token.value!r}",
                name_token.line,
                name_token.column,
            )
        self._advance()
        predicate = name_token.value
        if name_token.kind == "STRING" or name_token.kind == "URIREF":
            predicate = predicate[1:-1]
        terms: List[Term] = []
        if self._accept("LPAREN"):
            if not self._accept("RPAREN"):
                terms.append(self.parse_term())
                while self._accept("COMMA"):
                    terms.append(self.parse_term())
                self._expect("RPAREN")
        return Atom(predicate, terms)

    def parse_literal(self) -> Tuple[bool, Atom]:
        """Parse an optionally negated atom; returns (is_negative, atom)."""
        if self._accept("NOT"):
            return True, self.parse_atom()
        return False, self.parse_atom()

    def parse_clause(self) -> Union[Rule, Constraint]:
        positive: List[Atom] = []
        negative: List[Atom] = []
        is_negative, atom = self.parse_literal()
        (negative if is_negative else positive).append(atom)
        while self._accept("COMMA"):
            is_negative, atom = self.parse_literal()
            (negative if is_negative else positive).append(atom)
        self._expect("ARROW")

        if self._accept("FALSE"):
            self._expect("DOT")
            if negative:
                raise ParseError("constraints may not contain negated body atoms")
            return Constraint(positive)

        existentials: List[Variable] = []
        if self._accept("EXISTS"):
            token = self._peek()
            while token is not None and token.kind == "VARIABLE":
                existentials.append(Variable(self._advance().value))
                token = self._peek()
            if not existentials:
                raise ParseError("'exists' must be followed by at least one variable")
            self._expect("DOT")

        head: List[Atom] = [self.parse_atom()]
        while self._accept("COMMA"):
            head.append(self.parse_atom())
        self._expect("DOT")
        return Rule(positive, head, body_negative=negative, existential_variables=existentials)

    def parse_program(self) -> Program:
        clauses: List[Union[Rule, Constraint]] = []
        while not self.exhausted:
            clauses.append(self.parse_clause())
        return Program.from_clauses(clauses)


def parse_atom(text: str) -> Atom:
    """Parse a single atom such as ``triple(?X, rdf:type, owl:Class)``."""
    parser = _Parser(_tokenize(text))
    atom = parser.parse_atom()
    if not parser.exhausted:
        raise ParseError(f"trailing input after atom in {text!r}")
    return atom


def parse_rule(text: str) -> Union[Rule, Constraint]:
    """Parse a single rule or constraint (terminated by ``.``)."""
    parser = _Parser(_tokenize(text if text.rstrip().endswith(".") else text + "."))
    clause = parser.parse_clause()
    if not parser.exhausted:
        raise ParseError(f"trailing input after clause in {text!r}")
    return clause


def parse_program(text: str) -> Program:
    """Parse a whole program: a sequence of ``.``-terminated rules/constraints."""
    return _Parser(_tokenize(text)).parse_program()
