"""Programs and queries.

A ``Datalog^{E,neg,⊥}`` program is a finite set of rules and constraints.
A query ``Q = (Pi, p)`` pairs a program with an output predicate that does not
occur in any rule body (Section 3.2).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.datalog.atoms import Atom, Position
from repro.datalog.rules import Constraint, Rule, RuleError
from repro.datalog.terms import Constant


class Program:
    """A finite set of Datalog rules and constraints."""

    def __init__(self, rules: Iterable[Rule] = (), constraints: Iterable[Constraint] = ()):
        self.rules: Tuple[Rule, ...] = tuple(rules)
        self.constraints: Tuple[Constraint, ...] = tuple(constraints)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_clauses(cls, clauses: Iterable[object]) -> "Program":
        """Build a program from a mixed iterable of rules and constraints."""
        rules: List[Rule] = []
        constraints: List[Constraint] = []
        for clause in clauses:
            if isinstance(clause, Rule):
                rules.append(clause)
            elif isinstance(clause, Constraint):
                constraints.append(clause)
            else:
                raise TypeError(f"expected Rule or Constraint, got {type(clause).__name__}")
        return cls(rules, constraints)

    def union(self, other: "Program") -> "Program":
        """The union of two programs (duplicate clauses are kept once)."""
        rules = list(dict.fromkeys(self.rules + other.rules))
        constraints = list(dict.fromkeys(self.constraints + other.constraints))
        return Program(rules, constraints)

    def __add__(self, other: "Program") -> "Program":
        return self.union(other)

    def with_rules(self, extra: Iterable[Rule]) -> "Program":
        """A new program with ``extra`` rules appended (constraints kept)."""
        return Program(tuple(self.rules) + tuple(extra), self.constraints)

    # -- basic protocol ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rules) + len(self.constraints)

    def __iter__(self):
        yield from self.rules
        yield from self.constraints

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Program)
            and set(self.rules) == set(other.rules)
            and set(self.constraints) == set(other.constraints)
        )

    def __hash__(self) -> int:
        """Order-insensitive content hash (matches ``__eq__``).

        Programs are immutable by convention; hashability lets the analysis
        and stratification caches key on them, so re-translating the same
        query does not re-run wardedness checks or SCC computations.
        """
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = self.__dict__["_hash"] = hash(
                (frozenset(self.rules), frozenset(self.constraints))
            )
        return cached

    def __repr__(self) -> str:
        return f"Program({len(self.rules)} rules, {len(self.constraints)} constraints)"

    def __str__(self) -> str:
        lines = [f"{r}." for r in self.rules] + [f"{c}." for c in self.constraints]
        return "\n".join(lines)

    # -- inspection -------------------------------------------------------------

    def ex(self) -> "Program":
        """``ex(Pi)``: the program without its constraints (Section 3.2)."""
        return Program(self.rules, ())

    def positive_program(self) -> "Program":
        """``Pi+``: drop negative atoms from every rule (and all constraints)."""
        return Program(tuple(r.positive_part() for r in self.rules), ())

    @property
    def schema(self) -> FrozenSet[str]:
        """``sch(Pi)``: every predicate occurring in the program."""
        preds: Set[str] = set()
        for rule in self.rules:
            preds |= rule.predicates
        for constraint in self.constraints:
            preds |= constraint.body_predicates
        return frozenset(preds)

    @property
    def head_predicates(self) -> FrozenSet[str]:
        """Predicates defined (derived) by some rule head — the IDB predicates."""
        return frozenset(p for rule in self.rules for p in rule.head_predicates)

    @property
    def body_predicates(self) -> FrozenSet[str]:
        """Predicates occurring in some rule body (either polarity)."""
        preds: Set[str] = set()
        for rule in self.rules:
            preds |= rule.body_predicates
        for constraint in self.constraints:
            preds |= constraint.body_predicates
        return frozenset(preds)

    @property
    def edb_predicates(self) -> FrozenSet[str]:
        """Predicates never derived: purely extensional."""
        return self.schema - self.head_predicates

    @property
    def constants(self) -> FrozenSet[Constant]:
        """All constants mentioned by the rules and constraints."""
        consts: Set[Constant] = set()
        for rule in self.rules:
            consts |= rule.constants
        for constraint in self.constraints:
            for atom in constraint.body:
                consts |= atom.constants
        return frozenset(consts)

    def arities(self) -> Dict[str, int]:
        """Arity of every predicate; raises on inconsistent use."""
        arities: Dict[str, int] = {}
        for clause in self:
            atoms: Tuple[Atom, ...]
            if isinstance(clause, Rule):
                atoms = clause.body + clause.head
            else:
                atoms = clause.body
            for atom in atoms:
                known = arities.get(atom.predicate)
                if known is None:
                    arities[atom.predicate] = atom.arity
                elif known != atom.arity:
                    raise RuleError(
                        f"predicate {atom.predicate} used with arities {known} and {atom.arity}"
                    )
        return arities

    def positions(self) -> FrozenSet[Position]:
        """``pos(Pi)``: every position of every predicate of the program."""
        return frozenset(
            Position(pred, i + 1)
            for pred, arity in self.arities().items()
            for i in range(arity)
        )

    @property
    def has_existentials(self) -> bool:
        """True iff some rule has existential head variables."""
        return any(r.has_existentials for r in self.rules)

    @property
    def has_negation(self) -> bool:
        """True iff some rule has negated body atoms."""
        return any(r.has_negation for r in self.rules)

    @property
    def has_constraints(self) -> bool:
        """True iff the program carries negative constraints."""
        return bool(self.constraints)

    @property
    def is_plain_datalog(self) -> bool:
        """True iff plain Datalog: no existentials, negation, or constraints."""
        return not (self.has_existentials or self.has_negation or self.has_constraints)

    def rules_defining(self, predicate: str) -> Tuple[Rule, ...]:
        """The rules whose head mentions ``predicate``."""
        return tuple(r for r in self.rules if predicate in r.head_predicates)

    def fresh_predicate(self, prefix: str) -> str:
        """A predicate name not yet used by the program."""
        existing = self.schema
        if prefix not in existing:
            return prefix
        i = 0
        while f"{prefix}_{i}" in existing:
            i += 1
        return f"{prefix}_{i}"


class Query:
    """A query ``Q = (Pi, p)``: a program plus an output predicate.

    The output predicate must not occur in the body of any rule or constraint
    of the program (Section 3.2).  ``output_arity`` may be given explicitly
    when the program does not mention the output predicate at all (e.g. for a
    query that is unsatisfiable by construction).
    """

    def __init__(self, program: Program, output_predicate: str, output_arity: Optional[int] = None):
        self.program = program
        self.output_predicate = output_predicate
        if output_predicate in program.body_predicates:
            raise RuleError(
                f"output predicate {output_predicate!r} occurs in a rule body"
            )
        arities = program.arities()
        if output_arity is None:
            output_arity = arities.get(output_predicate)
        if output_arity is None:
            raise RuleError(
                f"cannot determine the arity of output predicate {output_predicate!r}; "
                "pass output_arity explicitly"
            )
        self.output_arity = output_arity

    def __repr__(self) -> str:
        return f"Query({self.output_predicate!r}/{self.output_arity}, {self.program!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Query)
            and self.program == other.program
            and self.output_predicate == other.output_predicate
            and self.output_arity == other.output_arity
        )
