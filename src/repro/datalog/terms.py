"""Terms of the Datalog substrate: constants (URIs), labelled nulls, variables.

The paper assumes three pairwise disjoint, countably infinite sets:

* ``U`` — URIs / constants,
* ``B`` — blank nodes / labelled nulls,
* ``V`` — variables (written with a leading ``?``).

The same sets are shared by the RDF data model and the relational model, which
is what lets the translation ``tau_db(G)`` (Section 5.1) simply reuse RDF URIs
as Datalog constants.
"""

from __future__ import annotations

import itertools
from typing import Union


class Constant:
    """An element of ``U``: a URI or any other constant value.

    Constants compare by value and are hashable, so they can populate sets,
    dictionary keys, and database tuples directly.  ``_tid`` memoises the
    term's dense integer ID in the engine's dictionary-encoding layer
    (:mod:`repro.engine.interning`); it is identity-local cache state, never
    part of the value, and never pickled (a foreign process has its own
    table).
    """

    __slots__ = ("value", "_tid")

    def __init__(self, value: str):
        if not isinstance(value, str):
            raise TypeError(f"constant value must be a string, got {type(value).__name__}")
        self.value = value
        self._tid = None

    def __getstate__(self):
        """Pickle the value only — interned IDs do not cross processes."""
        return self.value

    def __setstate__(self, state):
        """Restore from the pickled value with a cold ID cache."""
        self.value = state
        self._tid = None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        return hash((Constant, self.value))

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return self.value

    def __lt__(self, other: "Constant") -> bool:
        if not isinstance(other, Constant):
            return NotImplemented
        return self.value < other.value

    @property
    def is_ground(self) -> bool:
        """Always True: constants are ground by definition."""
        return True


class Null:
    """An element of ``B``: a labelled null (blank node).

    Nulls are the values invented by existential quantifiers during the chase.
    They compare by label.  ``Null.fresh()`` hands out globally fresh labels.
    """

    __slots__ = ("label", "_tid")

    _counter = itertools.count()

    def __init__(self, label: str):
        if not isinstance(label, str):
            raise TypeError(f"null label must be a string, got {type(label).__name__}")
        self.label = label
        self._tid = None

    def __getstate__(self):
        """Pickle the label only — interned IDs do not cross processes."""
        return self.label

    def __setstate__(self, state):
        """Restore from the pickled label with a cold ID cache."""
        self.label = state
        self._tid = None

    @classmethod
    def fresh(cls, hint: str = "z") -> "Null":
        """Return a null with a label never handed out before by this factory."""
        return cls(f"_:{hint}{next(cls._counter)}")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Null) and self.label == other.label

    def __hash__(self) -> int:
        return hash((Null, self.label))

    def __repr__(self) -> str:
        return f"Null({self.label!r})"

    def __str__(self) -> str:
        return self.label

    def __lt__(self, other: "Null") -> bool:
        if not isinstance(other, Null):
            return NotImplemented
        return self.label < other.label

    @property
    def is_ground(self) -> bool:
        """Always False: a null is a placeholder, not a ground value."""
        return False


class Variable:
    """An element of ``V``: a query variable, written ``?Name`` in the paper."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not isinstance(name, str):
            raise TypeError(f"variable name must be a string, got {type(name).__name__}")
        # Normalise: store without the leading '?' so Variable("?X") == Variable("X").
        self.name = name[1:] if name.startswith("?") else name
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return hash((Variable, self.name))

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return f"?{self.name}"

    def __lt__(self, other: "Variable") -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self.name < other.name

    @property
    def is_ground(self) -> bool:
        """Always False: variables are never ground."""
        return False


Term = Union[Constant, Null, Variable]


def term_from_token(token: str) -> Term:
    """Build a term from its textual form.

    ``?X`` becomes a :class:`Variable`, ``_:b1`` becomes a :class:`Null`, and
    anything else becomes a :class:`Constant`.  Quoted strings keep their
    quotes stripped.
    """
    if token.startswith("?"):
        return Variable(token)
    if token.startswith("_:"):
        return Null(token)
    if len(token) >= 2 and token[0] == '"' and token[-1] == '"':
        return Constant(token[1:-1])
    if len(token) >= 2 and token[0] == "<" and token[-1] == ">":
        return Constant(token[1:-1])
    return Constant(token)


def is_constant(term: Term) -> bool:
    """True iff ``term`` belongs to ``U``."""
    return isinstance(term, Constant)


def is_null(term: Term) -> bool:
    """True iff ``term`` belongs to ``B``."""
    return isinstance(term, Null)


def is_variable(term: Term) -> bool:
    """True iff ``term`` belongs to ``V``."""
    return isinstance(term, Variable)
