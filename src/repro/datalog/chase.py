"""The chase procedure for Datalog with existential quantification.

The chase (Section 3.2) exhaustively applies rules to a database, inventing
fresh labelled nulls for existential head variables.  We implement:

* the **restricted** chase (a rule application is skipped when the head is
  already satisfied by extending the triggering homomorphism), which is the
  variant that terminates on all the programs built in this library's
  translations, and
* the **oblivious** chase (every trigger fires exactly once), useful for the
  theoretical constructions of Section 4.

The chase of a Datalog∃ program may in general be infinite, so the engine
takes explicit resource bounds (``max_steps`` and ``max_null_depth``) and
either stops gracefully or raises :class:`ChaseNonTermination`, as requested.

Negation is handled the way the stratified semantics needs it: the engine can
be given a fixed *negation reference* instance; a trigger is discarded when
one of its negative body atoms is satisfied in that reference (this realises
the indefinite grounding ``Pi^I`` of Section 3.2).

Rule bodies are evaluated through the shared join-plan core
(:mod:`repro.engine`): each rule is compiled once into a
:class:`~repro.engine.plan.CompiledRule` (selectivity-ordered joins, plan-time
bound/free resolution, precompiled negation probes and head-satisfaction
plans).  :func:`match_atoms` remains as the compatibility wrapper for callers
that match ad-hoc atom sequences (constraint checks, analysis, tests).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Sequence, Set, Tuple

from repro.datalog.atoms import Atom, unify_with_fact
from repro.datalog.database import Instance
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Null, Term, Variable
from repro.engine.interning import TERMS
from repro.engine.mode import batch_enabled
from repro.engine.parallel import maybe_session
from repro.engine.plan import compile_body, compile_rule
from repro.engine.stats import STATS
from repro.obs.trace import TRACER


class ChaseNonTermination(RuntimeError):
    """Raised when a resource bound is exceeded and ``on_limit='raise'``."""


@dataclass
class ChaseResult:
    """Outcome of a chase run."""

    instance: Instance
    steps: int
    completed: bool
    limit_reason: Optional[str] = None
    invented_nulls: int = 0
    #: Delta rounds executed by :meth:`ChaseEngine.resume` (0 for full runs).
    delta_rounds: int = 0

    def __iter__(self) -> Iterator[Atom]:
        return iter(self.instance)


@dataclass
class ChaseState:
    """Resumable bookkeeping carried across incremental chase rounds.

    A :class:`~repro.engine.incremental.DeltaSession` hands the same state
    object to the initial :meth:`ChaseEngine.chase` and every later
    :meth:`ChaseEngine.resume`, so the null-depth map survives between
    batches (depth bounds keep applying to continuation rounds) and the
    session can report lifetime totals.  The ``max_steps`` budget stays
    *per call*: each push gets a fresh allowance — bounding a runaway
    program without an ever-growing total eventually bricking a long-lived
    stream — while ``steps``/``invented`` accumulate for reporting.
    """

    #: Invention depth of every labelled null seen so far (inputs are 0),
    #: keyed by the null's dictionary-encoded term ID
    #: (:mod:`repro.engine.interning`) — a slot value tests as a null with
    #: one bit operation in the batch trigger loops.
    null_depth: Dict[int, int] = field(default_factory=dict)
    #: Cumulative restricted-chase steps fired under this state (reporting
    #: only; the per-call budget does not read it).
    steps: int = 0
    #: Cumulative nulls invented under this state.
    invented: int = 0


#: Rule -> stable textual signature, the deterministic-null key component.
#: Cached because resumable sessions re-enter the chase once per push per
#: stratum, and re-serialising every rule each time is pure waste (rules are
#: immutable and hash by content, like the plan caches' keys).
_SIGNATURE_CACHE: Dict[Rule, str] = {}


def _rule_signature(rule: Rule) -> str:
    """The cached ``str(rule)`` used in deterministic-null keys."""
    signature = _SIGNATURE_CACHE.get(rule)
    if signature is None:
        if len(_SIGNATURE_CACHE) >= 4096:
            _SIGNATURE_CACHE.clear()
        signature = _SIGNATURE_CACHE[rule] = str(rule)
    return signature


def _term_key(value: Term) -> str:
    """A stable, collision-free serialisation of a ground term (nulls allowed).

    Length-prefixed (netstring style): term values are arbitrary strings, so
    separator characters alone could let two distinct frontiers serialise
    identically; a prefix-free encoding cannot alias.  Deterministic-null
    keys must be **content**-addressed — never ID-addressed — because term
    IDs depend on per-process interning order while the labels must stay
    byte-stable across pushes, re-runs, and processes; batch-mode frontier
    IDs are therefore decoded back to terms before keying.
    """
    if isinstance(value, Constant):
        return f"c{len(value.value)}:{value.value}"
    if isinstance(value, Null):
        return f"n{len(value.label)}:{value.label}"
    raise TypeError(f"frontier values must be ground terms, got {value!r}")


def match_atoms(
    atoms: Sequence[Atom],
    instance: Instance,
    initial: Optional[Dict[Variable, Term]] = None,
) -> Iterator[Dict[Variable, Term]]:
    """All homomorphisms mapping every atom of ``atoms`` into ``instance``.

    Variables already bound by ``initial`` are respected (and included in the
    yielded substitutions).  Thin wrapper over the compiled join-plan core:
    the (cached) plan fixes the join order and per-position checks once, so
    repeated calls over the same body pay no per-call strategy cost.
    """
    atoms = tuple(atoms)
    prebound = frozenset(initial) if initial else frozenset()
    return compile_body(atoms, prebound).execute(instance, initial)


def satisfies_some(
    atoms: Sequence[Atom], instance: Instance, substitution: Dict[Variable, Term]
) -> bool:
    """True iff at least one of ``atoms`` (under ``substitution``) holds in ``instance``."""
    for atom in atoms:
        grounded = atom.apply(substitution)
        for fact in instance.matching(grounded):
            if unify_with_fact(grounded, fact) is not None:
                return True
    return False


class ChaseEngine:
    """Configurable chase engine for Datalog∃ programs (optionally with negation)."""

    def __init__(
        self,
        max_steps: int = 200_000,
        max_null_depth: Optional[int] = None,
        on_limit: str = "raise",
        restricted: bool = True,
        deterministic_nulls: bool = False,
    ):
        """Configure resource bounds and chase variant.

        ``deterministic_nulls=True`` replaces the global ``Null.fresh``
        counter with content-addressed labels: each invented null is named by
        a digest of (rule, frontier binding, existential variable), so the
        *same* trigger invents the *same* null in every run — a cold run, an
        incremental :class:`~repro.engine.incremental.DeltaSession`
        continuation, or a stratum re-run all agree label for label.  Under
        the restricted chase this is purely a naming change (a trigger never
        fires twice: the second time its head is already satisfied); under
        the oblivious chase two triggers that agree on the frontier share
        nulls, which collapses their head facts — leave it off there unless
        that identification is wanted.
        """
        if on_limit not in ("raise", "stop"):
            raise ValueError("on_limit must be 'raise' or 'stop'")
        self.max_steps = max_steps
        self.max_null_depth = max_null_depth
        self.on_limit = on_limit
        self.restricted = restricted
        self.deterministic_nulls = deterministic_nulls

    def _fresh_null(
        self, signature: str, frontier_values, existential: Variable
    ) -> Null:
        """Invent one null: globally fresh, or content-addressed (stable)."""
        if not self.deterministic_nulls:
            return Null.fresh(existential.name.lower())
        parts = (signature, existential.name, *map(_term_key, frontier_values))
        key = "".join(f"{len(part)}:{part}" for part in parts)
        digest = hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]
        return Null(f"_:d{digest}")

    # -- public API ------------------------------------------------------------

    def chase(
        self,
        database: Iterable[Atom],
        program: Program,
        negation_reference: Optional[Instance] = None,
        *,
        reuse_instance: bool = False,
        session=None,
        state: Optional[ChaseState] = None,
    ) -> ChaseResult:
        """Run the chase of ``program`` over ``database``.

        ``negation_reference`` is the instance against which negated body
        atoms are evaluated (the previous stratum's result under the
        stratified semantics).  When omitted, negated atoms are evaluated
        against the *initial* instance, which is only correct for programs
        whose negated predicates are never derived within the same run.

        ``reuse_instance=True`` chases **in place** when ``database`` is
        already a plain :class:`Instance`: no copy, no re-index — the caller
        gets the same (mutated) object back in the result.  This is how
        :class:`~repro.datalog.semantics.StratifiedSemantics` threads one
        live instance through all strata, taking a frozen
        :meth:`~repro.datalog.database.Instance.snapshot` per stratum as the
        negation reference instead of rebuilding the index each time.

        ``session`` (engine-internal) supplies an externally owned
        :class:`~repro.engine.parallel.ParallelSession` bound to the working
        instance, so a caller chasing the same instance repeatedly (one chase
        per stratum) reuses one worker replica instead of resetting and
        re-shipping the whole instance per call; it is ignored unless it is
        bound to the instance actually chased, and never closed here.

        ``state`` carries resumable bookkeeping (:class:`ChaseState`): when
        supplied, the null-depth map is read from and written back to it and
        the lifetime step/null totals accumulate onto it — this is how
        :class:`~repro.engine.incremental.DeltaSession` threads an initial
        chase and its later :meth:`resume` continuations together.  The
        ``max_steps`` budget stays per call.
        """
        # Otherwise copy into a plain Instance: the working set may receive
        # nulls even when the input is a (constants-only) Database, and the
        # caller's input must stay untouched.
        if reuse_instance and type(database) is Instance:
            instance = database
        else:
            instance = Instance(database)
        reference = negation_reference if negation_reference is not None else instance
        if state is None:
            null_depth: Dict[int, int] = {tid: 0 for tid in instance.null_ids()}
        else:
            null_depth = state.null_depth
            for tid in instance.null_ids():
                null_depth.setdefault(tid, 0)
        compiled = [compile_rule(rule) for rule in program.rules]

        # Body matching honours the process-wide execution mode; all paths
        # materialise the trigger list for this round before firing and
        # produce it in the same order, and all invent nulls in
        # ``sorted_existentials`` order, so every mode builds the same
        # instance atom for atom.  The batch path works on slot rows
        # throughout (RowOps templates), and the parallel session distributes
        # exactly that matching across the worker pool (firing stays here).
        # Negation stays a per-trigger check in every mode — not a batched
        # pre-filter — because ``reference`` may be the working instance
        # itself, which mutates as triggers fire.
        use_batch = batch_enabled()
        owned_session = None
        if session is not None and (
            not use_batch or session.instance is not instance
        ):
            session = None
        if session is None and use_batch:
            session = owned_session = maybe_session(instance, compiled)

        try:
            return self._chase_loop(
                instance, reference, compiled, null_depth, use_batch, session, state
            )
        finally:
            if owned_session is not None:
                owned_session.close()

    def _chase_loop(
        self, instance, reference, compiled, null_depth, use_batch, session, state=None
    ) -> ChaseResult:
        steps = 0
        invented = 0
        fired: Set[Tuple[int, Tuple[Tuple[Variable, Term], ...]]] = set()
        limit_reason: Optional[str] = None
        signatures = (
            [_rule_signature(crule.rule) for crule in compiled] if self.deterministic_nulls else None
        )

        run_start = time.perf_counter_ns() if TRACER.enabled else 0
        changed = True
        rounds = 0
        while changed:
            changed = False
            rounds += 1
            if TRACER.enabled:
                round_start = time.perf_counter_ns()
                steps_before = steps
            for rule_index, crule in enumerate(compiled):
                rule = crule.rule
                if use_batch:
                    if session is not None:
                        triggers = session.full_rows(crule)
                    else:
                        triggers = crule.plan.run_batch(instance)
                    ops = crule.row_ops(crule.plan)
                else:
                    triggers = list(crule.substitutions(instance))
                    ops = None
                for trigger in triggers:
                    if use_batch:
                        if crule.negation and ops.negation_blocked_row(
                            trigger, reference
                        ):
                            continue
                        trigger_key = (rule_index, ops.binding_key(trigger))
                    else:
                        if crule.negation and crule.negation_blocked(
                            trigger, reference
                        ):
                            continue
                        trigger_key = (
                            rule_index,
                            tuple(
                                sorted(
                                    trigger.items(),
                                    key=lambda item: item[0].name,
                                )
                            ),
                        )
                    if not self.restricted:
                        if trigger_key in fired:
                            continue
                    else:
                        if use_batch:
                            satisfied = self._head_satisfied_row(
                                crule, ops, trigger, instance
                            )
                        else:
                            satisfied = crule.head_satisfied(trigger, instance)
                        if satisfied:
                            continue
                    # Resource accounting.
                    if steps >= self.max_steps:
                        limit_reason = f"max_steps={self.max_steps} exceeded"
                        break
                    if use_batch:
                        depth = self._values_depth_ids(trigger, null_depth)
                    else:
                        depth = self._values_depth(trigger.values(), null_depth)
                    if (
                        self.max_null_depth is not None
                        and rule.has_existentials
                        and depth + 1 > self.max_null_depth
                    ):
                        limit_reason = (
                            f"max_null_depth={self.max_null_depth} exceeded"
                        )
                        if self.on_limit == "raise":
                            raise ChaseNonTermination(limit_reason)
                        continue
                    added = 0
                    if use_batch:
                        if signatures is not None and crule.sorted_existentials:
                            frontier = TERMS.decode(
                                trigger[slot] for _, slot in ops.frontier_slots
                            )
                        else:
                            frontier = ()
                        fresh_ids = []
                        for existential in crule.sorted_existentials:
                            if signatures is None:
                                fresh = Null.fresh(existential.name.lower())
                            else:
                                fresh = self._fresh_null(
                                    signatures[rule_index], frontier, existential
                                )
                            nid = TERMS.intern_term(fresh)
                            fresh_ids.append(nid)
                            null_depth[nid] = depth + 1
                            invented += 1
                        for key in ops.head_keys_row(trigger + tuple(fresh_ids)):
                            if instance.add_key(key) is not None:
                                added += 1
                    else:
                        extension = dict(trigger)
                        if signatures is not None and crule.sorted_existentials:
                            frontier = tuple(
                                trigger[variable] for variable in crule.sorted_frontier
                            )
                        else:
                            frontier = ()
                        for existential in crule.sorted_existentials:
                            if signatures is None:
                                fresh = Null.fresh(existential.name.lower())
                            else:
                                fresh = self._fresh_null(
                                    signatures[rule_index], frontier, existential
                                )
                            extension[existential] = fresh
                            null_depth[TERMS.intern_term(fresh)] = depth + 1
                            invented += 1
                        for fact in crule.head_facts(extension):
                            if instance.add_fact(fact):
                                added += 1
                    fired.add(trigger_key)
                    steps += 1
                    STATS.triggers_fired += 1
                    if added:
                        changed = True
                if limit_reason:
                    break
            if TRACER.enabled:
                TRACER.record(
                    "chase.round",
                    round_start,
                    round=rounds,
                    steps=steps - steps_before,
                )
            if limit_reason:
                break

        if TRACER.enabled:
            TRACER.record(
                "chase.run", run_start, steps=steps, invented=invented, rounds=rounds
            )
        STATS.nulls_invented += invented
        if state is not None:
            state.steps += steps
            state.invented += invented
        if limit_reason and self.on_limit == "raise":
            raise ChaseNonTermination(limit_reason)
        return ChaseResult(
            instance=instance,
            steps=steps,
            completed=limit_reason is None,
            limit_reason=limit_reason,
            invented_nulls=invented,
        )

    def resume(
        self,
        instance: Instance,
        program: Program,
        delta: Instance,
        negation_reference: Optional[Instance] = None,
        *,
        state: Optional[ChaseState] = None,
        session=None,
    ) -> ChaseResult:
        """Continue a completed chase after new facts were appended.

        ``instance`` is the live result of an earlier chase of ``program``
        (typically run with ``reuse_instance=True``) that has since received
        new facts; ``delta`` holds exactly those new facts (they must already
        be present in ``instance``).  Instead of re-enumerating every rule
        body, each round runs only the semi-naive pivot plans against the
        current delta — sound for the restricted chase because a trigger not
        seen before must read at least one new fact, previously skipped
        triggers stay skipped (their heads remain satisfied: facts are never
        deleted), and previously fired triggers would be skipped again for
        the same reason.  The oblivious chase re-fires old triggers by
        definition, so resuming it is refused.

        Negated body atoms are checked per trigger against
        ``negation_reference`` exactly as in :meth:`chase`.  ``state``
        (:class:`ChaseState`) carries the null-depth map and the lifetime
        step/null totals from the initial run (the ``max_steps`` budget is
        per call); ``session`` is an externally owned
        :class:`~repro.engine.parallel.ParallelSession` bound to
        ``instance``, re-armed here for every delta round so streaming
        callers keep one synced worker replica across batches.

        Returns a :class:`ChaseResult` whose ``steps`` / ``invented_nulls``
        count this continuation and whose ``delta_rounds`` reports the
        rounds executed.
        """
        if not self.restricted:
            raise ValueError(
                "incremental continuation requires the restricted chase: the "
                "oblivious chase fires every trigger exactly once and cannot "
                "skip the old ones on resumption"
            )
        if state is None:
            state = ChaseState(null_depth={tid: 0 for tid in instance.null_ids()})
        null_depth = state.null_depth
        reference = negation_reference if negation_reference is not None else instance
        compiled = [compile_rule(rule) for rule in program.rules]
        signatures = (
            [_rule_signature(crule.rule) for crule in compiled] if self.deterministic_nulls else None
        )
        use_batch = batch_enabled()
        owned_session = None
        if session is not None and (
            not use_batch or session.instance is not instance
        ):
            session = None
        if session is None and use_batch:
            session = owned_session = maybe_session(instance, compiled)
        try:
            return self._resume_loop(
                instance,
                reference,
                compiled,
                signatures,
                state,
                use_batch,
                session,
                delta,
            )
        finally:
            if owned_session is not None:
                owned_session.close()

    def _resume_loop(
        self, instance, reference, compiled, signatures, state, use_batch, session, delta
    ) -> ChaseResult:
        # The per-trigger core below deliberately mirrors _chase_loop's (in
        # both executor flavours) rather than sharing a helper: the cold
        # chase is the hottest interpreted loop in the library and a
        # per-trigger function call there is measurable.  A semantic change
        # to negation/head-satisfaction/budget/null-invention handling must
        # be applied to both loops — the incremental parity suite
        # (tests/test_engine_incremental_parity.py) is the tripwire.
        steps = 0
        null_depth = state.null_depth
        invented = 0
        rounds = 0
        limit_reason: Optional[str] = None

        run_start = time.perf_counter_ns() if TRACER.enabled else 0
        while len(delta) and not limit_reason:
            rounds += 1
            if TRACER.enabled:
                round_start = time.perf_counter_ns()
                steps_before = steps
            new_delta = Instance()
            for rule_index, crule in enumerate(compiled):
                rule = crule.rule
                if use_batch:
                    if session is not None:
                        batches = session.trigger_row_batches(crule, delta, None)
                    else:
                        batches = crule.trigger_row_batches(instance, delta, None)
                    for plan, rows in batches:
                        ops = crule.row_ops(plan)
                        for trigger in rows:
                            if crule.negation and ops.negation_blocked_row(
                                trigger, reference
                            ):
                                continue
                            if self._head_satisfied_row(crule, ops, trigger, instance):
                                continue
                            if steps >= self.max_steps:
                                limit_reason = f"max_steps={self.max_steps} exceeded"
                                break
                            depth = self._values_depth_ids(trigger, null_depth)
                            if (
                                self.max_null_depth is not None
                                and rule.has_existentials
                                and depth + 1 > self.max_null_depth
                            ):
                                limit_reason = (
                                    f"max_null_depth={self.max_null_depth} exceeded"
                                )
                                if self.on_limit == "raise":
                                    raise ChaseNonTermination(limit_reason)
                                continue
                            if signatures is not None and crule.sorted_existentials:
                                frontier = TERMS.decode(
                                    trigger[slot] for _, slot in ops.frontier_slots
                                )
                            else:
                                frontier = ()
                            fresh_ids = []
                            for existential in crule.sorted_existentials:
                                if signatures is None:
                                    fresh = Null.fresh(existential.name.lower())
                                else:
                                    fresh = self._fresh_null(
                                        signatures[rule_index], frontier, existential
                                    )
                                nid = TERMS.intern_term(fresh)
                                fresh_ids.append(nid)
                                null_depth[nid] = depth + 1
                                invented += 1
                            steps += 1
                            STATS.triggers_fired += 1
                            for key in ops.head_keys_row(trigger + tuple(fresh_ids)):
                                atom = instance.add_key(key)
                                if atom is not None:
                                    new_delta.add_fact(atom)
                        if limit_reason:
                            break
                else:
                    for trigger in list(crule.delta_substitutions(instance, delta)):
                        if crule.negation and crule.negation_blocked(
                            trigger, reference
                        ):
                            continue
                        if crule.head_satisfied(trigger, instance):
                            continue
                        if steps >= self.max_steps:
                            limit_reason = f"max_steps={self.max_steps} exceeded"
                            break
                        depth = self._values_depth(trigger.values(), null_depth)
                        if (
                            self.max_null_depth is not None
                            and rule.has_existentials
                            and depth + 1 > self.max_null_depth
                        ):
                            limit_reason = (
                                f"max_null_depth={self.max_null_depth} exceeded"
                            )
                            if self.on_limit == "raise":
                                raise ChaseNonTermination(limit_reason)
                            continue
                        extension = dict(trigger)
                        if signatures is not None and crule.sorted_existentials:
                            frontier = tuple(
                                trigger[variable] for variable in crule.sorted_frontier
                            )
                        else:
                            frontier = ()
                        for existential in crule.sorted_existentials:
                            if signatures is None:
                                fresh = Null.fresh(existential.name.lower())
                            else:
                                fresh = self._fresh_null(
                                    signatures[rule_index], frontier, existential
                                )
                            extension[existential] = fresh
                            null_depth[TERMS.intern_term(fresh)] = depth + 1
                            invented += 1
                        steps += 1
                        STATS.triggers_fired += 1
                        for fact in crule.head_facts(extension):
                            if instance.add_fact(fact):
                                new_delta.add_fact(fact)
                if limit_reason:
                    break
            delta = new_delta
            if TRACER.enabled:
                TRACER.record(
                    "chase.round",
                    round_start,
                    round=rounds,
                    steps=steps - steps_before,
                )

        if TRACER.enabled:
            TRACER.record(
                "chase.resume", run_start, steps=steps, invented=invented, rounds=rounds
            )
        STATS.nulls_invented += invented
        state.steps += steps
        state.invented += invented
        if limit_reason and self.on_limit == "raise":
            raise ChaseNonTermination(limit_reason)
        return ChaseResult(
            instance=instance,
            steps=steps,
            completed=limit_reason is None,
            limit_reason=limit_reason,
            invented_nulls=invented,
            delta_rounds=rounds,
        )

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _head_satisfied_row(crule, ops, row, instance) -> bool:
        """Row-level restricted-chase head check (batch mode).

        Existential-free heads reduce to encoded-key membership of the
        instantiated head atoms (no Atom built); existential heads seed the
        precompiled head plan with just the frontier slot IDs.
        """
        if crule.head_plan is None:
            has_key = instance.has_key
            for key in ops.head_keys_row(row):
                if not has_key(key):
                    return False
            return True
        initial = {variable: row[slot] for variable, slot in ops.frontier_slots}
        return crule.head_plan.exists(instance, initial)

    @staticmethod
    def _values_depth(values, null_depth: Dict[int, int]) -> int:
        """Max invention depth over term values (the row-mode trigger path)."""
        depth = 0
        for value in values:
            if isinstance(value, Null):
                depth = max(depth, null_depth.get(TERMS.intern_term(value), 0))
        return depth

    @staticmethod
    def _values_depth_ids(ids, null_depth: Dict[int, int]) -> int:
        """Max invention depth over slot IDs — null test is one bit op."""
        depth = 0
        for tid in ids:
            if tid & 1:
                depth = max(depth, null_depth.get(tid, 0))
        return depth
