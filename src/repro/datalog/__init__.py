"""Datalog substrate: the relational foundation of the TriQ query languages.

This package implements Section 3.2 of the paper: terms, atoms, rules with
existential quantification in heads and (stratified) negation in bodies,
constraints, programs, databases/instances, the chase procedure, semi-naive
evaluation for plain Datalog, stratification, and the stratified semantics
``Pi(D)`` together with query evaluation.
"""

from repro.datalog.terms import Constant, Null, Variable, Term, term_from_token
from repro.datalog.atoms import Atom, Position
from repro.datalog.rules import Rule, Constraint
from repro.datalog.program import Program, Query
from repro.datalog.database import Database, Instance
from repro.datalog.parser import parse_program, parse_rule, parse_atom, ParseError
from repro.datalog.stratification import (
    DependencyGraph,
    StratificationError,
    stratify,
    is_stratified,
)
from repro.datalog.chase import ChaseEngine, ChaseResult, ChaseNonTermination
from repro.datalog.seminaive import SemiNaiveEvaluator
from repro.datalog.semantics import (
    INCONSISTENT,
    StratifiedSemantics,
    evaluate_program,
    evaluate_query,
)

__all__ = [
    "Constant",
    "Null",
    "Variable",
    "Term",
    "term_from_token",
    "Atom",
    "Position",
    "Rule",
    "Constraint",
    "Program",
    "Query",
    "Database",
    "Instance",
    "parse_program",
    "parse_rule",
    "parse_atom",
    "ParseError",
    "DependencyGraph",
    "StratificationError",
    "stratify",
    "is_stratified",
    "ChaseEngine",
    "ChaseResult",
    "ChaseNonTermination",
    "SemiNaiveEvaluator",
    "INCONSISTENT",
    "StratifiedSemantics",
    "evaluate_program",
    "evaluate_query",
]
