"""Databases and instances.

An *instance* is a (possibly infinite, here always finite) set of atoms over
constants and labelled nulls; a *database* is a finite instance mentioning
constants only (Section 3.2).  ``Instance`` is backed by the engine core's
:class:`~repro.engine.index.PredicateIndex`: facts live in append-only
per-predicate rows with hash postings of row ids, so homomorphism matching
during the chase and semi-naive evaluation iterates candidate buckets under a
captured length instead of copying them, and freezing the lower strata for
stratified negation (:meth:`Instance.snapshot`) is O(#predicates) instead of
a full re-index.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant, Null, Term, Variable
from repro.engine.index import InstanceSnapshot, PredicateIndex
from repro.engine.interning import TERMS
from repro.engine.stats import STATS


class Instance:
    """A mutable, indexed set of variable-free atoms (facts)."""

    __slots__ = ("_ordinals", "_keys", "_index", "_counter")

    def __init__(self, atoms: Iterable[Atom] = ()):
        # atom -> global insertion ordinal; dict order is insertion order,
        # which is what makes snapshots a prefix.
        self._ordinals: Dict[Atom, int] = {}
        # encoded fact key (pid, tid1, ..., tidn) -> ordinal: the
        # dictionary-encoded membership map the executors probe (negation
        # templates, head dedup) without building an Atom.
        self._keys: Dict[Tuple[int, ...], int] = {}
        self._index = PredicateIndex()
        self._counter = 0
        if atoms is not None:
            self.bulk_load(atoms)

    # -- mutation -----------------------------------------------------------

    def add(self, atom: Atom) -> bool:
        """Add a fact; returns True if it was new."""
        # Membership goes through the Atom map (cached hash) so duplicate
        # adds — the common case inside a fixpoint — pay no encoding.
        if atom in self._ordinals:
            return False
        for t in atom.terms:
            if isinstance(t, Variable):
                raise ValueError(f"cannot add non-fact atom {atom} to an instance")
        gid = self._counter
        self._ordinals[atom] = gid
        self._keys[TERMS.atom_key(atom)] = gid
        self._counter = gid + 1
        self._index.add(atom, gid)
        STATS.facts_added += 1
        return True

    def add_all(self, atoms: Iterable[Atom]) -> int:
        """Add many facts; returns the number of genuinely new ones."""
        add = self.add
        return sum(1 for atom in atoms if add(atom))

    def add_fact(self, atom: Atom) -> bool:
        """Add a trusted fact (no variable check); returns True if new.

        Engine-internal fast path for derived head facts, whose terms are by
        construction ground values or invented nulls.
        """
        if atom in self._ordinals:
            return False
        gid = self._counter
        self._ordinals[atom] = gid
        self._keys[TERMS.atom_key(atom)] = gid
        self._counter = gid + 1
        self._index.add(atom, gid)
        STATS.facts_added += 1
        return True

    def bulk_load(self, atoms: Iterable[Atom]) -> int:
        """Fast path for loading many facts at once; returns the number added.

        Functionally identical to :meth:`add_all` but inlined: one local
        binding of the hot structures, one validity check per fact, no
        per-fact method dispatch.  Used by ``Database`` construction, the
        RDF-graph relational views, and the benchmark harness so that setup
        time stays out of measured sections.
        """
        ordinals = self._ordinals
        keys = self._keys
        index = self._index
        atom_key = TERMS.atom_key
        counter = self._counter
        added = 0
        # Group per predicate and land each group through the lane-wise bulk
        # index path: ordinals/keys are assigned in iteration order here (so
        # duplicates and the validity error behave exactly as per-fact
        # adds), while row ids only need to stay ordered *within* each
        # predicate — which per-group appends preserve.
        groups: Dict[str, list] = {}
        try:
            for atom in atoms:
                if atom in ordinals:
                    continue
                if not self._loadable(atom):
                    raise ValueError(self._invalid_message(atom))
                key = atom_key(atom)
                ordinals[atom] = counter
                keys[key] = counter
                group = groups.get(atom.predicate)
                if group is None:
                    group = groups[atom.predicate] = []
                group.append((atom, key[1:], counter))
                counter += 1
                added += 1
        finally:
            for predicate, group in groups.items():
                index.add_bulk(
                    predicate,
                    [g[0] for g in group],
                    [g[1] for g in group],
                    [g[2] for g in group],
                )
            self._counter = counter
            STATS.facts_added += added
        return added

    @staticmethod
    def _loadable(atom: Atom) -> bool:
        """The validity check ``bulk_load`` applies (facts only)."""
        return not any(isinstance(t, Variable) for t in atom.terms)

    @staticmethod
    def _invalid_message(atom: Atom) -> str:
        return f"cannot add non-fact atom {atom} to an instance"

    def discard(self, atom: Atom) -> bool:
        """Remove a fact if present; returns True if it was there.

        The fact's global ordinal (the parallel executor's gid) is captured
        *before* the maps forget it and handed to the index tombstone, which
        logs ``(predicate, row_id, gid)`` for replica replay.  Ordinals of
        surviving facts are never renumbered and ``_counter`` never rewinds,
        so re-added facts get strictly fresh ordinals — the contiguity
        invariant the delta-window dispatch relies on.
        """
        gid = self._ordinals.get(atom)
        if gid is None:
            return False
        del self._ordinals[atom]
        del self._keys[TERMS.atom_key(atom)]
        self._index.tombstone(atom, gid)
        return True

    # -- dictionary-encoded fast paths ---------------------------------------

    def has_key(self, key: Tuple[int, ...]) -> bool:
        """Membership of an encoded fact key ``(pid, tid1, ..., tidn)``.

        The executors\' negation probes and restricted-chase head checks go
        through this — one int-tuple dict lookup, no Atom construction.
        """
        return key in self._keys

    def add_key(self, key: Tuple[int, ...]) -> Optional[Atom]:
        """Add an encoded fact; returns its (decoded) Atom if new, else None.

        This is how the batch/parallel firing paths land head facts: the
        duplicate check costs one int-tuple lookup, and the Atom is only
        materialised for genuinely new facts (it is needed for the decoded
        row view and the ordinal map — the result boundary).
        """
        if key in self._keys:
            return None
        atom = TERMS.decode_atom(key)
        gid = self._counter
        self._ordinals[atom] = gid
        self._keys[key] = gid
        self._counter = gid + 1
        self._index.add(atom, gid)
        STATS.facts_added += 1
        return atom

    def null_ids(self) -> "frozenset[int]":
        """The term IDs of every labelled null occurring in the instance."""
        return frozenset(
            tid for key in self._keys for tid in key[1:] if tid & 1
        )

    # -- set protocol -----------------------------------------------------------

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._ordinals

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._ordinals)

    def __len__(self) -> int:
        return len(self._ordinals)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Instance):
            return self._ordinals.keys() == other._ordinals.keys()
        if isinstance(other, (set, frozenset)):
            return self._ordinals.keys() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"{type(self).__name__}({len(self._ordinals)} atoms)"

    def copy(self) -> "Instance":
        """An independent instance with the same facts (fresh index)."""
        return type(self)(self._ordinals)

    def to_set(self) -> FrozenSet[Atom]:
        """The facts as a frozen set."""
        return frozenset(self._ordinals)

    def snapshot(self) -> InstanceSnapshot:
        """A frozen view of the current facts (additions stay invisible).

        The stratified engines use this as the negation reference for the
        lower strata; unlike :meth:`copy` it shares the index and captures
        only per-predicate row counts.
        """
        return InstanceSnapshot(
            self._ordinals,
            self._keys,
            self._index,
            self._counter,
            self._index.row_limits(),
            len(self._ordinals),
        )

    # -- lookup -------------------------------------------------------------------

    def with_predicate(self, predicate: str) -> FrozenSet[Atom]:
        """All facts over ``predicate``."""
        rows = self._index.rows.get(predicate)
        if not rows:
            return frozenset()
        return frozenset(fact for fact in rows if fact is not None)

    def matching(self, pattern: Atom) -> Iterator[Atom]:
        """All facts that the (possibly non-ground) ``pattern`` can map to.

        Constants and nulls in the pattern must match exactly; variables match
        anything (repeated variables are checked by the caller's unifier).
        The most selective available index is used.  Facts added while the
        returned iterator is consumed are not seen by it — the chase and the
        semi-naive rounds rely on this snapshot-per-call behaviour.
        """
        return self._index.scan(pattern)

    def matching_ids(
        self,
        predicate: str,
        arity: int,
        pairs: Iterable[Tuple[int, int]] = (),
    ) -> Iterator[Tuple[int, ...]]:
        """ID rows of ``predicate`` matching every ``(position, tid)`` pair.

        The ID-level sibling of :meth:`matching`: yields the flat term-ID
        tuples without touching an Atom, so callers (the ID-native SPARQL
        evaluator, the query service) decode only at their own result
        boundary.  Same snapshot-per-call capture as :meth:`matching`.
        """
        pairs = pairs if isinstance(pairs, (tuple, list)) else tuple(pairs)
        return self._index.scan_ids(predicate, arity, pairs)

    def _plan_source(self) -> Tuple[PredicateIndex, Optional[Dict[str, int]]]:
        """(index, row limits) pair the join-plan executor runs against."""
        return self._index, None

    # -- domain inspection -----------------------------------------------------------

    @property
    def predicates(self) -> FrozenSet[str]:
        """Predicates with at least one live fact."""
        return frozenset(
            predicate for predicate, count in self._index.live.items() if count
        )

    def domain(self) -> FrozenSet[Term]:
        """``dom(I)``: all constants and nulls occurring in the instance."""
        return frozenset(t for atom in self._ordinals for t in atom.terms)

    def constants(self) -> FrozenSet[Constant]:
        """All constants occurring in the instance."""
        return frozenset(
            t for atom in self._ordinals for t in atom.terms if isinstance(t, Constant)
        )

    def nulls(self) -> FrozenSet[Null]:
        """All labelled nulls occurring in the instance."""
        return frozenset(
            t for atom in self._ordinals for t in atom.terms if isinstance(t, Null)
        )

    def ground_part(self) -> "Instance":
        """``I↓``: the atoms mentioning constants only (Section 6.3)."""
        return Instance(a for a in self._ordinals if a.is_ground)

    def arity_of(self, predicate: str) -> Optional[int]:
        """The arity of ``predicate``'s facts, or None if absent."""
        rows = self._index.rows.get(predicate)
        if rows:
            for fact in rows:
                if fact is not None:
                    return fact.arity
        return None

    def sorted_atoms(self) -> List[Atom]:
        """Deterministically ordered list of facts (useful in tests and reports)."""
        return sorted(self._ordinals, key=lambda a: (a.predicate, tuple(map(str, a.terms))))


class Database(Instance):
    """A finite instance mentioning constants only."""

    __slots__ = ()

    def add(self, atom: Atom) -> bool:
        """Add a ground fact over constants; rejects nulls and variables."""
        if not atom.is_ground:
            raise ValueError(
                f"databases may only contain ground atoms over constants; got {atom}"
            )
        return super().add(atom)

    @staticmethod
    def _loadable(atom: Atom) -> bool:
        return atom.is_ground

    @staticmethod
    def _invalid_message(atom: Atom) -> str:
        return f"databases may only contain ground atoms over constants; got {atom}"

    def add_fact(self, atom: Atom) -> bool:
        """Trusted-path add, still enforcing the constants-only invariant."""
        # The trusted fast path must not bypass the constants-only invariant.
        if not atom.is_ground:
            raise ValueError(self._invalid_message(atom))
        return super().add_fact(atom)

    def add_key(self, key: Tuple[int, ...]) -> Optional[Atom]:
        """Encoded add, still enforcing constants-only (one bit test per term)."""
        if any(tid & 1 for tid in key[1:]):
            raise ValueError(
                "databases may only contain ground atoms over constants; "
                f"got {TERMS.decode_atom(key)}"
            )
        return super().add_key(key)

    def copy(self) -> "Database":
        """An independent database with the same facts."""
        return Database(self._ordinals)
