"""Databases and instances.

An *instance* is a (possibly infinite, here always finite) set of atoms over
constants and labelled nulls; a *database* is a finite instance mentioning
constants only (Section 3.2).  ``Instance`` keeps per-predicate and
per-(predicate, position, term) indexes so that homomorphism matching during
the chase and semi-naive evaluation stays close to linear in the number of
candidate atoms.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant, Null, Term, Variable


class Instance:
    """A mutable, indexed set of variable-free atoms (facts)."""

    def __init__(self, atoms: Iterable[Atom] = ()):
        self._atoms: Set[Atom] = set()
        self._by_predicate: Dict[str, Set[Atom]] = defaultdict(set)
        self._by_term: Dict[Tuple[str, int, Term], Set[Atom]] = defaultdict(set)
        for atom in atoms:
            self.add(atom)

    # -- mutation -----------------------------------------------------------

    def add(self, atom: Atom) -> bool:
        """Add a fact; returns True if it was new."""
        if any(isinstance(t, Variable) for t in atom.terms):
            raise ValueError(f"cannot add non-fact atom {atom} to an instance")
        if atom in self._atoms:
            return False
        self._atoms.add(atom)
        self._by_predicate[atom.predicate].add(atom)
        for i, term in enumerate(atom.terms):
            self._by_term[(atom.predicate, i, term)].add(atom)
        return True

    def add_all(self, atoms: Iterable[Atom]) -> int:
        """Add many facts; returns the number of genuinely new ones."""
        return sum(1 for atom in atoms if self.add(atom))

    def discard(self, atom: Atom) -> bool:
        """Remove a fact if present; returns True if it was there."""
        if atom not in self._atoms:
            return False
        self._atoms.discard(atom)
        self._by_predicate[atom.predicate].discard(atom)
        for i, term in enumerate(atom.terms):
            self._by_term[(atom.predicate, i, term)].discard(atom)
        return True

    # -- set protocol -----------------------------------------------------------

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._atoms

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Instance):
            return self._atoms == other._atoms
        if isinstance(other, (set, frozenset)):
            return self._atoms == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"{type(self).__name__}({len(self._atoms)} atoms)"

    def copy(self) -> "Instance":
        return type(self)(self._atoms)

    def to_set(self) -> FrozenSet[Atom]:
        return frozenset(self._atoms)

    # -- lookup -------------------------------------------------------------------

    def with_predicate(self, predicate: str) -> FrozenSet[Atom]:
        """All facts over ``predicate``."""
        return frozenset(self._by_predicate.get(predicate, ()))

    def matching(self, pattern: Atom) -> Iterator[Atom]:
        """All facts that the (possibly non-ground) ``pattern`` can map to.

        Constants and nulls in the pattern must match exactly; variables match
        anything (repeated variables are checked by the caller's unifier).
        The most selective available index is used.
        """
        candidates: Optional[Set[Atom]] = None
        for i, term in enumerate(pattern.terms):
            if isinstance(term, Variable):
                continue
            indexed = self._by_term.get((pattern.predicate, i, term))
            if indexed is None:
                return iter(())
            if candidates is None or len(indexed) < len(candidates):
                candidates = indexed
        if candidates is None:
            candidates = self._by_predicate.get(pattern.predicate, set())
        # Snapshot the candidate bucket: callers routinely add facts to the
        # instance while consuming the returned iterator (semi-naive rounds,
        # chase steps), which must not invalidate the iteration.  Remaining
        # constant positions and repeated variables are checked by the
        # caller's unifier; here we only ensure the arity matches.
        return iter([a for a in candidates if a.arity == pattern.arity])

    # -- domain inspection -----------------------------------------------------------

    @property
    def predicates(self) -> FrozenSet[str]:
        return frozenset(p for p, atoms in self._by_predicate.items() if atoms)

    def domain(self) -> FrozenSet[Term]:
        """``dom(I)``: all constants and nulls occurring in the instance."""
        return frozenset(t for atom in self._atoms for t in atom.terms)

    def constants(self) -> FrozenSet[Constant]:
        return frozenset(
            t for atom in self._atoms for t in atom.terms if isinstance(t, Constant)
        )

    def nulls(self) -> FrozenSet[Null]:
        return frozenset(
            t for atom in self._atoms for t in atom.terms if isinstance(t, Null)
        )

    def ground_part(self) -> "Instance":
        """``I↓``: the atoms mentioning constants only (Section 6.3)."""
        return Instance(a for a in self._atoms if a.is_ground)

    def arity_of(self, predicate: str) -> Optional[int]:
        atoms = self._by_predicate.get(predicate)
        if not atoms:
            return None
        return next(iter(atoms)).arity

    def sorted_atoms(self) -> List[Atom]:
        """Deterministically ordered list of facts (useful in tests and reports)."""
        return sorted(self._atoms, key=lambda a: (a.predicate, tuple(map(str, a.terms))))


class Database(Instance):
    """A finite instance mentioning constants only."""

    def add(self, atom: Atom) -> bool:
        if not atom.is_ground:
            raise ValueError(
                f"databases may only contain ground atoms over constants; got {atom}"
            )
        return super().add(atom)

    def copy(self) -> "Database":
        return Database(self._atoms)
