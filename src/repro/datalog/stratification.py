"""Stratification of programs with negation.

A stratification of a program ``Pi`` is a function ``mu: sch(Pi) -> [0, l]``
such that for each rule ``rho`` with head predicate ``p``:

1. ``mu(p) >= mu(p')`` for every predicate ``p'`` of a positive body atom, and
2. ``mu(p)  > mu(p')`` for every predicate ``p'`` of a negative body atom.

``Pi`` is stratified iff such a function exists (Section 3.2).  We compute a
stratification from the predicate dependency graph: strongly connected
components must not contain a negative edge, and the stratum of a predicate is
the longest "negative distance" from the sources of the condensation.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.datalog.program import Program
from repro.datalog.rules import Rule


class StratificationError(ValueError):
    """Raised when a program has no stratification (negation through recursion)."""


class DependencyGraph:
    """The predicate dependency graph of a program.

    There is an edge ``q -> p`` whenever some rule with head predicate ``p``
    mentions ``q`` in its body; the edge is *negative* when ``q`` appears in a
    negated body atom.
    """

    def __init__(self, program: Program):
        self.program = program
        self.nodes: Set[str] = set(program.schema)
        # edges[q] = set of (p, negative) pairs, meaning q is used to derive p.
        self.edges: Dict[str, Set[Tuple[str, bool]]] = defaultdict(set)
        for rule in program.rules:
            for head_atom in rule.head:
                for body_atom in rule.body_positive:
                    self.edges[body_atom.predicate].add((head_atom.predicate, False))
                for body_atom in rule.body_negative:
                    self.edges[body_atom.predicate].add((head_atom.predicate, True))

    def successors(self, predicate: str) -> FrozenSet[Tuple[str, bool]]:
        """The (head predicate, negative?) pairs derived from ``predicate``."""
        return frozenset(self.edges.get(predicate, ()))

    def negative_edges(self) -> FrozenSet[Tuple[str, str]]:
        """All (source, target) pairs connected by a negative edge."""
        return frozenset(
            (source, target)
            for source, targets in self.edges.items()
            for target, negative in targets
            if negative
        )

    # -- strongly connected components (iterative Tarjan) ----------------------

    def strongly_connected_components(self) -> List[FrozenSet[str]]:
        """Tarjan's SCCs of the dependency graph, iteratively."""
        index_counter = [0]
        indices: Dict[str, int] = {}
        lowlinks: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        components: List[FrozenSet[str]] = []

        adjacency: Dict[str, List[str]] = {
            node: sorted({target for target, _ in self.edges.get(node, ())})
            for node in self.nodes
        }

        for root in sorted(self.nodes):
            if root in indices:
                continue
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, child_index = work.pop()
                if child_index == 0:
                    indices[node] = index_counter[0]
                    lowlinks[node] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                children = adjacency.get(node, [])
                for i in range(child_index, len(children)):
                    child = children[i]
                    if child not in indices:
                        work.append((node, i + 1))
                        work.append((child, 0))
                        recurse = True
                        break
                    if child in on_stack:
                        lowlinks[node] = min(lowlinks[node], indices[child])
                if recurse:
                    continue
                if lowlinks[node] == indices[node]:
                    component: Set[str] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(frozenset(component))
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
        return components


_STRATIFY_CACHE: Dict[Program, Dict[str, int]] = {}
_STRATIFY_CACHE_LIMIT = 512


def stratify(program: Program) -> Dict[str, int]:
    """Compute a stratification ``mu`` of ``program`` or raise.

    The returned mapping assigns every predicate of ``sch(Pi)`` a stratum in
    ``[0, l]``; EDB-only predicates land in stratum 0.  Raises
    :class:`StratificationError` when negation occurs inside a recursive cycle.
    Results are cached by program content; callers get a fresh copy.
    """
    cached = _STRATIFY_CACHE.get(program)
    if cached is not None:
        return dict(cached)
    result = _stratify(program)
    if len(_STRATIFY_CACHE) >= _STRATIFY_CACHE_LIMIT:
        _STRATIFY_CACHE.clear()
    _STRATIFY_CACHE[program] = dict(result)
    return result


def _stratify(program: Program) -> Dict[str, int]:
    graph = DependencyGraph(program)
    components = graph.strongly_connected_components()
    component_of: Dict[str, int] = {}
    for i, component in enumerate(components):
        for predicate in component:
            component_of[predicate] = i

    # A negative edge inside one SCC means negation through recursion.
    for source, target in graph.negative_edges():
        if component_of.get(source) == component_of.get(target):
            raise StratificationError(
                f"negation through recursion between {source!r} and {target!r}; "
                "the program is not stratified"
            )

    # Condensation: component-level edges with their polarity.
    component_edges: Dict[int, Set[Tuple[int, bool]]] = defaultdict(set)
    indegree: Dict[int, int] = {i: 0 for i in range(len(components))}
    seen_edges: Set[Tuple[int, int, bool]] = set()
    for source, targets in graph.edges.items():
        for target, negative in targets:
            src_c, tgt_c = component_of[source], component_of[target]
            if src_c == tgt_c:
                continue
            key = (src_c, tgt_c, negative)
            if key in seen_edges:
                continue
            seen_edges.add(key)
            component_edges[src_c].add((tgt_c, negative))
            indegree[tgt_c] += 1

    # Longest-negative-path layering over the DAG (Kahn order).
    stratum: Dict[int, int] = {i: 0 for i in range(len(components))}
    queue = deque(sorted(i for i, d in indegree.items() if d == 0))
    processed = 0
    while queue:
        component = queue.popleft()
        processed += 1
        for target, negative in sorted(component_edges.get(component, ()), key=lambda e: e[0]):
            required = stratum[component] + (1 if negative else 0)
            if required > stratum[target]:
                stratum[target] = required
            indegree[target] -= 1
            if indegree[target] == 0:
                queue.append(target)
    if processed != len(components):
        # The condensation is a DAG by construction, so this cannot happen;
        # keep the check as a defensive invariant.
        raise StratificationError("internal error: condensation contains a cycle")

    return {
        predicate: stratum[component_of[predicate]]
        for predicate in graph.nodes
    }


def is_stratified(program: Program) -> bool:
    """True iff the program (its ``ex`` part) admits a stratification."""
    try:
        stratify(program.ex())
    except StratificationError:
        return False
    return True


def partition_by_stratum(program: Program, stratification: Dict[str, int]) -> List[List[Rule]]:
    """``Pi_0, ..., Pi_l``: rules grouped by the stratum of their head predicate.

    A rule with several head atoms is placed in the stratum of its highest
    head predicate (all its head predicates share a stratum in well-formed
    programs produced by :func:`stratify`).
    """
    if not program.rules:
        return [[]]
    max_stratum = max(stratification.values()) if stratification else 0
    partition: List[List[Rule]] = [[] for _ in range(max_stratum + 1)]
    for rule in program.rules:
        level = max(stratification[a.predicate] for a in rule.head)
        partition[level].append(rule)
    return partition
