"""Semi-naive evaluation of plain (existential-free) Datalog with stratified negation.

This is the workhorse used for:

* the SPARQL → Datalog¬s translation of Section 5.1 (programs ``P_dat``),
* the baseline comparisons of the benchmark suite, and
* the negation-elimination step of the TriQ-Lite 1.0 evaluation algorithm
  (Step 1 of the proof of Theorem 6.7), which needs the ground semantics of
  Datalog programs computed stratum by stratum.

Rules must not contain existential head variables; use the chase or the
warded engine for those.  Negated body atoms are evaluated against the result
of the lower strata, which is exactly the stratified semantics of Section 3.2
restricted to Datalog¬s.

Each rule is compiled once (per process, the plan cache is keyed by rule)
into a :class:`~repro.engine.plan.CompiledRule`; the delta rounds run the
precompiled pivot plans against the delta's index, and the lower-strata
negation reference is a frozen :meth:`~repro.datalog.database.Instance.snapshot`
rather than a full copy.

Three executor modes (:mod:`repro.engine.mode`) share the same plans: the
row-at-a-time backtracker, the column-at-a-time batch executor — which
fetches one bulk index probe per distinct probe key per step and filters
negation in bulk against the frozen snapshot — and the sharded parallel
executor (:mod:`repro.engine.parallel`), which fans each round's match work
out to worker processes and merges the shard streams back into batch order
before firing.  Matches arrive in the same order in every mode, so results
and counters are mode-independent.  Delta
rounds additionally skip pivots whose delta postings bucket is empty for a
*bound* term of the pivot atom (not just pivots whose predicate is absent
from the delta) — counted in ``STATS.pivots_skipped``.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Iterator, List, Sequence, Set

from repro.datalog.atoms import Atom
from repro.datalog.chase import match_atoms
from repro.datalog.database import Instance
from repro.datalog.program import Program
from repro.datalog.rules import RuleError
from repro.datalog.stratification import partition_by_stratum, stratify
from repro.datalog.terms import Term, Variable
from repro.engine.mode import batch_enabled
from repro.engine.parallel import maybe_session
from repro.engine.plan import compile_rule
from repro.engine.stats import STATS
from repro.obs.trace import TRACER


class SemiNaiveEvaluator:
    """Bottom-up evaluation with delta (semi-naive) iteration per stratum."""

    def __init__(self, program: Program):
        for rule in program.rules:
            if rule.has_existentials:
                raise RuleError(
                    f"semi-naive evaluation handles existential-free rules only; got {rule}"
                )
        self.program = program
        self.stratification = stratify(program.ex())
        self.strata = partition_by_stratum(program.ex(), self.stratification)
        self.compiled_strata = [
            [compile_rule(rule) for rule in stratum] for stratum in self.strata
        ]

    # -- public API ---------------------------------------------------------------

    def evaluate(self, database: Iterable[Atom]) -> Instance:
        """Materialise all derivable facts (ignores constraints)."""
        instance = Instance(database)
        session = maybe_session(
            instance, [crule for stratum in self.compiled_strata for crule in stratum]
        )
        try:
            for number, stratum in enumerate(self.compiled_strata):
                if not stratum:
                    continue
                reference = instance.snapshot()
                with TRACER.span(
                    "seminaive.stratum", stratum=number, rules=len(stratum)
                ):
                    self._evaluate_stratum(stratum, instance, reference, session)
        finally:
            if session is not None:
                session.close()
        return instance

    def facts_of(self, database: Iterable[Atom], predicate: str) -> Set[Atom]:
        """All derived facts over ``predicate``."""
        return set(self.evaluate(database).with_predicate(predicate))

    def violated_constraints(self, instance: Instance) -> List[int]:
        """Indexes of constraints whose body embeds into ``instance``."""
        violated = []
        for i, constraint in enumerate(self.program.constraints):
            if next(match_atoms(constraint.body, instance), None) is not None:
                violated.append(i)
        return violated

    def resume_stratum(
        self,
        stratum: int,
        instance: Instance,
        delta: Instance,
        negation_reference,
        session=None,
    ) -> int:
        """Continue one stratum's fixpoint from an externally supplied delta.

        ``instance`` must already contain the facts of ``delta`` (they are
        the facts appended since the stratum last reached its fixpoint) and
        ``negation_reference`` must reflect the lower strata's *current*
        state.  This is the semi-naive entry point of the incremental
        streaming subsystem (:class:`~repro.engine.incremental.DeltaSession`):
        only the delta rounds run — the naive first pass already happened
        when the stratum was first evaluated.  Returns the number of delta
        rounds executed.
        """
        return self._delta_rounds(
            self.compiled_strata[stratum], instance, delta, negation_reference, session
        )

    # -- internals --------------------------------------------------------------------

    def _evaluate_stratum(
        self, compiled: Sequence, instance: Instance, negation_reference, session=None
    ) -> None:
        """Fixpoint of one stratum using delta iteration.

        ``negation_reference`` holds the facts of the strictly lower strata
        (a frozen snapshot); negated atoms are checked against it only, which
        is sound because a stratified program never derives a negated
        predicate in the same or a higher stratum.
        """
        use_batch = batch_enabled()

        # First round: plain naive pass so that rules whose bodies are fully
        # satisfied by lower strata fire at least once.
        delta = Instance()
        for crule in compiled:
            self._fire_rule(
                crule, instance, negation_reference, delta, None, session, use_batch
            )

        # Delta rounds: at least one body atom must come from the last delta.
        self._delta_rounds(compiled, instance, delta, negation_reference, session)

    def _delta_rounds(
        self,
        compiled: Sequence,
        instance: Instance,
        delta: Instance,
        negation_reference,
        session=None,
    ) -> int:
        """Run delta rounds until the fixpoint; returns the round count."""
        use_batch = batch_enabled()
        rounds = 0
        while len(delta):
            rounds += 1
            new_delta = Instance()
            for crule in compiled:
                self._fire_rule(
                    crule,
                    instance,
                    negation_reference,
                    new_delta,
                    delta,
                    session,
                    use_batch,
                )
            delta = new_delta
        return rounds

    @staticmethod
    def _fire_rule(
        crule, instance, negation_reference, delta_sink, delta, session, use_batch
    ) -> None:
        """Match and fire one rule for one round (naive when ``delta`` is None).

        Trigger lists are materialised per rule before firing in every mode
        (the batch executor inherently computes whole match lists), so each
        evaluation point sees the same instance state regardless of mode and
        the executors stay trigger-for-trigger identical.  The batch path
        fires head facts directly from slot rows (precompiled RowOps
        templates); the row path goes through substitution dicts.  With a
        parallel ``session``, matching is fanned out to the worker pool and
        merged back into the same order; firing stays sequential here.
        """
        traced = TRACER.enabled
        if traced:
            trace_start = time.perf_counter_ns()
        if use_batch:
            if session is not None:
                batches = session.trigger_row_batches(crule, delta, negation_reference)
            else:
                batches = crule.trigger_row_batches(instance, delta, negation_reference)
            add_key = instance.add_key
            sink_add = delta_sink.add_fact
            for plan, rows in batches:
                head_keys_row = crule.row_ops(plan).head_keys_row
                for row in rows:
                    STATS.triggers_fired += 1
                    for key in head_keys_row(row):
                        # Encoded dedup first; the Atom is only decoded for
                        # genuinely new facts (the result boundary).
                        atom = add_key(key)
                        if atom is not None:
                            sink_add(atom)
        else:
            if delta is None:
                found = list(crule.substitutions(instance))
            else:
                found = list(crule.delta_substitutions(instance, delta))
            for substitution in found:
                if crule.negation and crule.negation_blocked(
                    substitution, negation_reference
                ):
                    continue
                STATS.triggers_fired += 1
                for fact in crule.head_facts(substitution):
                    if instance.add_fact(fact):
                        delta_sink.add_fact(fact)
        if traced:
            TRACER.record(
                "seminaive.rule",
                trace_start,
                head=crule.rule.head[0].predicate,
                naive=delta is None,
            )

    @staticmethod
    def _match_with_pivot(
        atoms: Sequence[Atom],
        pivot: int,
        delta: Instance,
        instance: Instance,
    ) -> Iterator[Dict[Variable, Term]]:
        """Homomorphisms where the ``pivot``-th atom maps into ``delta``.

        Retained for API compatibility; the evaluator itself now runs the
        precompiled pivot plans of :class:`~repro.engine.plan.CompiledRule`.
        """
        from repro.engine.plan import compile_pivot

        plan = compile_pivot(tuple(atoms), pivot)
        return plan.execute(instance, None, delta_source=delta)
