"""Semi-naive evaluation of plain (existential-free) Datalog with stratified negation.

This is the workhorse used for:

* the SPARQL → Datalog¬s translation of Section 5.1 (programs ``P_dat``),
* the baseline comparisons of the benchmark suite, and
* the negation-elimination step of the TriQ-Lite 1.0 evaluation algorithm
  (Step 1 of the proof of Theorem 6.7), which needs the ground semantics of
  Datalog programs computed stratum by stratum.

Rules must not contain existential head variables; use the chase or the
warded engine for those.  Negated body atoms are evaluated against the result
of the lower strata, which is exactly the stratified semantics of Section 3.2
restricted to Datalog¬s.

Each rule is compiled once (per process, the plan cache is keyed by rule)
into a :class:`~repro.engine.plan.CompiledRule`; the delta rounds run the
precompiled pivot plans against the delta's index, and the lower-strata
negation reference is a frozen :meth:`~repro.datalog.database.Instance.snapshot`
rather than a full copy.

Two executor modes (:mod:`repro.engine.mode`) share the same plans: the
row-at-a-time backtracker and the column-at-a-time batch executor, which
fetches one bulk index probe per distinct probe key per step and filters
negation in bulk against the frozen snapshot.  Matches arrive in the same
order in both modes, so results and counters are mode-independent.  Delta
rounds additionally skip pivots whose delta postings bucket is empty for a
*bound* term of the pivot atom (not just pivots whose predicate is absent
from the delta) — counted in ``STATS.pivots_skipped``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Set

from repro.datalog.atoms import Atom
from repro.datalog.chase import match_atoms
from repro.datalog.database import Instance
from repro.datalog.program import Program
from repro.datalog.rules import RuleError
from repro.datalog.stratification import partition_by_stratum, stratify
from repro.datalog.terms import Term, Variable
from repro.engine.mode import batch_enabled
from repro.engine.plan import compile_rule
from repro.engine.stats import STATS


class SemiNaiveEvaluator:
    """Bottom-up evaluation with delta (semi-naive) iteration per stratum."""

    def __init__(self, program: Program):
        for rule in program.rules:
            if rule.has_existentials:
                raise RuleError(
                    f"semi-naive evaluation handles existential-free rules only; got {rule}"
                )
        self.program = program
        self.stratification = stratify(program.ex())
        self.strata = partition_by_stratum(program.ex(), self.stratification)
        self.compiled_strata = [
            [compile_rule(rule) for rule in stratum] for stratum in self.strata
        ]

    # -- public API ---------------------------------------------------------------

    def evaluate(self, database: Iterable[Atom]) -> Instance:
        """Materialise all derivable facts (ignores constraints)."""
        instance = Instance(database)
        for stratum in self.compiled_strata:
            if not stratum:
                continue
            reference = instance.snapshot()
            self._evaluate_stratum(stratum, instance, reference)
        return instance

    def facts_of(self, database: Iterable[Atom], predicate: str) -> Set[Atom]:
        """All derived facts over ``predicate``."""
        return set(self.evaluate(database).with_predicate(predicate))

    def violated_constraints(self, instance: Instance) -> List[int]:
        """Indexes of constraints whose body embeds into ``instance``."""
        violated = []
        for i, constraint in enumerate(self.program.constraints):
            if next(match_atoms(constraint.body, instance), None) is not None:
                violated.append(i)
        return violated

    # -- internals --------------------------------------------------------------------

    def _evaluate_stratum(
        self, compiled: Sequence, instance: Instance, negation_reference
    ) -> None:
        """Fixpoint of one stratum using delta iteration.

        ``negation_reference`` holds the facts of the strictly lower strata
        (a frozen snapshot); negated atoms are checked against it only, which
        is sound because a stratified program never derives a negated
        predicate in the same or a higher stratum.
        """
        # Trigger lists are materialised per rule before firing in both modes
        # (the batch executor inherently computes whole match lists), so each
        # evaluation point sees the same instance state regardless of mode
        # and the two executors stay trigger-for-trigger identical.  The
        # batch path fires head facts directly from slot rows (precompiled
        # RowOps templates); the row path goes through substitution dicts.
        use_batch = batch_enabled()

        def fire_batches(crule, delta_sink, delta=None) -> None:
            for plan, rows in crule.trigger_row_batches(
                instance, delta, negation_reference
            ):
                head_facts_row = crule.row_ops(plan).head_facts_row
                for row in rows:
                    STATS.triggers_fired += 1
                    for fact in head_facts_row(row):
                        if instance.add_fact(fact):
                            delta_sink.add_fact(fact)

        def fire_rows(crule, delta_sink, delta=None) -> None:
            if delta is None:
                found = list(crule.substitutions(instance))
            else:
                found = list(crule.delta_substitutions(instance, delta))
            for substitution in found:
                if crule.negation and crule.negation_blocked(
                    substitution, negation_reference
                ):
                    continue
                STATS.triggers_fired += 1
                for fact in crule.head_facts(substitution):
                    if instance.add_fact(fact):
                        delta_sink.add_fact(fact)

        fire = fire_batches if use_batch else fire_rows

        # First round: plain naive pass so that rules whose bodies are fully
        # satisfied by lower strata fire at least once.
        delta = Instance()
        for crule in compiled:
            fire(crule, delta)

        # Delta rounds: at least one body atom must come from the last delta.
        while len(delta):
            new_delta = Instance()
            for crule in compiled:
                fire(crule, new_delta, delta)
            delta = new_delta

    @staticmethod
    def _match_with_pivot(
        atoms: Sequence[Atom],
        pivot: int,
        delta: Instance,
        instance: Instance,
    ) -> Iterator[Dict[Variable, Term]]:
        """Homomorphisms where the ``pivot``-th atom maps into ``delta``.

        Retained for API compatibility; the evaluator itself now runs the
        precompiled pivot plans of :class:`~repro.engine.plan.CompiledRule`.
        """
        from repro.engine.plan import compile_pivot

        plan = compile_pivot(tuple(atoms), pivot)
        return plan.execute(instance, None, delta_source=delta)
