"""Semi-naive evaluation of plain (existential-free) Datalog with stratified negation.

This is the workhorse used for:

* the SPARQL → Datalog¬s translation of Section 5.1 (programs ``P_dat``),
* the baseline comparisons of the benchmark suite, and
* the negation-elimination step of the TriQ-Lite 1.0 evaluation algorithm
  (Step 1 of the proof of Theorem 6.7), which needs the ground semantics of
  Datalog programs computed stratum by stratum.

Rules must not contain existential head variables; use the chase or the
warded engine for those.  Negated body atoms are evaluated against the result
of the lower strata, which is exactly the stratified semantics of Section 3.2
restricted to Datalog¬s.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.datalog.atoms import Atom, unify_with_fact
from repro.datalog.chase import match_atoms, satisfies_some
from repro.datalog.database import Instance
from repro.datalog.program import Program
from repro.datalog.rules import Rule, RuleError
from repro.datalog.stratification import partition_by_stratum, stratify
from repro.datalog.terms import Term, Variable


class SemiNaiveEvaluator:
    """Bottom-up evaluation with delta (semi-naive) iteration per stratum."""

    def __init__(self, program: Program):
        for rule in program.rules:
            if rule.has_existentials:
                raise RuleError(
                    f"semi-naive evaluation handles existential-free rules only; got {rule}"
                )
        self.program = program
        self.stratification = stratify(program.ex())
        self.strata = partition_by_stratum(program.ex(), self.stratification)

    # -- public API ---------------------------------------------------------------

    def evaluate(self, database: Iterable[Atom]) -> Instance:
        """Materialise all derivable facts (ignores constraints)."""
        instance = Instance(database)
        for stratum_rules in self.strata:
            if not stratum_rules:
                continue
            reference = instance.copy()
            self._evaluate_stratum(stratum_rules, instance, reference)
        return instance

    def facts_of(self, database: Iterable[Atom], predicate: str) -> Set[Atom]:
        """All derived facts over ``predicate``."""
        return set(self.evaluate(database).with_predicate(predicate))

    def violated_constraints(self, instance: Instance) -> List[int]:
        """Indexes of constraints whose body embeds into ``instance``."""
        violated = []
        for i, constraint in enumerate(self.program.constraints):
            if next(match_atoms(constraint.body, instance), None) is not None:
                violated.append(i)
        return violated

    # -- internals --------------------------------------------------------------------

    def _evaluate_stratum(
        self, rules: Sequence[Rule], instance: Instance, negation_reference: Instance
    ) -> None:
        """Fixpoint of one stratum using delta iteration.

        ``negation_reference`` holds the facts of the strictly lower strata;
        negated atoms are checked against it only, which is sound because a
        stratified program never derives a negated predicate in the same or a
        higher stratum.
        """
        # First round: plain naive pass so that rules whose bodies are fully
        # satisfied by lower strata fire at least once.
        delta = Instance()
        for rule in rules:
            for substitution in match_atoms(rule.body_positive, instance):
                if rule.body_negative and satisfies_some(
                    rule.body_negative, negation_reference, substitution
                ):
                    continue
                for head_atom in rule.head:
                    fact = head_atom.apply(substitution)
                    if instance.add(fact):
                        delta.add(fact)

        # Delta rounds: at least one body atom must come from the last delta.
        while len(delta):
            new_delta = Instance()
            for rule in rules:
                relevant = [
                    i
                    for i, atom in enumerate(rule.body_positive)
                    if atom.predicate in delta.predicates
                ]
                for pivot in relevant:
                    for substitution in self._match_with_pivot(
                        rule.body_positive, pivot, delta, instance
                    ):
                        if rule.body_negative and satisfies_some(
                            rule.body_negative, negation_reference, substitution
                        ):
                            continue
                        for head_atom in rule.head:
                            fact = head_atom.apply(substitution)
                            if instance.add(fact):
                                new_delta.add(fact)
            delta = new_delta

    @staticmethod
    def _match_with_pivot(
        atoms: Sequence[Atom],
        pivot: int,
        delta: Instance,
        instance: Instance,
    ) -> Iterator[Dict[Variable, Term]]:
        """Homomorphisms where the ``pivot``-th atom maps into ``delta``."""
        pivot_atom = atoms[pivot]
        others = [a for i, a in enumerate(atoms) if i != pivot]
        for fact in delta.matching(pivot_atom):
            seed = unify_with_fact(pivot_atom, fact)
            if seed is None:
                continue
            if not others:
                yield seed
                continue
            yield from match_atoms(others, instance, initial=seed)
