"""Atoms and positions.

An atom has the form ``p(t1, ..., tn)`` where ``p`` is an n-ary predicate and
each ``ti`` is a term (constant, null or variable).  A *position* ``p[i]``
identifies the i-th attribute of the predicate ``p``; positions are the
currency of the affected-position analysis in Section 4.1 of the paper.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.datalog.terms import Constant, Null, Term, Variable


class Position:
    """The position ``p[i]`` (1-based, following the paper's convention)."""

    __slots__ = ("predicate", "index")

    def __init__(self, predicate: str, index: int):
        if index < 1:
            raise ValueError("positions are 1-based; index must be >= 1")
        self.predicate = predicate
        self.index = index

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Position)
            and self.predicate == other.predicate
            and self.index == other.index
        )

    def __hash__(self) -> int:
        return hash((Position, self.predicate, self.index))

    def __repr__(self) -> str:
        return f"Position({self.predicate!r}, {self.index})"

    def __str__(self) -> str:
        return f"{self.predicate}[{self.index}]"

    def __lt__(self, other: "Position") -> bool:
        if not isinstance(other, Position):
            return NotImplemented
        return (self.predicate, self.index) < (other.predicate, other.index)


class Atom:
    """An atom ``p(t1, ..., tn)``.

    Atoms are immutable and hashable, so instances and rule bodies can be
    plain Python sets of atoms, matching the paper's set-based definitions.
    """

    __slots__ = ("predicate", "terms", "_hash", "_key")

    def __init__(self, predicate: str, terms: Iterable[Term]):
        if not predicate:
            raise ValueError("predicate name must be non-empty")
        self.predicate = predicate
        self.terms: Tuple[Term, ...] = tuple(terms)
        self._hash = hash((Atom, self.predicate, self.terms))
        # Memoised dictionary-encoded fact key ``(pid, tid1, ..., tidn)``
        # (:meth:`repro.engine.interning.TermTable.atom_key`); cache state,
        # never part of the value.
        self._key = None

    def __getstate__(self):
        """Pickle the value only; hashes and interned keys are process-local."""
        return (self.predicate, self.terms)

    def __setstate__(self, state):
        """Restore the value and recompute the process-local caches."""
        self.predicate, self.terms = state
        self._hash = hash((Atom, self.predicate, self.terms))
        self._key = None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def of(cls, predicate: str, *terms: Term) -> "Atom":
        """Convenience variadic constructor: ``Atom.of("p", x, y)``."""
        return cls(predicate, terms)

    # -- basic protocol --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and self.predicate == other.predicate
            and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Atom({self.predicate!r}, {list(self.terms)!r})"

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate}({args})"

    def __lt__(self, other: "Atom") -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return (self.predicate, tuple(map(str, self.terms))) < (
            other.predicate,
            tuple(map(str, other.terms)),
        )

    # -- inspection -------------------------------------------------------------

    @property
    def arity(self) -> int:
        """The number of term positions."""
        return len(self.terms)

    @property
    def variables(self) -> FrozenSet[Variable]:
        """``var(a)``: the set of variables occurring in the atom."""
        return frozenset(t for t in self.terms if isinstance(t, Variable))

    @property
    def constants(self) -> FrozenSet[Constant]:
        """The constants occurring in the atom."""
        return frozenset(t for t in self.terms if isinstance(t, Constant))

    @property
    def nulls(self) -> FrozenSet[Null]:
        """The labelled nulls occurring in the atom."""
        return frozenset(t for t in self.terms if isinstance(t, Null))

    @property
    def domain(self) -> FrozenSet[Term]:
        """``dom(a)``: the set of all terms occurring in the atom."""
        return frozenset(self.terms)

    @property
    def is_ground(self) -> bool:
        """True iff the atom mentions only constants (no nulls, no variables)."""
        return all(isinstance(t, Constant) for t in self.terms)

    @property
    def is_fact(self) -> bool:
        """True iff the atom mentions no variables (constants and nulls only)."""
        return not any(isinstance(t, Variable) for t in self.terms)

    def positions(self) -> Tuple[Position, ...]:
        """All positions ``p[1] ... p[arity]`` of the atom's predicate."""
        return tuple(Position(self.predicate, i + 1) for i in range(self.arity))

    def positions_of(self, term: Term) -> Tuple[Position, ...]:
        """The positions at which ``term`` occurs in this atom."""
        return tuple(
            Position(self.predicate, i + 1)
            for i, t in enumerate(self.terms)
            if t == term
        )

    # -- substitution ------------------------------------------------------------

    def apply(self, substitution: Mapping[Term, Term]) -> "Atom":
        """Return the atom obtained by replacing terms according to the mapping.

        Terms not mentioned by the substitution are left untouched, which is
        how homomorphisms (partial functions) act on atoms in the paper.
        """
        return Atom(self.predicate, tuple(substitution.get(t, t) for t in self.terms))

    def rename_variables(self, renaming: Mapping[Variable, Variable]) -> "Atom":
        """Rename variables only (constants and nulls are preserved)."""
        return Atom(
            self.predicate,
            tuple(
                renaming.get(t, t) if isinstance(t, Variable) else t for t in self.terms
            ),
        )


def unify_with_fact(atom: Atom, fact: Atom) -> Optional[Dict[Variable, Term]]:
    """Match ``atom`` (which may contain variables) against a variable-free fact.

    Returns the substitution on ``atom``'s variables that turns it into
    ``fact``, or ``None`` when no such substitution exists.  Constants and
    nulls in ``atom`` must match the fact exactly (nulls are treated like
    constants, as required by the indefinite grounding of Section 3.2).
    """
    if atom.predicate != fact.predicate or atom.arity != fact.arity:
        return None
    substitution: Dict[Variable, Term] = {}
    for pattern_term, fact_term in zip(atom.terms, fact.terms):
        if isinstance(pattern_term, Variable):
            bound = substitution.get(pattern_term)
            if bound is None:
                substitution[pattern_term] = fact_term
            elif bound != fact_term:
                return None
        elif pattern_term != fact_term:
            return None
    return substitution
