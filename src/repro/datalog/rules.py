"""Rules and constraints of Datalog with existentials and stratified negation.

A ``Datalog^{E,neg}`` rule (Section 3.2) has the form::

    a1, ..., an, not b1, ..., not bm  ->  exists ?Y1 ... ?Yk . c1, ..., cj

subject to the paper's well-formedness conditions:

1. ``n >= 1`` and ``m, k >= 0``;
2. body atoms mention only constants and variables;
3. every variable of a negative body atom also occurs in a positive body atom
   (safety of negation);
4. the existential variables are disjoint from the body variables;
5. head atoms mention only constants, existential variables, and (frontier)
   body variables.

The paper states rules with a single head atom but notes (footnote 6) that
multi-atom heads are harmless syntactic sugar; we support them natively and
provide :meth:`Rule.split_head` for the single-head normal form.

A constraint is ``a1, ..., an -> false`` (the ``⊥`` of the paper).
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant, Null, Term, Variable


class RuleError(ValueError):
    """Raised when a rule or constraint violates the syntactic conditions."""


class Rule:
    """A Datalog rule, possibly with existential head variables and negation."""

    __slots__ = ("body_positive", "body_negative", "head", "existential_variables", "label", "_hash")

    def __init__(
        self,
        body_positive: Iterable[Atom],
        head: Iterable[Atom],
        body_negative: Iterable[Atom] = (),
        existential_variables: Iterable[Variable] = (),
        label: Optional[str] = None,
    ):
        self.body_positive: Tuple[Atom, ...] = tuple(body_positive)
        self.body_negative: Tuple[Atom, ...] = tuple(body_negative)
        self.head: Tuple[Atom, ...] = tuple(head)
        self.existential_variables: FrozenSet[Variable] = frozenset(existential_variables)
        self.label = label
        self._validate()
        self._hash = hash(
            (
                Rule,
                self.body_positive,
                self.body_negative,
                self.head,
                self.existential_variables,
            )
        )

    # -- validation ---------------------------------------------------------

    def _validate(self) -> None:
        if not self.body_positive:
            raise RuleError("a rule needs at least one positive body atom (n >= 1)")
        if not self.head:
            raise RuleError("a rule needs at least one head atom")
        for atom in self.body_positive + self.body_negative:
            for term in atom.terms:
                if isinstance(term, Null):
                    # Nulls in bodies only arise through the indefinite
                    # grounding, which is an internal construction; the
                    # user-facing syntax forbids them.  We allow them but only
                    # when explicitly requested via Rule.allow_nulls().
                    raise RuleError(
                        f"body atom {atom} mentions the null {term}; "
                        "rules may only use constants and variables"
                    )
        positive_vars = self.positive_body_variables
        for atom in self.body_negative:
            if not atom.variables <= positive_vars:
                missing = sorted(atom.variables - positive_vars)
                raise RuleError(
                    f"negative atom {atom} uses variables {missing} that do not "
                    "occur in any positive body atom"
                )
        if self.existential_variables & self.body_variables:
            clash = sorted(self.existential_variables & self.body_variables)
            raise RuleError(
                f"existential variables {clash} also occur in the rule body"
            )
        allowed_head_vars = positive_vars | self.existential_variables
        for atom in self.head:
            for term in atom.terms:
                if isinstance(term, Null):
                    raise RuleError(f"head atom {atom} mentions the null {term}")
                if isinstance(term, Variable) and term not in allowed_head_vars:
                    raise RuleError(
                        f"head variable {term} of {atom} is neither a body variable "
                        "nor an existential variable"
                    )

    # -- basic protocol -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Rule)
            and self.body_positive == other.body_positive
            and self.body_negative == other.body_negative
            and self.head == other.head
            and self.existential_variables == other.existential_variables
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Rule({str(self)!r})"

    def __str__(self) -> str:
        body_parts = [str(a) for a in self.body_positive]
        body_parts += [f"not {a}" for a in self.body_negative]
        body = ", ".join(body_parts)
        head = ", ".join(str(a) for a in self.head)
        if self.existential_variables:
            evars = " ".join(str(v) for v in sorted(self.existential_variables))
            head = f"exists {evars} . {head}"
        return f"{body} -> {head}"

    # -- inspection -------------------------------------------------------------

    @property
    def body(self) -> Tuple[Atom, ...]:
        """``body(rho)``: positive followed by negative body atoms."""
        return self.body_positive + self.body_negative

    @property
    def positive_body_variables(self) -> FrozenSet[Variable]:
        """Variables of the positive body atoms."""
        return frozenset(
            v for atom in self.body_positive for v in atom.variables
        )

    @property
    def negative_body_variables(self) -> FrozenSet[Variable]:
        """Variables of the negated body atoms."""
        return frozenset(
            v for atom in self.body_negative for v in atom.variables
        )

    @property
    def body_variables(self) -> FrozenSet[Variable]:
        """Variables occurring anywhere in the body."""
        return self.positive_body_variables | self.negative_body_variables

    @property
    def head_variables(self) -> FrozenSet[Variable]:
        """Variables occurring in the head."""
        return frozenset(v for atom in self.head for v in atom.variables)

    @property
    def frontier(self) -> FrozenSet[Variable]:
        """The frontier: body variables propagated to the head."""
        return self.body_variables & self.head_variables

    @property
    def variables(self) -> FrozenSet[Variable]:
        """All variables of the rule."""
        return self.body_variables | self.head_variables | self.existential_variables

    @property
    def constants(self) -> FrozenSet[Constant]:
        """All constants of the rule."""
        return frozenset(
            c for atom in self.body + self.head for c in atom.constants
        )

    @property
    def has_existentials(self) -> bool:
        """True iff the head has existential variables."""
        return bool(self.existential_variables)

    @property
    def has_negation(self) -> bool:
        """True iff the body has negated atoms."""
        return bool(self.body_negative)

    @property
    def is_plain_datalog(self) -> bool:
        """True iff the rule has neither existentials nor negation."""
        return not self.has_existentials and not self.has_negation

    @property
    def head_predicates(self) -> FrozenSet[str]:
        """Predicates of the head atoms."""
        return frozenset(a.predicate for a in self.head)

    @property
    def body_predicates(self) -> FrozenSet[str]:
        """Predicates of the body atoms (either polarity)."""
        return frozenset(a.predicate for a in self.body)

    @property
    def predicates(self) -> FrozenSet[str]:
        """All predicates of the rule."""
        return self.head_predicates | self.body_predicates

    # -- transformations --------------------------------------------------------

    def positive_part(self) -> "Rule":
        """Drop negative body atoms (the ``Pi+`` operation of Section 4.2)."""
        if not self.body_negative:
            return self
        return Rule(
            self.body_positive,
            self.head,
            body_negative=(),
            existential_variables=self.existential_variables,
            label=self.label,
        )

    def split_head(self) -> Tuple["Rule", ...]:
        """Rewrite a multi-atom head into single-head rules.

        If the rule has no existential variables the split is the obvious one
        (one rule per head atom).  With existentials, the standard rewriting
        introduces an auxiliary predicate collecting the frontier and the
        existential variables so that all head atoms see the *same* invented
        nulls (footnote 6 of the paper / [12]).
        """
        if len(self.head) == 1:
            return (self,)
        if not self.existential_variables:
            return tuple(
                Rule(
                    self.body_positive,
                    (atom,),
                    body_negative=self.body_negative,
                    existential_variables=(),
                    label=self.label,
                )
                for atom in self.head
            )
        shared = sorted(self.frontier) + sorted(self.existential_variables)
        aux_predicate = f"aux_split_{abs(self._hash) % 10_000_000}"
        aux_atom = Atom(aux_predicate, tuple(shared))
        first = Rule(
            self.body_positive,
            (aux_atom,),
            body_negative=self.body_negative,
            existential_variables=self.existential_variables,
            label=self.label,
        )
        rest = tuple(
            Rule((aux_atom,), (atom,), label=self.label) for atom in self.head
        )
        return (first,) + rest

    def apply(self, substitution: Mapping[Term, Term]) -> "Rule":
        """Apply a substitution to every atom of the rule.

        Existential variables must not be in the substitution's domain.
        """
        if any(v in substitution for v in self.existential_variables):
            raise RuleError("cannot substitute an existential variable")
        return Rule(
            tuple(a.apply(substitution) for a in self.body_positive),
            tuple(a.apply(substitution) for a in self.head),
            body_negative=tuple(a.apply(substitution) for a in self.body_negative),
            existential_variables=self.existential_variables,
            label=self.label,
        )

    def rename_apart(self, suffix: str) -> "Rule":
        """Rename every variable by appending ``suffix`` (for variable-disjoint copies)."""
        renaming = {v: Variable(f"{v.name}{suffix}") for v in self.variables}
        return Rule(
            tuple(a.rename_variables(renaming) for a in self.body_positive),
            tuple(a.rename_variables(renaming) for a in self.head),
            body_negative=tuple(a.rename_variables(renaming) for a in self.body_negative),
            existential_variables=tuple(renaming[v] for v in self.existential_variables),
            label=self.label,
        )


class Constraint:
    """A negative constraint ``a1, ..., an -> false`` (⊥ in the head)."""

    __slots__ = ("body", "label", "_hash")

    def __init__(self, body: Iterable[Atom], label: Optional[str] = None):
        self.body: Tuple[Atom, ...] = tuple(body)
        self.label = label
        if not self.body:
            raise RuleError("a constraint needs at least one body atom")
        for atom in self.body:
            if atom.nulls:
                raise RuleError(f"constraint atom {atom} mentions a null")
        self._hash = hash((Constraint, self.body))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constraint) and self.body == other.body

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Constraint({str(self)!r})"

    def __str__(self) -> str:
        return ", ".join(str(a) for a in self.body) + " -> false"

    @property
    def variables(self) -> FrozenSet[Variable]:
        """Variables of the constraint body."""
        return frozenset(v for atom in self.body for v in atom.variables)

    @property
    def body_predicates(self) -> FrozenSet[str]:
        """Predicates of the constraint body."""
        return frozenset(a.predicate for a in self.body)

    def to_rule(self, witness_predicate: str, arity: int, star: Constant) -> Rule:
        """The ``Pi_⊥`` rewriting of Theorem 4.4.

        The constraint becomes a rule deriving ``witness_predicate(*, ..., *)``
        (``arity`` copies of the reserved constant ``star``), so that
        inconsistency of the database can be read off the query answer.
        """
        head = Atom(witness_predicate, tuple(star for _ in range(arity)))
        return Rule(self.body, (head,), label=self.label)


def fresh_variable_factory(prefix: str = "V") -> "itertools.count":
    """Shared counter used by normalisation passes needing fresh variables."""
    return itertools.count()


def make_fresh_variable(counter: "itertools.count", prefix: str = "V") -> Variable:
    """Return a variable unlikely to clash with user variables."""
    return Variable(f"__{prefix}{next(counter)}")
