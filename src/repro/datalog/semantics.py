"""The stratified semantics ``Pi(D)`` and query evaluation (Section 3.2).

Given a database ``D`` and a stratified ``Datalog^{E,neg_s,⊥}`` program ``Pi``
with stratification ``mu: sch(Pi) -> [0, l]``, the semantics is computed as::

    S_0 = chase(D, ex(Pi)_0)
    S_i = chase(S_{i-1}, (ex(Pi)_i)^{S_{i-1}})        for i in [1, l]

If some constraint body embeds into ``S_l``, the database is inconsistent
w.r.t. the program and ``Pi(D)`` is the special value ``INCONSISTENT`` (the
paper's ⊤); otherwise ``Pi(D) = S_l``.

For a query ``Q = (Pi, p)``::

    Q(D) = INCONSISTENT                               if Pi(D) = ⊤
    Q(D) = { t in U^n | p(t) in Pi(D) }               otherwise

The associated decision problem Eval asks, given ``D``, ``Q`` and a tuple
``t``, whether ``Q(D) != ⊤`` implies ``t in Q(D)``; :func:`eval_decision`
implements exactly that convention.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.datalog.atoms import Atom
from repro.datalog.chase import ChaseEngine, match_atoms
from repro.datalog.database import Instance
from repro.datalog.program import Program, Query
from repro.datalog.rules import Constraint
from repro.datalog.stratification import partition_by_stratum, stratify
from repro.datalog.terms import Constant


class _Inconsistent:
    """Singleton sentinel for the paper's ⊤ (inconsistency) value."""

    _instance: Optional["_Inconsistent"] = None

    def __new__(cls) -> "_Inconsistent":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "INCONSISTENT"

    def __bool__(self) -> bool:
        return False


INCONSISTENT = _Inconsistent()

SemanticsResult = Union[Instance, _Inconsistent]
QueryResult = Union[FrozenSet[Tuple[Constant, ...]], _Inconsistent]


class StratifiedSemantics:
    """Computes ``Pi(D)`` for stratified programs with existentials and ⊥."""

    def __init__(self, program: Program, chase_engine: Optional[ChaseEngine] = None):
        self.program = program
        self.chase_engine = chase_engine or ChaseEngine()
        self.stratification = stratify(program.ex())
        self.strata = partition_by_stratum(program.ex(), self.stratification)

    def materialise(self, database: Iterable[Atom]) -> SemanticsResult:
        """Compute ``Pi(D)`` (an instance, or ``INCONSISTENT``).

        One live :class:`Instance` is threaded through all strata
        (``reuse_instance=True``): each stratum's chase extends it in place,
        and the stratum's negation reference is a frozen
        :meth:`~repro.datalog.database.Instance.snapshot` — per-predicate row
        counts, not a copy — so the per-stratum re-index the seed performed
        is gone.  In parallel mode one worker session spans all strata for
        the same reason: each fact ships to the pool once, not once per
        stratum.
        """
        current = Instance(database)
        session = self._session_for(current)
        try:
            for stratum_rules in self.strata:
                if not stratum_rules:
                    continue
                reference = current.snapshot()
                self.chase_engine.chase(
                    current,
                    Program(stratum_rules),
                    negation_reference=reference,
                    reuse_instance=True,
                    session=session,
                )
        finally:
            if session is not None:
                session.close()
        if self._violates_constraints(current):
            return INCONSISTENT
        return current

    def delta_session(self, database: Iterable[Atom] = ()):
        """An incremental session computing ``Pi(D)`` over a growing ``D``.

        Materialises ``database`` once with this semantics' chase engine and
        returns a :class:`~repro.engine.incremental.DeltaSession`: batches of
        new EDB facts fed to :meth:`~repro.engine.incremental.DeltaSession.push`
        resume evaluation from the affected strata only, instead of
        recomputing the stratified fixpoint from scratch.
        """
        from repro.engine.incremental import DeltaSession

        return DeltaSession(
            self.program, database, engine="chase", chase_engine=self.chase_engine
        )

    def _session_for(self, current: Instance):
        """One parallel session spanning every stratum's chase (or None)."""
        from repro.engine.mode import parallel_enabled

        if not parallel_enabled():
            return None
        from repro.engine.parallel import maybe_session
        from repro.engine.plan import compile_rule

        return maybe_session(
            current,
            [compile_rule(rule) for stratum in self.strata for rule in stratum],
        )

    def _violates_constraints(self, instance: Instance) -> bool:
        for constraint in self.program.constraints:
            if next(match_atoms(constraint.body, instance), None) is not None:
                return True
        return False

    def violated_constraints(self, database: Iterable[Atom]) -> List[Constraint]:
        """The constraints violated by ``database`` under the program (diagnostics)."""
        current = Instance(database)
        session = self._session_for(current)
        try:
            for stratum_rules in self.strata:
                if not stratum_rules:
                    continue
                reference = current.snapshot()
                self.chase_engine.chase(
                    current,
                    Program(stratum_rules),
                    negation_reference=reference,
                    reuse_instance=True,
                    session=session,
                )
        finally:
            if session is not None:
                session.close()
        return [
            c
            for c in self.program.constraints
            if next(match_atoms(c.body, current), None) is not None
        ]


def evaluate_program(
    program: Program,
    database: Iterable[Atom],
    chase_engine: Optional[ChaseEngine] = None,
) -> SemanticsResult:
    """Convenience wrapper around :class:`StratifiedSemantics`."""
    return StratifiedSemantics(program, chase_engine).materialise(database)


def evaluate_query(
    query: Query,
    database: Iterable[Atom],
    chase_engine: Optional[ChaseEngine] = None,
) -> QueryResult:
    """Compute ``Q(D)``: the set of constant tuples in the output predicate, or ⊤."""
    materialised = evaluate_program(query.program, database, chase_engine)
    if materialised is INCONSISTENT:
        return INCONSISTENT
    answers: Set[Tuple[Constant, ...]] = set()
    for atom in materialised.with_predicate(query.output_predicate):
        if atom.is_ground:
            answers.add(tuple(atom.terms))  # type: ignore[arg-type]
    return frozenset(answers)


def eval_decision(
    query: Query,
    database: Iterable[Atom],
    candidate: Sequence[Constant],
    chase_engine: Optional[ChaseEngine] = None,
) -> bool:
    """The decision problem Eval: does ``Q(D) != ⊤`` imply ``t in Q(D)``?"""
    result = evaluate_query(query, database, chase_engine)
    if result is INCONSISTENT:
        return True
    return tuple(candidate) in result
