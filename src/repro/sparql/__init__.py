"""SPARQL algebra substrate (Section 3.1).

Graph patterns are built from basic graph patterns (sets of triple patterns
over URIs, blank nodes and variables) with the binary operators AND, UNION,
OPT and FILTER, plus SELECT projection, following the Pérez–Arenas–Gutierrez
algebraic formalisation the paper adopts.  The evaluator implements the
mapping-based semantics ``⟦P⟧_G`` literally.
"""

from repro.sparql.ast import (
    TriplePattern,
    BGP,
    And,
    Union,
    Opt,
    Filter,
    Select,
    GraphPattern,
    Condition,
    Bound,
    EqualsConstant,
    EqualsVariable,
    Not,
    OrCondition,
    AndCondition,
)
from repro.sparql.mappings import (
    Mapping,
    EMPTY_MAPPING,
    compatible,
    join,
    union,
    minus,
    left_outer_join,
)
from repro.sparql.evaluator import evaluate_pattern
from repro.sparql.parser import parse_sparql, SPARQLParseError, SelectQuery

__all__ = [
    "TriplePattern",
    "BGP",
    "And",
    "Union",
    "Opt",
    "Filter",
    "Select",
    "GraphPattern",
    "Condition",
    "Bound",
    "EqualsConstant",
    "EqualsVariable",
    "Not",
    "OrCondition",
    "AndCondition",
    "Mapping",
    "EMPTY_MAPPING",
    "compatible",
    "join",
    "union",
    "minus",
    "left_outer_join",
    "evaluate_pattern",
    "parse_sparql",
    "SPARQLParseError",
    "SelectQuery",
]
