"""The SPARQL evaluation function ``⟦P⟧_G`` (Section 3.1).

The semantics is defined recursively on the pattern structure:

1. basic graph patterns: all mappings ``mu`` with ``dom(mu) = var(P)`` such
   that some assignment ``h: B -> U`` of the blank nodes makes
   ``mu(h(P)) ⊆ G``;
2. ``⟦P1 AND P2⟧ = ⟦P1⟧ ⋈ ⟦P2⟧``;
3. ``⟦P1 UNION P2⟧ = ⟦P1⟧ ∪ ⟦P2⟧``;
4. ``⟦P1 OPT P2⟧ = ⟦P1⟧ ⟕ ⟦P2⟧``;
5. ``⟦P FILTER R⟧ = { mu ∈ ⟦P⟧ | mu ⊨ R }``;
6. ``⟦SELECT W P⟧ = { mu|_W | mu ∈ ⟦P⟧ }``.
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Union as TypingUnion

from repro.datalog.terms import Constant, Null, Variable
from repro.rdf.graph import RDFGraph
from repro.sparql.ast import (
    And,
    AndCondition,
    BGP,
    Bound,
    Condition,
    EqualsConstant,
    EqualsVariable,
    Filter,
    GraphPattern,
    Not,
    Opt,
    OrCondition,
    Select,
    TriplePattern,
    Union,
)
from repro.sparql.mappings import Mapping, join, left_outer_join, union


def satisfies(mapping: Mapping, condition: Condition) -> bool:
    """``mu ⊨ R`` for built-in conditions (Section 3.1)."""
    if isinstance(condition, Bound):
        return condition.variable in mapping
    if isinstance(condition, EqualsConstant):
        value = mapping.get(condition.variable)
        return value is not None and value == condition.constant
    if isinstance(condition, EqualsVariable):
        left = mapping.get(condition.left)
        right = mapping.get(condition.right)
        return left is not None and right is not None and left == right
    if isinstance(condition, Not):
        return not satisfies(mapping, condition.condition)
    if isinstance(condition, OrCondition):
        return satisfies(mapping, condition.left) or satisfies(mapping, condition.right)
    if isinstance(condition, AndCondition):
        return satisfies(mapping, condition.left) and satisfies(mapping, condition.right)
    raise TypeError(f"unknown built-in condition {condition!r}")


def _match_triple_pattern(
    pattern: TriplePattern,
    graph: RDFGraph,
    binding: Dict[TypingUnion[Variable, Null], Constant],
) -> Iterator[Dict[TypingUnion[Variable, Null], Constant]]:
    """Extend ``binding`` in all ways that map the triple pattern into the graph.

    Variables and blank nodes are treated uniformly here; the caller later
    projects blank-node bindings away (they play the role of existential
    variables in basic graph patterns).
    """

    def resolve(term):
        """The bound value of a variable/blank node, or the term itself."""
        if isinstance(term, (Variable, Null)):
            return binding.get(term)
        return term

    subject = resolve(pattern.subject)
    predicate = resolve(pattern.predicate)
    object_ = resolve(pattern.object)
    for triple in graph.triples(subject, predicate, object_):
        extension = dict(binding)
        consistent = True
        for pattern_term, value in zip(pattern, triple):
            if isinstance(pattern_term, (Variable, Null)):
                bound = extension.get(pattern_term)
                if bound is None:
                    extension[pattern_term] = value
                elif bound != value:
                    consistent = False
                    break
            elif pattern_term != value:
                consistent = False
                break
        if consistent:
            yield extension


def evaluate_bgp(bgp: BGP, graph: RDFGraph) -> Set[Mapping]:
    """Case (1) of the semantics: basic graph patterns."""
    bindings: list = [{}]
    for pattern in bgp.patterns:
        bindings = [
            extension
            for binding in bindings
            for extension in _match_triple_pattern(pattern, graph, binding)
        ]
    variables = bgp.variables()
    results: Set[Mapping] = set()
    for binding in bindings:
        results.add(
            Mapping({v: c for v, c in binding.items() if isinstance(v, Variable) and v in variables})
        )
    return results


def evaluate_pattern(pattern: GraphPattern, graph: RDFGraph) -> Set[Mapping]:
    """``⟦P⟧_G``: the set of mappings resulting from evaluating ``P`` over ``G``."""
    if isinstance(pattern, BGP):
        return evaluate_bgp(pattern, graph)
    if isinstance(pattern, And):
        return join(evaluate_pattern(pattern.left, graph), evaluate_pattern(pattern.right, graph))
    if isinstance(pattern, Union):
        return union(evaluate_pattern(pattern.left, graph), evaluate_pattern(pattern.right, graph))
    if isinstance(pattern, Opt):
        return left_outer_join(
            evaluate_pattern(pattern.left, graph), evaluate_pattern(pattern.right, graph)
        )
    if isinstance(pattern, Filter):
        return {
            mapping
            for mapping in evaluate_pattern(pattern.pattern, graph)
            if satisfies(mapping, pattern.condition)
        }
    if isinstance(pattern, Select):
        return {
            mapping.restrict(pattern.projection)
            for mapping in evaluate_pattern(pattern.pattern, graph)
        }
    raise TypeError(f"unknown graph pattern {pattern!r}")
