"""The SPARQL evaluation function ``⟦P⟧_G`` (Section 3.1), ID-native.

The semantics is defined recursively on the pattern structure:

1. basic graph patterns: all mappings ``mu`` with ``dom(mu) = var(P)`` such
   that some assignment ``h: B -> U`` of the blank nodes makes
   ``mu(h(P)) ⊆ G``;
2. ``⟦P1 AND P2⟧ = ⟦P1⟧ ⋈ ⟦P2⟧``;
3. ``⟦P1 UNION P2⟧ = ⟦P1⟧ ∪ ⟦P2⟧``;
4. ``⟦P1 OPT P2⟧ = ⟦P1⟧ ⟕ ⟦P2⟧``;
5. ``⟦P FILTER R⟧ = { mu ∈ ⟦P⟧ | mu ⊨ R }``;
6. ``⟦SELECT W P⟧ = { mu|_W | mu ∈ ⟦P⟧ }``.

Since PR 6 the evaluation core runs **ID-native** on the engine's interned
term IDs (:mod:`repro.engine.interning`): an *ID mapping* is a frozenset of
``(Variable, tid)`` pairs, triple matching probes flat int rows, and the
whole algebra (join/union/minus/left-outer-join, built-in conditions)
compares ints.  Terms are decoded back into boxed
:class:`~repro.sparql.mappings.Mapping` objects only at the result boundary
(:func:`decode_id_mappings`).  Two interchangeable triple sources feed the
core:

* :class:`GraphIdView` — an interned postings view of an
  :class:`~repro.rdf.graph.RDFGraph`, built once per graph version and
  cached on the graph (the classic ``⟦P⟧_G`` entry points
  :func:`evaluate_pattern` / :func:`evaluate_bgp` use this);
* :class:`InstanceTripleSource` — ID rows of a materialized
  :class:`~repro.datalog.database.Instance` or frozen
  :class:`~repro.engine.index.InstanceSnapshot`, which is how the
  entailment-regime view (:mod:`repro.translation.entailment_regime`) and
  the query service read without ever decoding.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union as TypingUnion

from repro.datalog.terms import Constant, Null, Variable
from repro.engine.interning import TERMS
from repro.rdf.graph import RDFGraph
from repro.sparql.ast import (
    And,
    AndCondition,
    BGP,
    Bound,
    Condition,
    EqualsConstant,
    EqualsVariable,
    Filter,
    GraphPattern,
    Not,
    Opt,
    OrCondition,
    Select,
    TriplePattern,
    Union,
)
from repro.sparql.mappings import Mapping

#: An ID mapping: ``mu`` as a hashable set of (variable, term-ID) pairs.
IdMapping = FrozenSet[Tuple[Variable, int]]

#: ``mu_∅`` in ID form.
EMPTY_ID_MAPPING: IdMapping = frozenset()


# ---------------------------------------------------------------------------
# Triple sources
# ---------------------------------------------------------------------------


class GraphIdView:
    """Interned postings view of an :class:`RDFGraph` (built per version).

    Every graph term is interned through the global table once; matching then
    probes ``(position, tid)`` postings exactly like the engine's
    :class:`~repro.engine.index.PredicateIndex`, without the per-candidate
    term ``__eq__`` dispatch the decoded evaluator paid.
    """

    __slots__ = ("_rows", "_postings")

    def __init__(self, graph: RDFGraph):
        rows: List[Tuple[int, int, int]] = []
        postings: Dict[Tuple[int, int], List[int]] = {}
        intern = TERMS.intern_term
        for triple in graph:
            ids = (
                intern(triple.subject),
                intern(triple.predicate),
                intern(triple.object),
            )
            row_id = len(rows)
            rows.append(ids)
            for position, tid in enumerate(ids):
                bucket = postings.get((position, tid))
                if bucket is None:
                    postings[(position, tid)] = [row_id]
                else:
                    bucket.append(row_id)
        self._rows = rows
        self._postings = postings

    def scan(self, pairs: Sequence[Tuple[int, int]]) -> Iterator[Tuple[int, int, int]]:
        """Triple ID rows matching every ``(position, tid)`` pair."""
        rows = self._rows
        if not pairs:
            return iter(rows)
        buckets: List[List[int]] = []
        for position, tid in pairs:
            bucket = self._postings.get((position, tid))
            if not bucket:
                return iter(())
            buckets.append(bucket)
        smallest = min(buckets, key=len)
        if len(pairs) == 1:
            return (rows[row_id] for row_id in smallest)
        return (
            rows[row_id]
            for row_id in smallest
            if all(rows[row_id][position] == tid for position, tid in pairs)
        )

    def __len__(self) -> int:
        return len(self._rows)


def graph_id_view(graph: RDFGraph) -> GraphIdView:
    """The (cached) :class:`GraphIdView` of ``graph``.

    The cache key pairs the graph's mutation counter with the term-table
    epoch: a graph edit or an epoch reset (which may reassign blank-node
    IDs) both invalidate the view.
    """
    key = (graph._version, TERMS.epoch())
    cached = getattr(graph, "_id_view", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    view = GraphIdView(graph)
    graph._id_view = (key, view)
    return view


class InstanceTripleSource:
    """BGP triple source over one predicate of a materialized instance.

    ``store`` is anything with ``matching_ids(predicate, arity, pairs)`` — a
    live :class:`~repro.datalog.database.Instance` or a frozen
    :class:`~repro.engine.index.InstanceSnapshot` (the query service always
    passes the latter, which is what makes its reads snapshot-isolated).
    """

    __slots__ = ("_store", "predicate")

    def __init__(self, store, predicate: str):
        self._store = store
        self.predicate = predicate

    def scan(self, pairs: Sequence[Tuple[int, int]]) -> Iterator[Tuple[int, ...]]:
        """Triple ID rows of the configured predicate matching ``pairs``."""
        return self._store.matching_ids(self.predicate, 3, pairs)


# ---------------------------------------------------------------------------
# Basic graph patterns, ID-native
# ---------------------------------------------------------------------------

_Binder = TypingUnion[Variable, Null]


def _pattern_slots(pattern: TriplePattern) -> Optional[Tuple[object, object, object]]:
    """Per-position ``tid`` (bound constant) or binder object, or None.

    ``None`` means a pattern constant was never interned, so the pattern
    cannot match any stored fact.
    """
    slots: List[object] = []
    find = TERMS.find_term
    for term in (pattern.subject, pattern.predicate, pattern.object):
        if isinstance(term, (Variable, Null)):
            slots.append(term)
        else:
            tid = find(term)
            if tid is None:
                return None
            slots.append(tid)
    return tuple(slots)


def evaluate_bgp_ids(
    bgp: BGP,
    scan: Callable[[Sequence[Tuple[int, int]]], Iterable[Tuple[int, ...]]],
    guard: Optional[Callable[[_Binder, int], bool]] = None,
    empty_bgp_result: bool = True,
) -> Set[IdMapping]:
    """Case (1) of the semantics on interned IDs.

    ``scan(pairs)`` yields the stored triple ID rows matching the bound
    ``(position, tid)`` pairs.  ``guard`` (optional) vets every fresh binder
    binding — the entailment regimes pass active-domain membership here, so
    guardedness is enforced during matching instead of by post-filtering.
    ``empty_bgp_result`` decides ``⟦{}⟧``: True for the plain semantics
    (always ``{mu_∅}``), while the entailment translation makes the empty
    BGP contingent on a non-empty domain.
    """
    if not bgp.patterns:
        return {EMPTY_ID_MAPPING} if empty_bgp_result else set()
    bindings: List[Dict[_Binder, int]] = [{}]
    for pattern in bgp.patterns:
        slots = _pattern_slots(pattern)
        if slots is None:
            return set()
        extended: List[Dict[_Binder, int]] = []
        for binding in bindings:
            pairs: List[Tuple[int, int]] = []
            binders: List[Tuple[int, _Binder]] = []
            for position, slot in enumerate(slots):
                if type(slot) is int:
                    pairs.append((position, slot))
                else:
                    tid = binding.get(slot)
                    if tid is None:
                        binders.append((position, slot))
                    else:
                        pairs.append((position, tid))
            for row in scan(pairs):
                extension = dict(binding)
                consistent = True
                for position, binder in binders:
                    tid = row[position]
                    bound = extension.get(binder)
                    if bound is None:
                        if guard is not None and not guard(binder, tid):
                            consistent = False
                            break
                        extension[binder] = tid
                    elif bound != tid:
                        consistent = False
                        break
                if consistent:
                    extended.append(extension)
        bindings = extended
        if not bindings:
            return set()
    variables = bgp.variables()
    return {
        frozenset(
            (binder, tid)
            for binder, tid in binding.items()
            if isinstance(binder, Variable) and binder in variables
        )
        for binding in bindings
    }


# ---------------------------------------------------------------------------
# The mapping algebra on ID mappings
# ---------------------------------------------------------------------------


def _merge_ids(base: Dict[Variable, int], other: IdMapping) -> Optional[IdMapping]:
    """``mu1 ∪ mu2`` if compatible, else None."""
    merged = dict(base)
    for variable, tid in other:
        bound = merged.get(variable)
        if bound is None:
            merged[variable] = tid
        elif bound != tid:
            return None
    return frozenset(merged.items())


def join_ids(first: Set[IdMapping], second: Set[IdMapping]) -> Set[IdMapping]:
    """``Omega1 ⋈ Omega2`` on ID mappings."""
    result: Set[IdMapping] = set()
    for mu1 in first:
        base = dict(mu1)
        for mu2 in second:
            merged = _merge_ids(base, mu2)
            if merged is not None:
                result.add(merged)
    return result


def minus_ids(first: Set[IdMapping], second: Set[IdMapping]) -> Set[IdMapping]:
    """``Omega1 ∖ Omega2``: mappings compatible with no mapping of Omega2."""
    result: Set[IdMapping] = set()
    for mu1 in first:
        base = dict(mu1)
        if all(_merge_ids(base, mu2) is None for mu2 in second):
            result.add(mu1)
    return result


def left_outer_join_ids(first: Set[IdMapping], second: Set[IdMapping]) -> Set[IdMapping]:
    """``Omega1 ⟕ Omega2 = (Omega1 ⋈ Omega2) ∪ (Omega1 ∖ Omega2)``."""
    return join_ids(first, second) | minus_ids(first, second)


def satisfies_ids(binding: Dict[Variable, int], condition: Condition) -> bool:
    """``mu ⊨ R`` on an ID mapping (as a dict)."""
    if isinstance(condition, Bound):
        return condition.variable in binding
    if isinstance(condition, EqualsConstant):
        tid = binding.get(condition.variable)
        return tid is not None and tid == TERMS.find_term(condition.constant)
    if isinstance(condition, EqualsVariable):
        left = binding.get(condition.left)
        right = binding.get(condition.right)
        return left is not None and right is not None and left == right
    if isinstance(condition, Not):
        return not satisfies_ids(binding, condition.condition)
    if isinstance(condition, OrCondition):
        return satisfies_ids(binding, condition.left) or satisfies_ids(binding, condition.right)
    if isinstance(condition, AndCondition):
        return satisfies_ids(binding, condition.left) and satisfies_ids(binding, condition.right)
    raise TypeError(f"unknown built-in condition {condition!r}")


def evaluate_pattern_ids(
    pattern: GraphPattern,
    bgp_evaluator: Callable[[BGP], Set[IdMapping]],
) -> Set[IdMapping]:
    """``⟦P⟧`` on interned IDs, parameterised by the BGP base case.

    The recursion over AND/UNION/OPT/FILTER/SELECT is shared between the
    plain graph semantics and the entailment-regime view; only the basic
    graph pattern case differs (triple source + guards), so callers inject
    it.
    """
    if isinstance(pattern, BGP):
        return bgp_evaluator(pattern)
    if isinstance(pattern, And):
        return join_ids(
            evaluate_pattern_ids(pattern.left, bgp_evaluator),
            evaluate_pattern_ids(pattern.right, bgp_evaluator),
        )
    if isinstance(pattern, Union):
        return evaluate_pattern_ids(pattern.left, bgp_evaluator) | evaluate_pattern_ids(
            pattern.right, bgp_evaluator
        )
    if isinstance(pattern, Opt):
        return left_outer_join_ids(
            evaluate_pattern_ids(pattern.left, bgp_evaluator),
            evaluate_pattern_ids(pattern.right, bgp_evaluator),
        )
    if isinstance(pattern, Filter):
        return {
            mapping
            for mapping in evaluate_pattern_ids(pattern.pattern, bgp_evaluator)
            if satisfies_ids(dict(mapping), pattern.condition)
        }
    if isinstance(pattern, Select):
        allowed = {
            v if isinstance(v, Variable) else Variable(v) for v in pattern.projection
        }
        return {
            frozenset((v, tid) for v, tid in mapping if v in allowed)
            for mapping in evaluate_pattern_ids(pattern.pattern, bgp_evaluator)
        }
    raise TypeError(f"unknown graph pattern {pattern!r}")


# ---------------------------------------------------------------------------
# The result boundary
# ---------------------------------------------------------------------------


def decode_id_mappings(id_mappings: Iterable[IdMapping]) -> Set[Mapping]:
    """Decode ID mappings into boxed :class:`Mapping` objects (result boundary)."""
    term = TERMS.term
    return {
        Mapping({variable: term(tid) for variable, tid in mapping})
        for mapping in id_mappings
    }


# ---------------------------------------------------------------------------
# The classic decoded entry points (⟦P⟧_G over an RDFGraph)
# ---------------------------------------------------------------------------


def satisfies(mapping: Mapping, condition: Condition) -> bool:
    """``mu ⊨ R`` for built-in conditions (Section 3.1), on boxed mappings."""
    if isinstance(condition, Bound):
        return condition.variable in mapping
    if isinstance(condition, EqualsConstant):
        value = mapping.get(condition.variable)
        return value is not None and value == condition.constant
    if isinstance(condition, EqualsVariable):
        left = mapping.get(condition.left)
        right = mapping.get(condition.right)
        return left is not None and right is not None and left == right
    if isinstance(condition, Not):
        return not satisfies(mapping, condition.condition)
    if isinstance(condition, OrCondition):
        return satisfies(mapping, condition.left) or satisfies(mapping, condition.right)
    if isinstance(condition, AndCondition):
        return satisfies(mapping, condition.left) and satisfies(mapping, condition.right)
    raise TypeError(f"unknown built-in condition {condition!r}")


def evaluate_bgp(bgp: BGP, graph: RDFGraph) -> Set[Mapping]:
    """Case (1) of the semantics: basic graph patterns (decoded boundary)."""
    return decode_id_mappings(evaluate_bgp_ids(bgp, graph_id_view(graph).scan))


def evaluate_pattern(pattern: GraphPattern, graph: RDFGraph) -> Set[Mapping]:
    """``⟦P⟧_G``: the set of mappings resulting from evaluating ``P`` over ``G``."""
    scan = graph_id_view(graph).scan
    return decode_id_mappings(
        evaluate_pattern_ids(pattern, lambda bgp: evaluate_bgp_ids(bgp, scan))
    )


# Kept for any external callers of the pre-PR-6 decoded matcher.
def _match_triple_pattern(
    pattern: TriplePattern,
    graph: RDFGraph,
    binding: Dict[TypingUnion[Variable, Null], Constant],
) -> Iterator[Dict[TypingUnion[Variable, Null], Constant]]:
    """Extend ``binding`` in all ways that map the triple pattern into the graph.

    Variables and blank nodes are treated uniformly here; the caller later
    projects blank-node bindings away (they play the role of existential
    variables in basic graph patterns).
    """

    def resolve(term):
        """The bound value of a variable/blank node, or the term itself."""
        if isinstance(term, (Variable, Null)):
            return binding.get(term)
        return term

    subject = resolve(pattern.subject)
    predicate = resolve(pattern.predicate)
    object_ = resolve(pattern.object)
    for triple in graph.triples(subject, predicate, object_):
        extension = dict(binding)
        consistent = True
        for pattern_term, value in zip(pattern, triple):
            if isinstance(pattern_term, (Variable, Null)):
                bound = extension.get(pattern_term)
                if bound is None:
                    extension[pattern_term] = value
                elif bound != value:
                    consistent = False
                    break
            elif pattern_term != value:
                consistent = False
                break
        if consistent:
            yield extension
