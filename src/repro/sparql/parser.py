"""A compact concrete syntax for SPARQL SELECT queries.

The parser accepts the fragment of SPARQL used in the paper's examples::

    SELECT ?X
    WHERE {
      ?Y is_author_of ?Z .
      ?Y name ?X
    }

    SELECT ?X
    WHERE {
      { ?Y is_author_of ?Z . ?Y name ?X }
      UNION
      { ?Y is_author_of ?Z . ?Y owl:sameAs ?W . ?W name ?X }
    }

    SELECT ?X ?N WHERE { ?X name ?N OPTIONAL { ?X phone ?P } FILTER (bound(?N)) }

Supported: basic graph patterns (with blank nodes ``_:B``), nested groups,
``UNION``, ``OPTIONAL``, ``FILTER`` with ``bound(?X)``, ``?X = ?Y``,
``?X = const``, ``!``, ``&&`` and ``||``.  The result is a
:class:`SelectQuery` carrying the projected variables and the algebraic
pattern of :mod:`repro.sparql.ast`; the operator nesting follows the
Pérez–Arenas–Gutierrez algebra the paper uses (group elements are folded left
to right with AND, OPTIONAL attaches to the group built so far, FILTER applies
to the whole group).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.datalog.terms import Constant, Null, Variable
from repro.sparql.ast import (
    And,
    AndCondition,
    BGP,
    Bound,
    Condition,
    EqualsConstant,
    EqualsVariable,
    Filter,
    GraphPattern,
    Not,
    Opt,
    OrCondition,
    Select,
    TriplePattern,
    Union,
)


class SPARQLParseError(ValueError):
    """Raised on malformed query text."""


@dataclass
class SelectQuery:
    """A parsed ``SELECT`` query: projected variables plus the body pattern."""

    projection: Tuple[Variable, ...]
    pattern: GraphPattern

    def algebra(self) -> GraphPattern:
        """The full algebraic form ``(SELECT W body)``."""
        return Select(self.projection, self.pattern)


class _Token(NamedTuple):
    kind: str
    value: str


_TOKEN_SPEC = [
    ("WS", r"[ \t\r\n]+"),
    ("COMMENT", r"#[^\n]*"),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("DOT", r"\."),
    ("ANDAND", r"&&"),
    ("OROR", r"\|\|"),
    ("BANG", r"!"),
    ("EQUALS", r"="),
    ("VARIABLE", r"\?[A-Za-z_][A-Za-z0-9_]*"),
    ("BLANK", r"_:[A-Za-z0-9_]+"),
    ("STRING", r'"[^"]*"'),
    ("URIREF", r"<[^<>\s]*>"),
    ("NAME", r"[A-Za-z0-9_][A-Za-z0-9_:\-/#]*"),
    ("MISMATCH", r"."),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{n}>{p})" for n, p in _TOKEN_SPEC))

_KEYWORDS = {"SELECT", "WHERE", "UNION", "OPTIONAL", "FILTER", "BOUND"}


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup or "MISMATCH"
        value = match.group()
        if kind in ("WS", "COMMENT"):
            continue
        if kind == "MISMATCH":
            raise SPARQLParseError(f"unexpected character {value!r}")
        if kind == "NAME" and value.upper() in _KEYWORDS:
            tokens.append(_Token(value.upper(), value))
            continue
        tokens.append(_Token(kind, value))
    return tokens


class _Parser:
    def __init__(self, tokens: Sequence[_Token]):
        self._tokens = list(tokens)
        self._index = 0

    def _peek(self) -> Optional[_Token]:
        return self._tokens[self._index] if self._index < len(self._tokens) else None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SPARQLParseError("unexpected end of query")
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token is None or token.kind != kind:
            found = token.kind if token else "end of query"
            raise SPARQLParseError(f"expected {kind}, found {found}")
        return self._advance()

    def _accept(self, kind: str) -> Optional[_Token]:
        token = self._peek()
        if token is not None and token.kind == kind:
            return self._advance()
        return None

    # -- terms -------------------------------------------------------------------

    def _parse_term(self):
        token = self._advance()
        if token.kind == "VARIABLE":
            return Variable(token.value)
        if token.kind == "BLANK":
            return Null(token.value)
        if token.kind == "STRING":
            return Constant(token.value[1:-1])
        if token.kind == "URIREF":
            return Constant(token.value[1:-1])
        if token.kind == "NAME":
            return Constant(token.value)
        raise SPARQLParseError(f"expected a term, found {token.kind} {token.value!r}")

    def _parse_constant_or_variable(self):
        token = self._peek()
        if token is None:
            raise SPARQLParseError("unexpected end of query in FILTER")
        if token.kind == "VARIABLE":
            return Variable(self._advance().value)
        return self._parse_term()

    # -- conditions -----------------------------------------------------------------

    def _parse_condition(self) -> Condition:
        return self._parse_or_condition()

    def _parse_or_condition(self) -> Condition:
        left = self._parse_and_condition()
        while self._accept("OROR"):
            left = OrCondition(left, self._parse_and_condition())
        return left

    def _parse_and_condition(self) -> Condition:
        left = self._parse_unary_condition()
        while self._accept("ANDAND"):
            left = AndCondition(left, self._parse_unary_condition())
        return left

    def _parse_unary_condition(self) -> Condition:
        if self._accept("BANG"):
            return Not(self._parse_unary_condition())
        if self._accept("LPAREN"):
            condition = self._parse_condition()
            self._expect("RPAREN")
            return condition
        if self._accept("BOUND"):
            self._expect("LPAREN")
            variable = Variable(self._expect("VARIABLE").value)
            self._expect("RPAREN")
            return Bound(variable)
        left = self._parse_constant_or_variable()
        self._expect("EQUALS")
        right = self._parse_constant_or_variable()
        if isinstance(left, Variable) and isinstance(right, Variable):
            return EqualsVariable(left, right)
        if isinstance(left, Variable) and isinstance(right, Constant):
            return EqualsConstant(left, right)
        if isinstance(left, Constant) and isinstance(right, Variable):
            return EqualsConstant(right, left)
        raise SPARQLParseError("a FILTER equality needs at least one variable")

    # -- patterns ----------------------------------------------------------------------

    def _parse_group(self) -> GraphPattern:
        self._expect("LBRACE")
        current: Optional[GraphPattern] = None
        pending_triples: List[TriplePattern] = []
        pending_filters: List[Condition] = []

        def flush_triples() -> None:
            """Fold the pending triple patterns into the running group pattern."""
            nonlocal current
            if pending_triples:
                bgp = BGP(tuple(pending_triples))
                pending_triples.clear()
                current = bgp if current is None else And(current, bgp)

        while True:
            token = self._peek()
            if token is None:
                raise SPARQLParseError("unterminated group: missing '}'")
            if token.kind == "RBRACE":
                self._advance()
                break
            if token.kind == "LBRACE":
                flush_triples()
                group = self._parse_group()
                if self._accept("UNION"):
                    right = self._parse_union_operand()
                    group = Union(group, right)
                current = group if current is None else And(current, group)
                continue
            if token.kind == "OPTIONAL":
                self._advance()
                flush_triples()
                optional_group = self._parse_group()
                if current is None:
                    current = Opt(BGP(()), optional_group)
                else:
                    current = Opt(current, optional_group)
                continue
            if token.kind == "FILTER":
                self._advance()
                self._expect("LPAREN")
                pending_filters.append(self._parse_condition())
                self._expect("RPAREN")
                continue
            if token.kind == "DOT":
                self._advance()
                continue
            # Otherwise it must be a triple.
            subject = self._parse_term()
            predicate = self._parse_term()
            object_ = self._parse_term()
            pending_triples.append(TriplePattern(subject, predicate, object_))

        flush_triples()
        if current is None:
            current = BGP(())
        for condition in pending_filters:
            current = Filter(current, condition)
        return current

    def _parse_union_operand(self) -> GraphPattern:
        operand = self._parse_group()
        if self._accept("UNION"):
            return Union(operand, self._parse_union_operand())
        return operand

    # -- query ---------------------------------------------------------------------------

    def parse_query(self) -> SelectQuery:
        self._expect("SELECT")
        projection: List[Variable] = []
        while True:
            token = self._peek()
            if token is None:
                raise SPARQLParseError("unexpected end of query after SELECT")
            if token.kind == "VARIABLE":
                projection.append(Variable(self._advance().value))
                continue
            break
        if not projection:
            raise SPARQLParseError("SELECT needs at least one variable")
        self._expect("WHERE")
        pattern = self._parse_group()
        if self._peek() is not None:
            raise SPARQLParseError(f"trailing tokens after query: {self._peek()!r}")
        return SelectQuery(projection=tuple(projection), pattern=pattern)


def parse_sparql(text: str) -> SelectQuery:
    """Parse a SELECT query in the supported fragment."""
    return _Parser(_tokenize(text)).parse_query()
