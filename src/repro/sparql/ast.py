"""Abstract syntax of SPARQL graph patterns and built-in conditions (Section 3.1).

The grammar implemented is exactly the paper's:

* built-in conditions: ``bound(?X)``, ``?X = c``, ``?X = ?Y`` closed under
  ``¬``, ``∨`` and ``∧``;
* graph patterns: basic graph patterns (finite sets of triple patterns over
  ``U ∪ B ∪ V``), ``(P1 AND P2)``, ``(P1 UNION P2)``, ``(P1 OPT P2)``,
  ``(P FILTER R)`` with ``var(R) ⊆ var(P)``, and ``(SELECT W P)``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple, Union as TypingUnion

from repro.datalog.terms import Constant, Null, Variable

PatternTerm = TypingUnion[Constant, Null, Variable]


# ---------------------------------------------------------------------------
# Built-in conditions
# ---------------------------------------------------------------------------


class Condition:
    """Base class of built-in conditions used in FILTER."""

    def variables(self) -> FrozenSet[Variable]:
        """The variables occurring in this node."""
        raise NotImplementedError


class Bound(Condition):
    """``bound(?X)``."""

    def __init__(self, variable: Variable):
        self.variable = variable

    def variables(self) -> FrozenSet[Variable]:
        """The variables occurring in this node."""
        return frozenset({self.variable})

    def __repr__(self) -> str:
        return f"Bound({self.variable})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Bound) and self.variable == other.variable

    def __hash__(self) -> int:
        return hash((Bound, self.variable))


class EqualsConstant(Condition):
    """``?X = c``."""

    def __init__(self, variable: Variable, constant: Constant):
        self.variable = variable
        self.constant = constant

    def variables(self) -> FrozenSet[Variable]:
        """The variables occurring in this node."""
        return frozenset({self.variable})

    def __repr__(self) -> str:
        return f"EqualsConstant({self.variable}, {self.constant})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, EqualsConstant)
            and self.variable == other.variable
            and self.constant == other.constant
        )

    def __hash__(self) -> int:
        return hash((EqualsConstant, self.variable, self.constant))


class EqualsVariable(Condition):
    """``?X = ?Y``."""

    def __init__(self, left: Variable, right: Variable):
        self.left = left
        self.right = right

    def variables(self) -> FrozenSet[Variable]:
        """The variables occurring in this node."""
        return frozenset({self.left, self.right})

    def __repr__(self) -> str:
        return f"EqualsVariable({self.left}, {self.right})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, EqualsVariable)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash((EqualsVariable, self.left, self.right))


class Not(Condition):
    """``(¬ R)``."""

    def __init__(self, condition: Condition):
        self.condition = condition

    def variables(self) -> FrozenSet[Variable]:
        """The variables occurring in this node."""
        return self.condition.variables()

    def __repr__(self) -> str:
        return f"Not({self.condition!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and self.condition == other.condition

    def __hash__(self) -> int:
        return hash((Not, self.condition))


class OrCondition(Condition):
    """``(R1 ∨ R2)``."""

    def __init__(self, left: Condition, right: Condition):
        self.left = left
        self.right = right

    def variables(self) -> FrozenSet[Variable]:
        """The variables occurring in this node."""
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"OrCondition({self.left!r}, {self.right!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, OrCondition)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash((OrCondition, self.left, self.right))


class AndCondition(Condition):
    """``(R1 ∧ R2)``."""

    def __init__(self, left: Condition, right: Condition):
        self.left = left
        self.right = right

    def variables(self) -> FrozenSet[Variable]:
        """The variables occurring in this node."""
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"AndCondition({self.left!r}, {self.right!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AndCondition)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash((AndCondition, self.left, self.right))


# ---------------------------------------------------------------------------
# Graph patterns
# ---------------------------------------------------------------------------


def _as_pattern_term(value) -> PatternTerm:
    if isinstance(value, (Constant, Null, Variable)):
        return value
    if isinstance(value, str):
        if value.startswith("?"):
            return Variable(value)
        if value.startswith("_:"):
            return Null(value)
        return Constant(value)
    raise TypeError(f"invalid triple-pattern term {value!r}")


class TriplePattern:
    """A triple pattern over ``(U ∪ B ∪ V)^3``."""

    __slots__ = ("subject", "predicate", "object")

    def __init__(self, subject, predicate, object):
        self.subject = _as_pattern_term(subject)
        self.predicate = _as_pattern_term(predicate)
        self.object = _as_pattern_term(object)

    def __iter__(self):
        return iter((self.subject, self.predicate, self.object))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TriplePattern) and tuple(self) == tuple(other)

    def __hash__(self) -> int:
        return hash((TriplePattern, self.subject, self.predicate, self.object))

    def __repr__(self) -> str:
        return f"TriplePattern({self.subject}, {self.predicate}, {self.object})"

    def __str__(self) -> str:
        return f"({self.subject}, {self.predicate}, {self.object})"

    def variables(self) -> FrozenSet[Variable]:
        """The variables occurring in this node."""
        return frozenset(t for t in self if isinstance(t, Variable))

    def blank_nodes(self) -> FrozenSet[Null]:
        """The blank nodes occurring in this node."""
        return frozenset(t for t in self if isinstance(t, Null))


class GraphPattern:
    """Base class of SPARQL graph patterns."""

    def variables(self) -> FrozenSet[Variable]:
        """``var(P)``: the variables occurring in the pattern."""
        raise NotImplementedError


class BGP(GraphPattern):
    """A basic graph pattern: a finite set of triple patterns."""

    def __init__(self, patterns: Iterable[TriplePattern]):
        self.patterns: Tuple[TriplePattern, ...] = tuple(patterns)

    @classmethod
    def of(cls, *triples) -> "BGP":
        """``BGP.of(("?X", "name", "?Y"), ...)``."""
        return cls(TriplePattern(*t) if not isinstance(t, TriplePattern) else t for t in triples)

    def variables(self) -> FrozenSet[Variable]:
        """The variables occurring in this node."""
        return frozenset(v for p in self.patterns for v in p.variables())

    def blank_nodes(self) -> FrozenSet[Null]:
        """The blank nodes occurring in this node."""
        return frozenset(b for p in self.patterns for b in p.blank_nodes())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BGP) and set(self.patterns) == set(other.patterns)

    def __hash__(self) -> int:
        return hash((BGP, frozenset(self.patterns)))

    def __repr__(self) -> str:
        return f"BGP({list(self.patterns)!r})"

    def __str__(self) -> str:
        return "{ " + " . ".join(str(p) for p in self.patterns) + " }"


class And(GraphPattern):
    """``(P1 AND P2)``."""

    def __init__(self, left: GraphPattern, right: GraphPattern):
        self.left = left
        self.right = right

    def variables(self) -> FrozenSet[Variable]:
        """The variables occurring in this node."""
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"And({self.left!r}, {self.right!r})"

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


class Union(GraphPattern):
    """``(P1 UNION P2)``."""

    def __init__(self, left: GraphPattern, right: GraphPattern):
        self.left = left
        self.right = right

    def variables(self) -> FrozenSet[Variable]:
        """The variables occurring in this node."""
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"Union({self.left!r}, {self.right!r})"

    def __str__(self) -> str:
        return f"({self.left} UNION {self.right})"


class Opt(GraphPattern):
    """``(P1 OPT P2)``."""

    def __init__(self, left: GraphPattern, right: GraphPattern):
        self.left = left
        self.right = right

    def variables(self) -> FrozenSet[Variable]:
        """The variables occurring in this node."""
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"Opt({self.left!r}, {self.right!r})"

    def __str__(self) -> str:
        return f"({self.left} OPT {self.right})"


class Filter(GraphPattern):
    """``(P FILTER R)`` with the well-formedness condition ``var(R) ⊆ var(P)``."""

    def __init__(self, pattern: GraphPattern, condition: Condition):
        if not condition.variables() <= pattern.variables():
            raise ValueError(
                "FILTER condition mentions variables not occurring in the pattern"
            )
        self.pattern = pattern
        self.condition = condition

    def variables(self) -> FrozenSet[Variable]:
        """The variables occurring in this node."""
        return self.pattern.variables()

    def __repr__(self) -> str:
        return f"Filter({self.pattern!r}, {self.condition!r})"

    def __str__(self) -> str:
        return f"({self.pattern} FILTER {self.condition!r})"


class Select(GraphPattern):
    """``(SELECT W P)``: projection to a finite set of variables."""

    def __init__(self, variables: Iterable[Variable], pattern: GraphPattern):
        self.projection: FrozenSet[Variable] = frozenset(
            v if isinstance(v, Variable) else Variable(v) for v in variables
        )
        self.pattern = pattern

    def variables(self) -> FrozenSet[Variable]:
        """The variables occurring in this node."""
        return self.projection & self.pattern.variables() | self.projection

    def __repr__(self) -> str:
        return f"Select({sorted(self.projection)!r}, {self.pattern!r})"

    def __str__(self) -> str:
        names = " ".join(str(v) for v in sorted(self.projection))
        return f"(SELECT {names} {self.pattern})"


def walk_basic_patterns(pattern: GraphPattern):
    """Yield every basic graph pattern occurring in ``pattern`` (left-to-right)."""
    if isinstance(pattern, BGP):
        yield pattern
        return
    if isinstance(pattern, (And, Union, Opt)):
        yield from walk_basic_patterns(pattern.left)
        yield from walk_basic_patterns(pattern.right)
        return
    if isinstance(pattern, Filter):
        yield from walk_basic_patterns(pattern.pattern)
        return
    if isinstance(pattern, Select):
        yield from walk_basic_patterns(pattern.pattern)
        return
    raise TypeError(f"unknown graph pattern {pattern!r}")
