"""Mappings and the SPARQL algebra over sets of mappings (Section 3.1).

A mapping is a partial function from variables to URIs.  Two mappings are
compatible when they agree on their shared domain.  The algebra provides the
join, union, difference and left-outer join used to define the semantics of
AND, UNION and OPT.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping as TypingMapping, Optional, Set, Tuple

from repro.datalog.terms import Constant, Variable


class Mapping:
    """A partial function ``mu: V -> U`` (immutable, hashable)."""

    __slots__ = ("_bindings", "_hash")

    def __init__(self, bindings: TypingMapping[Variable, Constant] = ()):
        items: Dict[Variable, Constant] = {}
        source = bindings.items() if isinstance(bindings, dict) else bindings
        for variable, value in source:
            if not isinstance(variable, Variable):
                variable = Variable(variable)
            if not isinstance(value, Constant):
                value = Constant(value)
            items[variable] = value
        self._bindings: Tuple[Tuple[Variable, Constant], ...] = tuple(
            sorted(items.items(), key=lambda kv: kv[0].name)
        )
        self._hash = hash((Mapping, self._bindings))

    # -- basic protocol -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Mapping) and self._bindings == other._bindings

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{v} -> {c}" for v, c in self._bindings)
        return f"Mapping({{{inner}}})"

    def __len__(self) -> int:
        return len(self._bindings)

    def __iter__(self) -> Iterator[Variable]:
        return iter(self.domain)

    def __contains__(self, variable: Variable) -> bool:
        return any(v == variable for v, _ in self._bindings)

    def __getitem__(self, variable: Variable) -> Constant:
        for v, c in self._bindings:
            if v == variable:
                return c
        raise KeyError(variable)

    def get(self, variable: Variable, default: Optional[Constant] = None) -> Optional[Constant]:
        """The binding of ``variable``, or ``default`` when unbound."""
        for v, c in self._bindings:
            if v == variable:
                return c
        return default

    # -- the paper's operations -----------------------------------------------------

    @property
    def domain(self) -> FrozenSet[Variable]:
        """``dom(mu)``."""
        return frozenset(v for v, _ in self._bindings)

    def items(self) -> Tuple[Tuple[Variable, Constant], ...]:
        """The bindings as (variable, constant) pairs in canonical order."""
        return self._bindings

    def as_dict(self) -> Dict[Variable, Constant]:
        """The bindings as a plain dict."""
        return dict(self._bindings)

    def restrict(self, variables: Iterable[Variable]) -> "Mapping":
        """``mu|_W``: restriction of the mapping to a set of variables."""
        allowed = {v if isinstance(v, Variable) else Variable(v) for v in variables}
        return Mapping({v: c for v, c in self._bindings if v in allowed})

    def merge(self, other: "Mapping") -> "Mapping":
        """``mu1 ∪ mu2`` — only meaningful for compatible mappings."""
        merged = dict(self._bindings)
        merged.update(dict(other._bindings))
        return Mapping(merged)


#: ``mu_∅``: the mapping with empty domain (compatible with every mapping).
EMPTY_MAPPING = Mapping({})


def compatible(first: Mapping, second: Mapping) -> bool:
    """``mu1 ~ mu2``: the mappings agree on every shared variable."""
    smaller, larger = (first, second) if len(first) <= len(second) else (second, first)
    for variable, value in smaller.items():
        other = larger.get(variable)
        if other is not None and other != value:
            return False
    return True


def join(first: Set[Mapping], second: Set[Mapping]) -> Set[Mapping]:
    """``Omega1 ⋈ Omega2 = { mu1 ∪ mu2 | mu1 ∈ Omega1, mu2 ∈ Omega2, mu1 ~ mu2 }``."""
    result: Set[Mapping] = set()
    for mu1 in first:
        for mu2 in second:
            if compatible(mu1, mu2):
                result.add(mu1.merge(mu2))
    return result


def union(first: Set[Mapping], second: Set[Mapping]) -> Set[Mapping]:
    """``Omega1 ∪ Omega2``."""
    return set(first) | set(second)


def minus(first: Set[Mapping], second: Set[Mapping]) -> Set[Mapping]:
    """``Omega1 ∖ Omega2``: mappings of Omega1 compatible with no mapping of Omega2."""
    return {mu1 for mu1 in first if all(not compatible(mu1, mu2) for mu2 in second)}


def left_outer_join(first: Set[Mapping], second: Set[Mapping]) -> Set[Mapping]:
    """``Omega1 ⟕ Omega2 = (Omega1 ⋈ Omega2) ∪ (Omega1 ∖ Omega2)``."""
    return join(first, second) | minus(first, second)
