"""A stdlib-``asyncio`` HTTP front end for the materialized query service.

No web framework — the container has none, and the protocol surface is seven
endpoints over HTTP/1.1 with keep-alive (six JSON, one Prometheus text):

========  ==================  =================================================
method    path                behaviour
========  ==================  =================================================
GET       ``/healthz``        liveness + published watermark/epoch
GET       ``/stats``          :meth:`MaterializedView.stats` counters
GET       ``/metrics``        Prometheus text exposition (query latency
                              histograms, engine counters, index health)
GET       ``/query``          ``?q=<SPARQL>&mode=U|All`` → sorted answer rows
POST      ``/push``           body ``{"triples": [[s, p, o], ...]}`` → push
                              summary + new watermark
POST      ``/retract``        body ``{"triples": [[s, p, o], ...]}`` → DRed
                              deletion summary (over-deleted / re-derived /
                              nulls collected) + new watermark
POST      ``/rematerialize``  epoch reset (null-ID reclamation) → new epoch
========  ==================  =================================================

Threading model: the asyncio loop owns the sockets and parses requests.
Queries run on a small reader thread pool and writer operations (push,
retract, rematerialize) on a dedicated single-thread executor — the view's writer
lock makes the single writer a protocol invariant rather than a hope, and
readers interleave with the writer under snapshot isolation: every query
response carries the ``watermark`` (insertion-ordinal high-water mark) and
``epoch`` its answers were computed against.

Query answers are decoded only at this serialization boundary; everything
upstream of :func:`_serialize_answers` operates on interned integer IDs.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.datalog.semantics import INCONSISTENT
from repro.service.view import MaterializedView
from repro.sparql.parser import SPARQLParseError, parse_sparql
from repro.translation.entailment_regime import ACTIVE_DOMAIN_MODE, ALL_MODE

logger = logging.getLogger(__name__)

_MAX_BODY = 32 * 1024 * 1024
_MAX_HEADER = 64 * 1024


class HTTPError(Exception):
    """An error that maps onto an HTTP status line."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


def _serialize_answers(result) -> Tuple[bool, list]:
    """Decoded mappings → (consistent, deterministically sorted JSON rows)."""
    if result is INCONSISTENT:
        return False, []
    rows = [
        {variable.name: constant.value for variable, constant in mapping.items()}
        for mapping in result
    ]
    rows.sort(key=lambda row: sorted(row.items()))
    return True, rows


class QueryService:
    """The HTTP service: one :class:`MaterializedView`, many connections.

    Construct with an initial graph (or nothing), then either
    :meth:`run_forever` (blocking entry point used by ``python -m
    repro.service``) or ``await start()`` / ``await stop()`` from an
    existing event loop (used by the end-to-end tests).
    """

    def __init__(
        self,
        graph=None,
        host: str = "127.0.0.1",
        port: int = 0,
        reader_threads: int = 4,
    ):
        self.view = MaterializedView(graph)
        self.host = host
        self.port = port
        self._readers = ThreadPoolExecutor(
            max_workers=reader_threads, thread_name_prefix="repro-read"
        )
        self._writer = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-write"
        )
        self._server: Optional[asyncio.base_events.Server] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (resolves ``self.port`` when it was 0)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("query service listening on %s:%d", self.host, self.port)

    async def stop(self) -> None:
        """Close the socket, drain executors, release the view's engines."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._readers.shutdown(wait=True)
        self._writer.shutdown(wait=True)
        self.view.close()

    def run_forever(self) -> None:
        """Blocking entry point: serve until interrupted."""
        asyncio.run(self._serve_until_cancelled())

    async def _serve_until_cancelled(self) -> None:
        await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                try:
                    status, payload = await self._dispatch(method, target, body)
                except HTTPError as exc:
                    status, payload = exc.status, {"error": exc.message}
                except Exception:  # noqa: BLE001 - a handler bug must not kill the server
                    logger.exception("unhandled error serving %s %s", method, target)
                    status, payload = 500, {"error": "internal server error"}
                self._write_response(writer, status, payload, keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader):
        """Parse one HTTP/1.1 request; ``None`` on clean EOF between requests."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise
        except asyncio.LimitOverrunError:
            raise HTTPError(431, "request header section too large") from None
        if len(head) > _MAX_HEADER:
            raise HTTPError(431, "request header section too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise HTTPError(400, f"malformed request line {lines[0]!r}") from None
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip().lower()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise HTTPError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    @staticmethod
    def _write_response(writer, status: int, payload, keep_alive: bool) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 409: "Conflict",
                  413: "Payload Too Large", 431: "Request Header Fields Too Large",
                  500: "Internal Server Error"}.get(status, "OK")
        if isinstance(payload, str):
            # Prometheus text exposition (GET /metrics); everything else
            # on the protocol surface is JSON.
            content_type = "text/plain; version=0.0.4; charset=utf-8"
            body = payload.encode()
        else:
            content_type = "application/json"
            body = json.dumps(payload, separators=(",", ":")).encode()
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n".encode() + body
        )

    # -- routing -------------------------------------------------------------

    async def _dispatch(self, method: str, target: str, body: bytes):
        parts = urlsplit(target)
        path, query = parts.path.rstrip("/") or "/", parse_qs(parts.query)
        if path == "/healthz" and method == "GET":
            return 200, self._healthz()
        if path == "/stats" and method == "GET":
            return 200, self.view.stats()
        if path == "/metrics" and method == "GET":
            return 200, await self._metrics()
        if path == "/query" and method == "GET":
            return 200, await self._query(query)
        if path == "/push" and method == "POST":
            return 200, await self._push(body)
        if path == "/retract" and method == "POST":
            return 200, await self._retract(body)
        if path == "/rematerialize" and method == "POST":
            return 200, await self._rematerialize()
        if path in ("/healthz", "/stats", "/metrics", "/query", "/push",
                    "/retract", "/rematerialize"):
            raise HTTPError(405, f"{method} not allowed on {path}")
        raise HTTPError(404, f"no such endpoint {path}")

    # -- handlers ------------------------------------------------------------

    def _healthz(self) -> dict:
        snapshot = self.view.current
        return {
            "status": "ok",
            "watermark": snapshot.watermark,
            "epoch": snapshot.epoch,
            "consistent": snapshot.consistent,
        }

    async def _metrics(self) -> str:
        """Render the Prometheus exposition on a reader thread."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._readers, self.view.metrics_text)

    async def _query(self, params: dict) -> dict:
        texts = params.get("q")
        if not texts:
            raise HTTPError(400, "missing query parameter 'q'")
        mode = params.get("mode", [ACTIVE_DOMAIN_MODE])[0]
        if mode not in (ACTIVE_DOMAIN_MODE, ALL_MODE):
            raise HTTPError(400, f"mode must be 'U' or 'All', got {mode!r}")
        try:
            query = parse_sparql(texts[0])
        except SPARQLParseError as exc:
            raise HTTPError(400, f"SPARQL parse error: {exc}") from None
        loop = asyncio.get_running_loop()

        def evaluate():
            start = time.perf_counter()
            with self.view.read() as snapshot:
                result = snapshot.query(query, mode)
            self.view.record_query(
                mode, time.perf_counter() - start, texts[0], snapshot
            )
            return snapshot, result

        snapshot, result = await loop.run_in_executor(self._readers, evaluate)
        consistent, rows = _serialize_answers(result)
        return {
            "answers": rows,
            "cardinality": len(rows),
            "consistent": consistent,
            "mode": mode,
            "watermark": snapshot.watermark,
            "epoch": snapshot.epoch,
        }

    @staticmethod
    def _parse_triples(body: bytes, verb: str) -> list:
        try:
            document = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise HTTPError(400, f"{verb} body is not valid JSON: {exc}") from None
        triples = document.get("triples")
        if not isinstance(triples, list):
            raise HTTPError(
                400, f"{verb} body must be {{'triples': [[s, p, o], ...]}}"
            )
        facts = []
        for entry in triples:
            if not (isinstance(entry, list) and len(entry) == 3
                    and all(isinstance(part, str) for part in entry)):
                raise HTTPError(400, f"not an [s, p, o] string triple: {entry!r}")
            facts.append(tuple(entry))
        return facts

    async def _push(self, body: bytes) -> dict:
        facts = self._parse_triples(body, "push")
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(self._writer, self.view.push, facts)
        return {
            "batch_size": result.batch_size,
            "new_edb": result.new_edb,
            "derived": result.derived,
            "rebuilt_from": result.rebuilt_from,
            "rounds": result.rounds,
            "consistent": result.consistent,
            "watermark": self.view.watermark,
            "epoch": self.view.epoch,
        }

    async def _retract(self, body: bytes) -> dict:
        facts = self._parse_triples(body, "retract")
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(self._writer, self.view.retract, facts)
        return {
            "batch_size": result.batch_size,
            "removed_edb": result.removed_edb,
            "overdeleted": result.overdeleted,
            "rederived": result.rederived,
            "nulls_collected": result.nulls_collected,
            "rebuilt_from": result.rebuilt_from,
            "rounds": result.rounds,
            "consistent": result.consistent,
            "watermark": self.view.watermark,
            "epoch": self.view.epoch,
        }

    async def _rematerialize(self) -> dict:
        loop = asyncio.get_running_loop()
        epoch = await loop.run_in_executor(self._writer, self.view.rematerialize)
        return {
            "epoch": epoch,
            "watermark": self.view.watermark,
            "facts": len(self.view),
        }
