"""The materialized-view query service.

Splits the long-lived-server story into two layers:

* :mod:`repro.service.view` — :class:`MaterializedView`, the storage layer:
  one core materialization driven by a single-writer
  :class:`~repro.engine.incremental.DeltaSession`, read through immutable
  published :class:`ViewSnapshot` objects (snapshot-isolated against the
  append-only predicate index), with :meth:`MaterializedView.rematerialize`
  as the term-table epoch valve.
* :mod:`repro.service.http` — :class:`QueryService`, a stdlib-``asyncio``
  HTTP/1.1 front end (``/query``, ``/push``, ``/rematerialize``, ``/stats``,
  ``/healthz``).

``python -m repro.service [--host H] [--port P] [--data FILE]`` boots a
server; programmatically, prefer ``repro.Engine(...).serve(...)``.
"""

from repro.service.http import QueryService
from repro.service.view import MaterializedView, StaleSnapshotError, ViewSnapshot

__all__ = [
    "MaterializedView",
    "QueryService",
    "StaleSnapshotError",
    "ViewSnapshot",
]
