"""``python -m repro.service``: boot a materialized-view query server.

The data option accepts an N-Triples file; with ``--university N`` the
server instead materializes the synthetic university workload (handy for
smoke tests and benchmarks on machines without a dataset on disk).
"""

from __future__ import annotations

import argparse
import logging
import sys

from repro.service.http import QueryService


def main(argv=None) -> int:
    """Parse arguments, materialize, and serve until interrupted."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="OWL 2 QL entailment-regime SPARQL query service",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8377)
    parser.add_argument("--data", help="N-Triples file to materialize at boot")
    parser.add_argument(
        "--university",
        type=int,
        metavar="N",
        help="serve the synthetic university workload with N departments",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    options = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if options.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )

    graph = None
    if options.data and options.university is not None:
        parser.error("--data and --university are mutually exclusive")
    if options.data:
        from repro.rdf.parser import parse_ntriples

        with open(options.data, encoding="utf-8") as handle:
            graph = parse_ntriples(handle.read())
    elif options.university is not None:
        from repro.workloads.ontologies import university_graph

        graph = university_graph(n_departments=options.university)

    service = QueryService(graph, host=options.host, port=options.port)
    try:
        service.run_forever()
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
