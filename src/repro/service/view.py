"""The materialized entailment view: single writer, snapshot-isolated readers.

This is the storage half of the query service (ROADMAP item 1): materialize
``tau_owl2ql_core`` over a graph **once** through a
:class:`~repro.engine.incremental.DeltaSession`, then

* a single writer applies ``push()`` batches (streamed triples), and
* any number of readers answer entailment-regime SPARQL queries over the
  interned instance, each pinned to an immutable :class:`ViewSnapshot`.

Snapshot isolation rests on two append-only facts.  First, the engine's
:class:`~repro.engine.index.PredicateIndex` only ever appends rows, so a
frozen :class:`~repro.engine.index.InstanceSnapshot` (per-predicate row
caps + global ordinal cut) is a consistent prefix forever — a reader holding
one can keep scanning while the writer appends past its caps.  Second, the
view only *publishes* a fresh snapshot after a push has fully completed
(including stratum re-runs and rebuilds), so the published state always
steps from one complete materialization to the next; a reader can never
observe half a push.  When an incremental push triggers a from-scratch
rebuild, the session swaps in a brand-new instance — published snapshots of
the old instance stay valid (they reference the old, now-frozen index) and
simply age out as readers finish.

Retractions are the one writer operation append-only isolation does not
cover: :meth:`MaterializedView.retract` tombstones rows *in place*, under
any pinned prefix.  Every published snapshot therefore records the
session's retraction generation, and a read from a snapshot pinned before
a retraction raises :class:`StaleSnapshotError` — the same loud failure as
a snapshot held across an epoch reset, instead of silently missing rows.

The third lifecycle concern of a long-lived server — the term table growing
one entry per invented null forever — is handled by
:meth:`MaterializedView.rematerialize`: it drains readers, starts a new
:meth:`TermTable epoch <repro.engine.interning.TermTable.begin_epoch>`
(reclaiming every null ID and dropping the plan caches), and re-materializes
from the accumulated EDB.  Readers admitted after the reset see the fresh
epoch; snapshots from before it are invalidated (their epoch number no
longer matches) and refuse to decode.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import FrozenSet, Iterator, Optional, Set, Union

from repro.datalog.semantics import INCONSISTENT
from repro.engine.colbuf import promoted_stats
from repro.engine.incremental import DeltaSession, PushResult, RetractResult
from repro.engine.interning import TERMS
from repro.engine.stats import STATS, local_stats
from repro.obs.metrics import REGISTRY
from repro.owl.entailment_rules import owl2ql_core_program
from repro.rdf.graph import RDFGraph
from repro.sparql.ast import GraphPattern
from repro.sparql.evaluator import IdMapping, decode_id_mappings
from repro.sparql.parser import SelectQuery
from repro.translation.entailment_regime import (
    ACTIVE_DOMAIN_MODE,
    active_domain_ids,
    evaluate_view_ids,
)


#: Milliseconds above which a query lands in the slow-query log; overridable
#: per process via the ``REPRO_SLOW_QUERY_MS`` environment variable.
DEFAULT_SLOW_QUERY_MS = 100.0

# Service-level instruments.  The registry is idempotent, so re-importing the
# module (or constructing several views) reuses the same instruments.
_QUERIES = REGISTRY.counter(
    "repro_queries_total", "Queries served by the materialized view.", ("mode",)
)
_QUERY_SECONDS = REGISTRY.histogram(
    "repro_query_seconds", "Query latency in seconds.", ("mode",)
)
_SLOW_QUERIES = REGISTRY.counter(
    "repro_slow_queries_total", "Queries slower than the slow-query threshold."
)
_WRITES = REGISTRY.counter(
    "repro_writes_total", "Writer operations applied to the view.", ("op",)
)
_WRITE_SECONDS = REGISTRY.histogram(
    "repro_write_seconds", "Writer operation latency in seconds.", ("op",)
)
_VIEW_FACTS = REGISTRY.gauge(
    "repro_view_facts", "Materialized facts in the writer's instance."
)
_VIEW_WATERMARK = REGISTRY.gauge(
    "repro_view_watermark", "Published insertion-ordinal high-water mark."
)
_VIEW_EPOCH = REGISTRY.gauge(
    "repro_view_epoch", "Term-table epoch of the published snapshot."
)
_VIEW_CONSISTENT = REGISTRY.gauge(
    "repro_view_consistent", "1 when the published materialization is consistent."
)
_READERS_PINNED = REGISTRY.gauge(
    "repro_snapshot_readers_pinned", "Readers currently pinning a snapshot."
)
_TERM_CONSTANTS = REGISTRY.gauge(
    "repro_term_table_constants", "Interned constants in the term table."
)
_TERM_NULLS = REGISTRY.gauge(
    "repro_term_table_nulls", "Interned invented nulls in the term table."
)
_TERM_ORPHANED = REGISTRY.gauge(
    "repro_term_table_orphaned_nulls",
    "Null dictionary entries no materialized fact references.",
)
_PRED_LIVE = REGISTRY.gauge(
    "repro_predicate_live_rows", "Live (non-tombstoned) rows per predicate.",
    ("predicate",),
)
_PRED_TOMBSTONE = REGISTRY.gauge(
    "repro_predicate_tombstone_ratio",
    "Fraction of a predicate's index rows that are tombstones.",
    ("predicate",),
)
_SHM_SEGMENTS = REGISTRY.gauge(
    "repro_shm_segments",
    "Column buffers currently promoted into shared-memory segments.",
)
_SHM_BYTES = REGISTRY.gauge(
    "repro_shm_bytes",
    "Total bytes of promoted shared-memory column segments.",
)


class StaleSnapshotError(RuntimeError):
    """A snapshot from a previous term-table epoch was queried or decoded."""


class ViewSnapshot:
    """An immutable published read state of a :class:`MaterializedView`.

    Carries the frozen instance prefix, the term-table epoch it was built
    under, the cached active-domain ID set, and the ordinal high-water mark.
    All query work happens on interned IDs; decoding checks the epoch first,
    so a reader that (incorrectly) held a snapshot across a
    :meth:`MaterializedView.rematerialize` fails loudly instead of decoding
    reassigned null IDs.
    """

    __slots__ = (
        "_snapshot",
        "epoch",
        "watermark",
        "consistent",
        "_active_domain",
        "_session",
        "_retraction_gen",
    )

    def __init__(self, snapshot, epoch: int, consistent: bool, session=None):
        self._snapshot = snapshot
        self.epoch = epoch
        self.watermark = snapshot.cut
        self.consistent = consistent
        # The snapshot shares live storage with the writer's instance, and
        # retractions tombstone rows *in place* — append-only isolation does
        # not cover them.  Recording the session's retraction generation at
        # publication lets every later read detect a deletion that slid
        # under the frozen prefix (including one hidden inside a stratum
        # rebuild, where the instance swap leaves the old index untouched
        # but the published answers nonetheless changed non-monotonically).
        self._session = session
        self._retraction_gen = session.retractions if session is not None else 0
        self._active_domain: FrozenSet[int] = (
            active_domain_ids(snapshot) if consistent else frozenset()
        )

    def _check_epoch(self) -> None:
        if TERMS.epoch() != self.epoch:
            raise StaleSnapshotError(
                f"snapshot from epoch {self.epoch} used in epoch {TERMS.epoch()}; "
                "re-pin the current snapshot after a rematerialization"
            )
        session = self._session
        if session is not None and session.retractions != self._retraction_gen:
            raise StaleSnapshotError(
                f"snapshot at watermark {self.watermark} predates retraction "
                f"generation {session.retractions} (pinned at generation "
                f"{self._retraction_gen}); re-pin the current snapshot"
            )

    def query_ids(
        self,
        pattern: Union[str, GraphPattern, SelectQuery],
        mode: str = ACTIVE_DOMAIN_MODE,
    ) -> Set[IdMapping]:
        """``⟦P⟧^mode`` over the frozen prefix, as ID mappings."""
        self._check_epoch()
        return evaluate_view_ids(pattern, self._snapshot, mode, self._active_domain)

    def query(
        self,
        pattern: Union[str, GraphPattern, SelectQuery],
        mode: str = ACTIVE_DOMAIN_MODE,
    ):
        """Decoded answers (set of mappings), or ``INCONSISTENT`` (⊤)."""
        if not self.consistent:
            return INCONSISTENT
        return decode_id_mappings(self.query_ids(pattern, mode))

    def __repr__(self) -> str:
        return (
            f"ViewSnapshot(watermark={self.watermark}, epoch={self.epoch}, "
            f"consistent={self.consistent})"
        )


class MaterializedView:
    """Single-writer materialized OWL 2 QL view with published snapshots.

    Thread contract: :meth:`push` and :meth:`rematerialize` are writer
    operations, serialized by an internal lock (the service runs them on one
    writer thread).  :meth:`current` / :meth:`read` / :meth:`query` are safe
    from any thread at any time and never block on the writer — they touch
    only the last *published* snapshot.
    """

    def __init__(self, graph: Union[RDFGraph, Iterator, None] = None, program=None):
        self._program = program if program is not None else owl2ql_core_program()
        initial = () if graph is None else graph
        self._write_lock = threading.RLock()
        # Reader gate for rematerialize(): readers register while evaluating,
        # the epoch reset waits for zero and blocks new admissions.
        self._gate = threading.Condition()
        self._active_readers = 0
        self._draining = False
        self.pushes = 0
        self.retractions = 0
        self.queries_served = 0
        # Query bookkeeping shared by concurrent reader threads: the bare
        # ``queries_served += 1`` read-modify-write is a lost-update race, so
        # every reader-side counter mutation goes through this lock
        # (:meth:`record_query`).
        self._stats_lock = threading.Lock()
        self.slow_query_ms = float(
            os.environ.get("REPRO_SLOW_QUERY_MS", "") or DEFAULT_SLOW_QUERY_MS
        )
        self._slow_queries: deque = deque(maxlen=32)
        self._session = DeltaSession(self._program, initial)
        self._published = self._publish()

    # -- publication ---------------------------------------------------------

    def _publish(self) -> ViewSnapshot:
        """Freeze the session's current instance into a new published state."""
        return ViewSnapshot(
            self._session.instance.snapshot(),
            TERMS.epoch(),
            self._session.check_consistency(),
            self._session,
        )

    @property
    def current(self) -> ViewSnapshot:
        """The latest published snapshot (one attribute read — always safe)."""
        return self._published

    @property
    def watermark(self) -> int:
        """The published ordinal high-water mark."""
        return self._published.watermark

    @property
    def epoch(self) -> int:
        """The term-table epoch of the published snapshot."""
        return self._published.epoch

    @property
    def consistent(self) -> bool:
        """Whether the published materialization satisfies all constraints."""
        return self._published.consistent

    def __len__(self) -> int:
        return len(self._session.instance)

    # -- reads ---------------------------------------------------------------

    @contextmanager
    def read(self) -> Iterator[ViewSnapshot]:
        """Pin the current snapshot for a read (gates rematerialization).

        Pushes never wait for readers — only :meth:`rematerialize` drains
        them, because an epoch reset is the one writer operation that
        invalidates already-published state.

        The read runs under a thread-local scratch
        :class:`~repro.engine.stats.EngineStats` binding: any advisory
        counter a reader-thread evaluation bumps lands in a throwaway blob
        instead of racing the writer's global one.
        """
        with self._gate:
            while self._draining:
                self._gate.wait()
            self._active_readers += 1
            snapshot = self._published
        try:
            with local_stats():
                yield snapshot
        finally:
            with self._gate:
                self._active_readers -= 1
                if self._active_readers == 0:
                    self._gate.notify_all()

    def query(
        self,
        pattern: Union[str, GraphPattern, SelectQuery],
        mode: str = ACTIVE_DOMAIN_MODE,
    ):
        """Snapshot-isolated decoded answers, or ``INCONSISTENT``."""
        start = time.perf_counter()
        with self.read() as snapshot:
            result = snapshot.query(pattern, mode)
        self.record_query(mode, time.perf_counter() - start, pattern, snapshot)
        return result

    def record_query(
        self,
        mode: str,
        seconds: float,
        pattern=None,
        snapshot: Optional[ViewSnapshot] = None,
    ) -> None:
        """Account one served query: counter, latency histogram, slow log.

        Thread-safe — this is the only mutation path for
        ``queries_served`` and the slow-query log, and it runs on whichever
        reader thread evaluated the query.
        """
        with self._stats_lock:
            self.queries_served += 1
        _QUERIES.labels(mode).inc()
        _QUERY_SECONDS.labels(mode).observe(seconds)
        if seconds * 1000.0 >= self.slow_query_ms:
            _SLOW_QUERIES.inc()
            entry = {
                "query": str(pattern)[:200] if pattern is not None else None,
                "mode": mode,
                "ms": round(seconds * 1000.0, 3),
                "watermark": snapshot.watermark if snapshot else None,
                "epoch": snapshot.epoch if snapshot else None,
            }
            with self._stats_lock:
                self._slow_queries.append(entry)

    # -- writes --------------------------------------------------------------

    def push(self, facts) -> PushResult:
        """Apply one writer batch, then publish the post-push state."""
        start = time.perf_counter()
        with self._write_lock:
            result = self._session.push(facts)
            self.pushes += 1
            self._published = self._publish()
        _WRITES.labels("push").inc()
        _WRITE_SECONDS.labels("push").observe(time.perf_counter() - start)
        return result

    def retract(self, facts) -> RetractResult:
        """Remove one writer batch (DRed), then publish the repaired state.

        Snapshots published before the call raise
        :class:`StaleSnapshotError` on further use — deletions tombstone
        rows in place, so the frozen prefixes those snapshots answer from
        are no longer faithful.  Readers pinned *during* the retraction are
        not drained (unlike :meth:`rematerialize`): their queries fail fast
        on the generation check rather than block the writer.
        """
        start = time.perf_counter()
        with self._write_lock:
            result = self._session.retract(facts)
            self.retractions += 1
            self._published = self._publish()
        _WRITES.labels("retract").inc()
        _WRITE_SECONDS.labels("retract").observe(time.perf_counter() - start)
        return result

    def rematerialize(self) -> int:
        """Reclaim null dictionary space: new epoch, fresh materialization.

        Drains in-flight readers, begins a new term-table epoch (dropping
        every invented-null entry, the plan caches, and the parallel pool),
        rebuilds the materialization from the accumulated EDB, and publishes
        it.  Returns the new epoch ordinal.  Snapshots published before the
        call raise :class:`StaleSnapshotError` on further use.
        """
        start = time.perf_counter()
        with self._write_lock:
            edb = list(self._session._edb)
            self._session.close()
            with self._gate:
                while self._active_readers:
                    self._gate.wait()
                self._draining = True
            try:
                # The old instance (and every published snapshot of it) is
                # dropped before the reset: after begin_epoch() its null IDs
                # are meaningless.
                self._session = None
                self._published = None
                epoch = TERMS.begin_epoch()
                self._session = DeltaSession(self._program, edb)
                self._published = self._publish()
            finally:
                with self._gate:
                    self._draining = False
                    self._gate.notify_all()
            _WRITES.labels("rematerialize").inc()
            _WRITE_SECONDS.labels("rematerialize").observe(
                time.perf_counter() - start
            )
            return epoch

    def close(self) -> None:
        """Release engine resources (parallel replicas, if any)."""
        self._session.close()

    def __enter__(self) -> "MaterializedView":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """Counters for the service's ``/stats`` endpoint."""
        published = self._published
        with self._stats_lock:
            queries_served = self.queries_served
            slow_queries = list(self._slow_queries)
        return {
            "facts": len(self._session.instance),
            "edb_facts": len(self._session._edb),
            "pushes": self.pushes,
            "retractions": self.retractions,
            "queries_served": queries_served,
            "watermark": published.watermark,
            "epoch": published.epoch,
            "consistent": published.consistent,
            "term_table": {
                "constants": TERMS.counts()[0],
                "nulls": TERMS.counts()[1],
                "orphaned_nulls": TERMS.orphaned_nulls,
            },
            "maintenance": self.maintenance(),
            "slow_queries": slow_queries,
            "metrics": REGISTRY.collect(),
        }

    def maintenance(self) -> dict:
        """Index and dictionary health: tombstones, term table, pinned readers."""
        index = self._session.instance._index
        compaction_counts = getattr(self._session, "compaction_counts", {})
        predicates = {}
        for predicate in sorted(index.rows):
            total = len(index.rows[predicate])
            live = index.live.get(predicate, 0)
            predicates[predicate] = {
                "rows": total,
                "live": live,
                "tombstone_ratio": (
                    round(1.0 - live / total, 6) if total else 0.0
                ),
                "compactions": compaction_counts.get(predicate, 0),
            }
        constants, nulls = TERMS.counts()
        shm_segments, shm_bytes = promoted_stats()
        with self._gate:
            readers = self._active_readers
        return {
            "predicates": predicates,
            "term_table": {
                "constants": constants,
                "nulls": nulls,
                "orphaned_nulls": TERMS.orphaned_nulls,
                "epoch": TERMS.epoch(),
            },
            "shared_memory": {
                "segments": shm_segments,
                "bytes": shm_bytes,
            },
            "readers_pinned": readers,
        }

    def metrics_text(self) -> str:
        """The Prometheus exposition body for ``GET /metrics``.

        Scrape-time gauges (view state, index health, term table) are
        refreshed first, and the engine's advisory counter blob is mirrored
        as ``repro_engine_<counter>_total`` series.
        """
        published = self._published
        _VIEW_FACTS.set(len(self._session.instance))
        _VIEW_WATERMARK.set(published.watermark)
        _VIEW_EPOCH.set(published.epoch)
        _VIEW_CONSISTENT.set(1 if published.consistent else 0)
        health = self.maintenance()
        _READERS_PINNED.set(health["readers_pinned"])
        term_table = health["term_table"]
        _TERM_CONSTANTS.set(term_table["constants"])
        _TERM_NULLS.set(term_table["nulls"])
        _TERM_ORPHANED.set(term_table["orphaned_nulls"])
        for predicate, entry in health["predicates"].items():
            _PRED_LIVE.labels(predicate).set(entry["live"])
            _PRED_TOMBSTONE.labels(predicate).set(entry["tombstone_ratio"])
        _SHM_SEGMENTS.set(health["shared_memory"]["segments"])
        _SHM_BYTES.set(health["shared_memory"]["bytes"])
        for name, value in STATS.snapshot().items():
            REGISTRY.counter(
                f"repro_engine_{name}_total",
                f"Engine advisory counter {name} (process-global).",
            ).set_total(value)
        return REGISTRY.render()
