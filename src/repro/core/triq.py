"""TriQ 1.0: weakly-frontier-guarded Datalog∃ with stratified negation and ⊥.

Definition 4.2: *a TriQ 1.0 query is a Datalog∃,¬s,⊥ query that is
weakly-frontier-guarded* (the check is performed on ``ex(Pi)+``).

Evaluation is ExpTime-complete in data complexity (Theorem 4.4); the engine
used here is the generic stratified chase semantics of
:mod:`repro.datalog.semantics`, with explicit resource bounds because the
chase of an arbitrary TriQ 1.0 program may be infinite.  The Theorem 4.4
constraint rewriting ``Pi_⊥`` (turning every constraint into a rule deriving
``p(*, ..., *)`` for a reserved constant ``*``) is exposed as
:func:`constraint_free_rewriting`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.analysis.guards import GuardReport, classify_program
from repro.datalog.atoms import Atom
from repro.datalog.chase import ChaseEngine
from repro.datalog.program import Program, Query
from repro.datalog.semantics import INCONSISTENT, QueryResult, evaluate_query
from repro.datalog.terms import Constant

#: The reserved constant ``*`` of the Theorem 4.4 rewriting.
STAR = Constant("__star__")


class TriQValidationError(ValueError):
    """Raised when a query does not belong to TriQ 1.0."""

    def __init__(self, report: GuardReport):
        self.report = report
        reasons = []
        if not report.stratified:
            reasons.append(report.violations.get("stratified", "not stratified"))
        if not report.weakly_frontier_guarded:
            reasons.append(
                report.violations.get(
                    "weakly_frontier_guarded", "not weakly-frontier-guarded"
                )
            )
        super().__init__(
            "not a TriQ 1.0 query: " + "; ".join(reasons or ["unknown violation"])
        )


class TriQQuery:
    """A TriQ 1.0 query ``(Pi, p)`` with syntactic validation and evaluation."""

    def __init__(
        self,
        program: Program,
        output_predicate: str,
        output_arity: Optional[int] = None,
        validate: bool = True,
    ):
        self.query = Query(program, output_predicate, output_arity)
        self.report = classify_program(program)
        if validate and not self.report.is_triq:
            raise TriQValidationError(self.report)

    # -- convenience accessors --------------------------------------------------

    @property
    def program(self) -> Program:
        """Return the validated warded program."""
        return self.query.program

    @property
    def output_predicate(self) -> str:
        """Return the name of the output predicate."""
        return self.query.output_predicate

    @property
    def output_arity(self) -> int:
        """Return the arity of the output predicate."""
        return self.query.output_arity

    def __repr__(self) -> str:
        return f"TriQQuery({self.output_predicate!r}/{self.output_arity})"

    # -- evaluation ---------------------------------------------------------------

    def evaluate(
        self,
        database: Iterable[Atom],
        chase_engine: Optional[ChaseEngine] = None,
    ) -> QueryResult:
        """``Q(D)``: the set of constant answer tuples, or ``INCONSISTENT`` (⊤)."""
        engine = chase_engine or ChaseEngine(max_steps=500_000, on_limit="raise")
        return evaluate_query(self.query, database, engine)

    def holds(
        self,
        database: Iterable[Atom],
        candidate: Sequence[Constant] = (),
        chase_engine: Optional[ChaseEngine] = None,
    ) -> bool:
        """The Eval convention: ``Q(D) != ⊤`` implies ``candidate in Q(D)``."""
        result = self.evaluate(database, chase_engine)
        if result is INCONSISTENT:
            return True
        return tuple(candidate) in result


def constraint_free_rewriting(query: Query) -> Tuple[Query, Constant]:
    """The ``Q' = (ex(Pi) ∪ Pi_⊥, p)`` rewriting of Theorem 4.4.

    Every constraint ``a1, ..., an -> ⊥`` becomes the rule
    ``a1, ..., an -> p(*, ..., *)`` for the reserved constant ``*`` (which must
    not occur in the database).  Then ``Q(D) != ⊤`` iff ``(*, ..., *)`` is not
    in ``Q'(D)``, and when consistent the two queries agree on all-constant
    tuples.  Returns the rewritten query and the reserved constant.
    """
    program = query.program
    star_rules = [
        constraint.to_rule(query.output_predicate, query.output_arity, STAR)
        for constraint in program.constraints
    ]
    rewritten = Program(tuple(program.rules) + tuple(star_rules), ())
    return Query(rewritten, query.output_predicate, query.output_arity), STAR
