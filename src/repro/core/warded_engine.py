"""The practical warded-Datalog∃ evaluation engine.

The conclusion of the paper states: *"a challenging task is to design a
practical algorithm for computing the ground semantics of a warded Datalog∃
program over a database"*.  This module is that algorithm for this library.

The theoretical membership proof (Proposition 6.8 / Lemmas 6.9-6.14) uses an
alternating logspace procedure (``ProofTree``).  Alternation is a proof
device; for a practical engine we materialise instead, using the structural
property that wardedness grants (and that the proof of Lemma 6.6 spells out):
a labelled null can only interact with the rest of a rule body through
*harmless* — hence ground — values, so the ground consequences of a null are
fully determined by

* the rule that invented it, and
* the ground values of that rule's frontier at invention time.

We call this pair the null's **type**.  The engine is a semi-naive chase that
fires each existential rule at most once per *abstracted trigger*, where an
abstracted trigger replaces every null of the frontier binding by its type.
For a fixed program the number of types is polynomial in the active domain of
the database, so the materialisation (and therefore the extracted ground
semantics ``Pi(D)↓``) is computed in polynomial time — matching Theorem 6.7.
Stratified grounded negation is evaluated against the lower strata exactly as
in Step 1 of the Theorem 6.7 proof; constraints are checked against the final
ground semantics as in Theorem 4.4.

The engine additionally records provenance (one justification per derived
fact), which :mod:`repro.core.prooftree` unfolds into the proof trees of
Definition 6.11 / Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.guards import classify_program
from repro.datalog.atoms import Atom, unify_with_fact
from repro.datalog.chase import match_atoms, satisfies_some
from repro.datalog.database import Database, Instance
from repro.datalog.program import Program, Query
from repro.datalog.rules import Rule
from repro.datalog.semantics import INCONSISTENT, QueryResult
from repro.datalog.stratification import partition_by_stratum, stratify
from repro.datalog.terms import Constant, Null, Term, Variable

# A justification: the rule plus the instantiated body atoms used to derive a fact.
Justification = Tuple[Rule, Tuple[Atom, ...]]


@dataclass
class WardedResult:
    """Result of a warded materialisation run."""

    instance: Instance
    provenance: Dict[Atom, Justification]
    null_types: Dict[Null, Tuple]
    fired_triggers: int

    def ground(self) -> Instance:
        """``Pi(D)↓``: the atoms over constants only."""
        return self.instance.ground_part()


class WardedEngine:
    """Semi-naive materialisation for warded Datalog∃ with grounded negation."""

    def __init__(
        self,
        program: Program,
        check_warded: bool = True,
        max_triggers: int = 2_000_000,
    ):
        self.program = program
        self.max_triggers = max_triggers
        if check_warded:
            report = classify_program(program)
            if not report.warded:
                raise ValueError(
                    "program is not warded: "
                    + report.violations.get("warded", "unknown violation")
                )
        self.stratification = stratify(program.ex())
        self.strata = partition_by_stratum(program.ex(), self.stratification)

    # -- public API ------------------------------------------------------------

    def materialise(self, database: Iterable[Atom]) -> WardedResult:
        """Materialise the stratified semantics of the program over ``database``."""
        instance = Instance(database)
        provenance: Dict[Atom, Justification] = {}
        null_types: Dict[Null, Tuple] = {}
        fired = 0
        for stratum_rules in self.strata:
            if not stratum_rules:
                continue
            reference = instance.copy()
            fired += self._fixpoint(stratum_rules, instance, reference, provenance, null_types)
        return WardedResult(
            instance=instance,
            provenance=provenance,
            null_types=null_types,
            fired_triggers=fired,
        )

    def ground_semantics(self, database: Iterable[Atom]) -> Instance:
        """``Pi(D)↓`` (ignores constraints)."""
        return self.materialise(database).ground()

    def is_consistent(self, database: Iterable[Atom]) -> bool:
        """True iff no constraint body embeds into the materialisation."""
        result = self.materialise(database)
        for constraint in self.program.constraints:
            if next(match_atoms(constraint.body, result.instance), None) is not None:
                return False
        return True

    def evaluate_query(self, query: Query, database: Iterable[Atom]) -> QueryResult:
        """``Q(D)`` under the paper's semantics (⊤ on constraint violation)."""
        if query.program is not self.program and query.program != self.program:
            raise ValueError("query program differs from the engine's program")
        result = self.materialise(database)
        for constraint in self.program.constraints:
            if next(match_atoms(constraint.body, result.instance), None) is not None:
                return INCONSISTENT
        answers: Set[Tuple[Constant, ...]] = set()
        for atom in result.instance.with_predicate(query.output_predicate):
            if atom.is_ground:
                answers.add(tuple(atom.terms))  # type: ignore[arg-type]
        return frozenset(answers)

    # -- fixpoint ----------------------------------------------------------------

    def _fixpoint(
        self,
        rules: Sequence[Rule],
        instance: Instance,
        negation_reference: Instance,
        provenance: Dict[Atom, Justification],
        null_types: Dict[Null, Tuple],
    ) -> int:
        fired = 0
        fired_existential_triggers: Set[Tuple[int, Tuple]] = set()

        def process(rule_index: int, rule: Rule, substitution: Dict[Variable, Term], delta_sink: Instance) -> int:
            nonlocal fired
            if rule.body_negative and satisfies_some(
                rule.body_negative, negation_reference, substitution
            ):
                return 0
            if fired >= self.max_triggers:
                raise RuntimeError(
                    f"warded engine exceeded max_triggers={self.max_triggers}; "
                    "the program/database pair is larger than expected"
                )
            extension = dict(substitution)
            if rule.existential_variables:
                abstract = self._abstract_trigger(rule, substitution, null_types)
                key = (rule_index, abstract)
                if key in fired_existential_triggers:
                    return 0
                fired_existential_triggers.add(key)
                for existential in sorted(rule.existential_variables):
                    fresh = Null.fresh(existential.name.lower())
                    extension[existential] = fresh
                    null_types[fresh] = (rule_index, existential.name, abstract)
            body_instantiation = tuple(
                atom.apply(substitution) for atom in rule.body_positive
            )
            added = 0
            fired += 1
            for head_atom in rule.head:
                fact = head_atom.apply(extension)
                if instance.add(fact):
                    delta_sink.add(fact)
                    added += 1
                    if fact not in provenance:
                        provenance[fact] = (rule, body_instantiation)
            return added

        # Naive first round over the full instance.
        delta = Instance()
        for rule_index, rule in enumerate(rules):
            for substitution in list(match_atoms(rule.body_positive, instance)):
                process(rule_index, rule, substitution, delta)

        # Semi-naive delta rounds.
        while len(delta):
            new_delta = Instance()
            for rule_index, rule in enumerate(rules):
                delta_predicates = delta.predicates
                pivots = [
                    i
                    for i, atom in enumerate(rule.body_positive)
                    if atom.predicate in delta_predicates
                ]
                for pivot in pivots:
                    pivot_atom = rule.body_positive[pivot]
                    others = [a for i, a in enumerate(rule.body_positive) if i != pivot]
                    for fact in list(delta.matching(pivot_atom)):
                        seed = unify_with_fact(pivot_atom, fact)
                        if seed is None:
                            continue
                        if others:
                            for substitution in list(
                                match_atoms(others, instance, initial=seed)
                            ):
                                process(rule_index, rule, substitution, new_delta)
                        else:
                            process(rule_index, rule, seed, new_delta)
            delta = new_delta
        return fired

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _abstract_trigger(
        rule: Rule, substitution: Dict[Variable, Term], null_types: Dict[Null, Tuple]
    ) -> Tuple:
        """The trigger abstraction: the frontier binding with nulls anonymised.

        Only the frontier matters for what the invented null will look like
        (non-frontier body variables never reach the head).  The key records,
        for every frontier variable, either its ground value or — when the
        value is a labelled null — an anonymous marker that only retains the
        *equality pattern* among the frontier nulls of this trigger.  The
        resulting key space is finite (polynomial in the active domain for a
        fixed program), which is what bounds the number of existential
        firings and yields the polynomial ground semantics of Theorem 6.7.

        Anonymising null identities is justified by wardedness: a null can
        only be joined with the remainder of a rule body through harmless
        (ground) values, so two triggers that agree on their ground frontier
        and on the null equality pattern generate isomorphic sub-instances and
        therefore exactly the same *ground* consequences (the argument of
        Lemma 6.6 read constructively).
        """
        items = []
        first_seen: Dict[Null, int] = {}
        for variable in sorted(rule.frontier):
            value = substitution.get(variable)
            if isinstance(value, Null):
                if value not in first_seen:
                    first_seen[value] = len(first_seen)
                items.append((variable.name, ("null", first_seen[value])))
            else:
                items.append((variable.name, ("ground", str(value))))
        return tuple(items)
