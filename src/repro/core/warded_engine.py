"""The practical warded-Datalog∃ evaluation engine.

The conclusion of the paper states: *"a challenging task is to design a
practical algorithm for computing the ground semantics of a warded Datalog∃
program over a database"*.  This module is that algorithm for this library.

The theoretical membership proof (Proposition 6.8 / Lemmas 6.9-6.14) uses an
alternating logspace procedure (``ProofTree``).  Alternation is a proof
device; for a practical engine we materialise instead, using the structural
property that wardedness grants (and that the proof of Lemma 6.6 spells out):
a labelled null can only interact with the rest of a rule body through
*harmless* — hence ground — values, so the ground consequences of a null are
fully determined by

* the rule that invented it, and
* the ground values of that rule's frontier at invention time.

We call this pair the null's **type**.  The engine is a semi-naive chase that
fires each existential rule at most once per *abstracted trigger*, where an
abstracted trigger replaces every null of the frontier binding by its type.
For a fixed program the number of types is polynomial in the active domain of
the database, so the materialisation (and therefore the extracted ground
semantics ``Pi(D)↓``) is computed in polynomial time — matching Theorem 6.7.
Stratified grounded negation is evaluated against the lower strata exactly as
in Step 1 of the Theorem 6.7 proof; constraints are checked against the final
ground semantics as in Theorem 4.4.

The engine additionally records provenance (one justification per derived
fact), which :mod:`repro.core.prooftree` unfolds into the proof trees of
Definition 6.11 / Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Set, Tuple

from repro.analysis.guards import classify_program
from repro.datalog.atoms import Atom
from repro.datalog.chase import match_atoms
from repro.datalog.database import Instance
from repro.datalog.program import Program, Query
from repro.datalog.rules import Rule
from repro.datalog.semantics import INCONSISTENT, QueryResult
from repro.datalog.stratification import partition_by_stratum, stratify
from repro.datalog.terms import Constant, Null, Term, Variable
from repro.engine.interning import TERMS
from repro.engine.mode import batch_enabled
from repro.engine.parallel import maybe_session
from repro.engine.plan import compile_rule
from repro.engine.stats import STATS

# A justification: the rule plus the instantiated body atoms used to derive a fact.
Justification = Tuple[Rule, Tuple[Atom, ...]]


@dataclass
class WardedResult:
    """Result of a warded materialisation run."""

    instance: Instance
    provenance: Dict[Atom, Justification]
    null_types: Dict[Null, Tuple]
    fired_triggers: int

    def ground(self) -> Instance:
        """``Pi(D)↓``: the atoms over constants only."""
        return self.instance.ground_part()


class WardedEngine:
    """Semi-naive materialisation for warded Datalog∃ with grounded negation."""

    def __init__(
        self,
        program: Program,
        check_warded: bool = True,
        max_triggers: int = 2_000_000,
    ):
        self.program = program
        self.max_triggers = max_triggers
        if check_warded:
            report = classify_program(program)
            if not report.warded:
                raise ValueError(
                    "program is not warded: "
                    + report.violations.get("warded", "unknown violation")
                )
        self.stratification = stratify(program.ex())
        self.strata = partition_by_stratum(program.ex(), self.stratification)
        self.compiled_strata = [
            [compile_rule(rule) for rule in stratum] for stratum in self.strata
        ]

    # -- public API ------------------------------------------------------------

    def materialise(
        self, database: Iterable[Atom], with_provenance: bool = True
    ) -> WardedResult:
        """Materialise the stratified semantics of the program over ``database``.

        ``with_provenance=False`` skips recording one justification per
        derived fact (and the body instantiations that requires); use it when
        only the materialised instance matters, e.g. plain query answering.
        """
        instance = Instance(database)
        provenance: Optional[Dict[Atom, Justification]] = (
            {} if with_provenance else None
        )
        null_types: Dict[Null, Tuple] = {}
        fired = 0
        session = maybe_session(
            instance, [crule for stratum in self.compiled_strata for crule in stratum]
        )
        try:
            for stratum in self.compiled_strata:
                if not stratum:
                    continue
                reference = instance.snapshot()
                fired += self._fixpoint(
                    stratum, instance, reference, provenance, null_types, session
                )
        finally:
            if session is not None:
                session.close()
        return WardedResult(
            instance=instance,
            provenance=provenance if provenance is not None else {},
            null_types=null_types,
            fired_triggers=fired,
        )

    def ground_semantics(self, database: Iterable[Atom]) -> Instance:
        """``Pi(D)↓`` (ignores constraints)."""
        return self.materialise(database).ground()

    def is_consistent(self, database: Iterable[Atom]) -> bool:
        """True iff no constraint body embeds into the materialisation."""
        result = self.materialise(database, with_provenance=False)
        for constraint in self.program.constraints:
            if next(match_atoms(constraint.body, result.instance), None) is not None:
                return False
        return True

    def evaluate_query(self, query: Query, database: Iterable[Atom]) -> QueryResult:
        """``Q(D)`` under the paper's semantics (⊤ on constraint violation)."""
        if query.program is not self.program and query.program != self.program:
            raise ValueError("query program differs from the engine's program")
        result = self.materialise(database, with_provenance=False)
        for constraint in self.program.constraints:
            if next(match_atoms(constraint.body, result.instance), None) is not None:
                return INCONSISTENT
        answers: Set[Tuple[Constant, ...]] = set()
        for atom in result.instance.with_predicate(query.output_predicate):
            if atom.is_ground:
                answers.add(tuple(atom.terms))  # type: ignore[arg-type]
        return frozenset(answers)

    # -- fixpoint ----------------------------------------------------------------

    def _fixpoint(
        self,
        compiled: Sequence,
        instance: Instance,
        negation_reference,
        provenance: Optional[Dict[Atom, Justification]],
        null_types: Dict[Null, Tuple],
        session=None,
    ) -> int:
        fired = 0
        fired_existential_triggers: Set[Tuple[int, Tuple]] = set()

        def process(rule_index: int, crule, substitution: Dict[Variable, Term], delta_sink: Instance) -> int:
            nonlocal fired
            rule = crule.rule
            if crule.negation and crule.negation_blocked(
                substitution, negation_reference
            ):
                return 0
            if fired >= self.max_triggers:
                raise RuntimeError(
                    f"warded engine exceeded max_triggers={self.max_triggers}; "
                    "the program/database pair is larger than expected"
                )
            if rule.existential_variables:
                abstract = self._abstract_trigger(
                    crule.sorted_frontier, substitution, null_types
                )
                key = (rule_index, abstract)
                if key in fired_existential_triggers:
                    return 0
                fired_existential_triggers.add(key)
                extension = dict(substitution)
                for existential in crule.sorted_existentials:
                    fresh = Null.fresh(existential.name.lower())
                    extension[existential] = fresh
                    null_types[fresh] = (rule_index, existential.name, abstract)
                    STATS.nulls_invented += 1
            else:
                extension = substitution
            added = 0
            fired += 1
            STATS.triggers_fired += 1
            body_instantiation = None
            for fact in crule.head_facts(extension):
                if instance.add_fact(fact):
                    delta_sink.add_fact(fact)
                    added += 1
                    if provenance is not None and fact not in provenance:
                        # Provenance is only instantiated for genuinely new
                        # facts; duplicate triggers skip the body application.
                        if body_instantiation is None:
                            body_instantiation = tuple(
                                atom.apply(substitution) for atom in rule.body_positive
                            )
                        provenance[fact] = (rule, body_instantiation)
            return added

        def process_rows(rule_index: int, crule, delta_sink: Instance, delta=None) -> None:
            """Batch-mode firing: slot rows in, head facts out — no dicts.

            Negation is pre-filtered in bulk against the frozen lower-strata
            snapshot inside ``trigger_row_batches`` (equivalent to the row
            path's per-trigger check because the reference cannot change
            between match time and fire time); head facts, provenance bodies,
            and the trigger abstraction all come from precompiled RowOps slot
            templates.
            """
            nonlocal fired
            rule = crule.rule
            has_existentials = bool(rule.existential_variables)
            if session is not None:
                batches = session.trigger_row_batches(crule, delta, negation_reference)
            else:
                batches = crule.trigger_row_batches(instance, delta, negation_reference)
            add_key = instance.add_key
            sink_add = delta_sink.add_fact
            for plan, rows in batches:
                ops = crule.row_ops(plan)
                frontier_slots = ops.frontier_slots
                head_keys_row = ops.head_keys_row
                for row in rows:
                    if fired >= self.max_triggers:
                        raise RuntimeError(
                            f"warded engine exceeded max_triggers={self.max_triggers}; "
                            "the program/database pair is larger than expected"
                        )
                    if has_existentials:
                        abstract = self._abstract_id_items(
                            (variable.name, row[slot])
                            for variable, slot in frontier_slots
                        )
                        key = (rule_index, abstract)
                        if key in fired_existential_triggers:
                            continue
                        fired_existential_triggers.add(key)
                        # The dedup key stays ID-based (fast, injective), but
                        # the *public* null_types record decodes the ground
                        # markers so the field is mode-identical and free of
                        # process-local IDs; this runs once per fired
                        # existential trigger, not per row.
                        decoded = self._decode_abstract(abstract)
                        fresh_ids = []
                        for existential in crule.sorted_existentials:
                            fresh = Null.fresh(existential.name.lower())
                            fresh_ids.append(TERMS.intern_term(fresh))
                            null_types[fresh] = (rule_index, existential.name, decoded)
                            STATS.nulls_invented += 1
                        extended = row + tuple(fresh_ids)
                    else:
                        extended = row
                    fired += 1
                    STATS.triggers_fired += 1
                    body_instantiation = None
                    for fact_key in head_keys_row(extended):
                        fact = add_key(fact_key)
                        if fact is not None:
                            sink_add(fact)
                            if provenance is not None and fact not in provenance:
                                if body_instantiation is None:
                                    body_instantiation = ops.body_facts_row(row)
                                provenance[fact] = (rule, body_instantiation)

        # Body matching honours the process-wide execution mode; every path
        # (row, batch, and the sharded parallel session, which merges worker
        # results back into batch order) produces triggers in the same order
        # and invents nulls in ``sorted_existentials`` order, so the
        # materialisation is identical atom for atom across modes.
        use_batch = batch_enabled()

        # Naive first round over the full instance.
        delta = Instance()
        for rule_index, crule in enumerate(compiled):
            if use_batch:
                process_rows(rule_index, crule, delta)
            else:
                for substitution in list(crule.substitutions(instance)):
                    process(rule_index, crule, substitution, delta)

        # Semi-naive delta rounds: the precompiled pivot plans read the pivot
        # atom's candidates from the delta and join the rest against the full
        # instance.
        while len(delta):
            new_delta = Instance()
            for rule_index, crule in enumerate(compiled):
                if use_batch:
                    process_rows(rule_index, crule, new_delta, delta)
                else:
                    for substitution in list(
                        crule.delta_substitutions(instance, delta)
                    ):
                        process(rule_index, crule, substitution, new_delta)
            delta = new_delta
        return fired

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _abstract_trigger(
        frontier: Sequence[Variable],
        substitution: Dict[Variable, Term],
        null_types: Dict[Null, Tuple],
    ) -> Tuple:
        """The trigger abstraction: the frontier binding with nulls anonymised.

        Only the frontier matters for what the invented null will look like
        (non-frontier body variables never reach the head).  The key records,
        for every frontier variable, either its ground value or — when the
        value is a labelled null — an anonymous marker that only retains the
        *equality pattern* among the frontier nulls of this trigger.  The
        resulting key space is finite (polynomial in the active domain for a
        fixed program), which is what bounds the number of existential
        firings and yields the polynomial ground semantics of Theorem 6.7.

        Anonymising null identities is justified by wardedness: a null can
        only be joined with the remainder of a rule body through harmless
        (ground) values, so two triggers that agree on their ground frontier
        and on the null equality pattern generate isomorphic sub-instances and
        therefore exactly the same *ground* consequences (the argument of
        Lemma 6.6 read constructively).
        """
        return WardedEngine._abstract_items(
            (variable.name, substitution.get(variable)) for variable in frontier
        )

    @staticmethod
    def _abstract_items(named_values) -> Tuple:
        """The abstraction over (variable name, term value) pairs (row mode)."""
        items = []
        first_seen: Dict[Null, int] = {}
        for name, value in named_values:
            if isinstance(value, Null):
                if value not in first_seen:
                    first_seen[value] = len(first_seen)
                items.append((name, ("null", first_seen[value])))
            else:
                items.append((name, ("ground", str(value))))
        return tuple(items)

    @staticmethod
    def _decode_abstract(abstract: Tuple) -> Tuple:
        """Decode an ID-keyed abstraction into the row-mode (spelling) form.

        Null markers are already ID-free (equality-pattern indexes); ground
        markers swap the process-local term ID for ``str(term)``, which is
        what the row path records and what external consumers of
        ``WardedResult.null_types`` can compare across modes and runs.
        """
        return tuple(
            (name, marker if marker[0] == "null" else ("ground", str(TERMS.term(marker[1]))))
            for name, marker in abstract
        )

    @staticmethod
    def _abstract_id_items(named_ids) -> Tuple:
        """The abstraction over (variable name, term-ID) pairs (batch mode).

        Ground markers key on the dictionary ID instead of the spelling —
        injective within a process, so the dedup classes are exactly those
        of :meth:`_abstract_items`, with the null test reduced to a bit op.
        """
        items = []
        first_seen: Dict[int, int] = {}
        for name, tid in named_ids:
            if tid & 1:
                if tid not in first_seen:
                    first_seen[tid] = len(first_seen)
                items.append((name, ("null", first_seen[tid])))
            else:
                items.append((name, ("ground", tid)))
        return tuple(items)
