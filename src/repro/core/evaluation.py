"""Top-level evaluation API.

``evaluate(program_text_or_program, output_predicate, database)`` picks the
right engine for a query:

* TriQ-Lite 1.0 queries run on the polynomial warded engine;
* TriQ 1.0 queries (warded or not) fall back to the generic stratified chase
  with resource bounds;
* plain Datalog¬s queries may also run on the semi-naive evaluator (used for
  the baselines), but by default they go through the warded engine since every
  Datalog program is warded.

This mirrors the paper's narrative: the user writes a *single, plain* program
(Section 1.2's "plainness") and the system figures out which fragment it falls
into and how to evaluate it.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from repro.analysis.guards import classify_program
from repro.core.triq import TriQQuery
from repro.core.triqlite import TriQLiteQuery
from repro.datalog.atoms import Atom
from repro.datalog.chase import ChaseEngine
from repro.datalog.parser import parse_program
from repro.datalog.program import Program
from repro.datalog.semantics import INCONSISTENT, QueryResult
from repro.datalog.terms import Constant


def _as_program(program: Union[str, Program]) -> Program:
    if isinstance(program, Program):
        return program
    return parse_program(program)


def _ensure_output(
    program: Program, output_predicate: str, output_arity: Optional[int]
) -> tuple:
    """Make ``output_predicate`` a legal query output.

    The paper requires the output predicate of a query not to occur in any
    rule body.  Users naturally write recursive programs whose answer
    predicate *is* recursive (e.g. the transport-service query of Section 2),
    so when that happens we add a copy rule ``p(x) -> __answer_p(x)`` and
    query the fresh predicate instead — an equivalence-preserving rewriting.
    """
    from repro.datalog.atoms import Atom
    from repro.datalog.rules import Rule
    from repro.datalog.terms import Variable

    if output_predicate not in program.body_predicates:
        return program, output_predicate, output_arity
    arity = output_arity if output_arity is not None else program.arities().get(output_predicate)
    if arity is None:
        raise ValueError(
            f"cannot determine the arity of output predicate {output_predicate!r}"
        )
    answer_predicate = program.fresh_predicate(f"__answer_{output_predicate}")
    variables = [Variable(f"X{i}") for i in range(arity)]
    copy_rule = Rule(
        (Atom(output_predicate, variables),), (Atom(answer_predicate, variables),)
    )
    return program.with_rules([copy_rule]), answer_predicate, arity


def evaluate(
    program: Union[str, Program],
    output_predicate: str,
    database: Iterable[Atom],
    output_arity: Optional[int] = None,
    chase_engine: Optional[ChaseEngine] = None,
) -> QueryResult:
    """Evaluate a query given as program text (or a :class:`Program`).

    Returns the set of answer tuples (tuples of :class:`Constant`), or
    ``INCONSISTENT`` when the database violates a constraint of the program.
    Raises :class:`ValueError` if the program is not even a TriQ 1.0 query
    (i.e. not weakly-frontier-guarded), since evaluation is then undecidable
    in general.
    """
    parsed, output_predicate, output_arity = _ensure_output(
        _as_program(program), output_predicate, output_arity
    )
    report = classify_program(parsed)
    if report.is_triq_lite:
        return TriQLiteQuery(parsed, output_predicate, output_arity).evaluate(database)
    if report.is_triq:
        return TriQQuery(parsed, output_predicate, output_arity).evaluate(
            database, chase_engine
        )
    raise ValueError(
        "the program is not weakly-frontier-guarded (not a TriQ 1.0 query); "
        "query evaluation is undecidable for unrestricted Datalog with existentials: "
        + "; ".join(f"{k}: {v}" for k, v in report.violations.items())
    )


def eval_decision_problem(
    program: Union[str, Program],
    output_predicate: str,
    database: Iterable[Atom],
    candidate: Sequence[Constant],
    output_arity: Optional[int] = None,
) -> bool:
    """The paper's Eval decision problem for a program given as text."""
    result = evaluate(program, output_predicate, database, output_arity)
    if result is INCONSISTENT:
        return True
    return tuple(candidate) in result
