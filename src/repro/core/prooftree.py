"""Proof trees (Definition 6.11, Figure 1).

A proof tree of a ground atom ``p(t)`` with respect to a database ``D`` and a
program ``Pi`` is a labelled rooted tree whose root is labelled ``p(t)``,
whose leaves are labelled with database atoms, and where the children of a
node labelled ``a`` are the (instantiated) body atoms of a rule whose head
instantiates to ``a`` (with the consistency condition on the invention points
of nulls — condition (3) of Definition 6.11).

Lemma 6.12 states that ``p(t) ∈ Pi(D)`` iff ``p(t)`` has a proof tree.  The
:class:`repro.core.warded_engine.WardedEngine` records, for every derived
atom, one justification (the rule and instantiated body atoms used the first
time the atom was produced); :func:`extract_proof_tree` unfolds those
justifications into an explicit proof tree, which reproduces Figure 1 of the
paper for Example 6.10 (see ``benchmarks/bench_figure1_proof_tree.py`` and
``tests/test_prooftree.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.core.warded_engine import WardedResult
from repro.datalog.atoms import Atom
from repro.datalog.database import Instance
from repro.datalog.rules import Rule


@dataclass
class ProofTreeNode:
    """A node of a proof tree: an atom plus the rule used to derive it."""

    atom: Atom
    rule: Optional[Rule] = None
    children: List["ProofTreeNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """Return whether this node has no children (a database-atom candidate)."""
        return not self.children

    def depth(self) -> int:
        """Return the depth of the subtree rooted here (a single node has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def size(self) -> int:
        """Return the number of nodes in the subtree rooted here."""
        return 1 + sum(child.size() for child in self.children)

    def atoms(self) -> List[Atom]:
        """Return every atom in the subtree, pre-order."""
        result = [self.atom]
        for child in self.children:
            result.extend(child.atoms())
        return result


@dataclass
class ProofTree:
    """A proof tree of ``root.atom`` with respect to a database and program."""

    root: ProofTreeNode
    database: Instance

    def depth(self) -> int:
        """Return the depth of the tree."""
        return self.root.depth()

    def size(self) -> int:
        """Return the total number of nodes in the tree."""
        return self.root.size()

    def leaves(self) -> List[Atom]:
        """Return the atoms at the leaves, pre-order."""
        leaves: List[Atom] = []

        def collect(node: ProofTreeNode) -> None:
            if node.is_leaf:
                leaves.append(node.atom)
            for child in node.children:
                collect(child)

        collect(self.root)
        return leaves

    def leaves_in_database(self) -> bool:
        """Condition (4) of Definition 6.11: every leaf is a database atom."""
        return all(leaf in self.database for leaf in self.leaves())

    def rules_used(self) -> List[Rule]:
        """Return the rules applied at internal nodes, pre-order."""
        rules: List[Rule] = []

        def collect(node: ProofTreeNode) -> None:
            if node.rule is not None:
                rules.append(node.rule)
            for child in node.children:
                collect(child)

        collect(self.root)
        return rules

    def render(self) -> str:
        """An ASCII rendering in the spirit of Figure 1(b)."""
        lines: List[str] = []

        def walk(node: ProofTreeNode, prefix: str, is_last: bool, is_root: bool) -> None:
            connector = "" if is_root else ("└── " if is_last else "├── ")
            rule_note = f"   [{node.rule}]" if node.rule is not None else ""
            lines.append(f"{prefix}{connector}{node.atom}{rule_note}")
            child_prefix = prefix if is_root else prefix + ("    " if is_last else "│   ")
            for i, child in enumerate(node.children):
                walk(child, child_prefix, i == len(node.children) - 1, False)

        walk(self.root, "", True, True)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class ProofTreeError(ValueError):
    """Raised when no proof tree can be extracted for the requested atom."""


def extract_proof_tree(
    atom: Atom,
    result: WardedResult,
    database: Iterable[Atom],
    max_depth: int = 10_000,
) -> ProofTree:
    """Unfold the engine's provenance into a proof tree rooted at ``atom``.

    ``result`` must come from a :class:`WardedEngine` materialisation over
    ``database``.  Database atoms become leaves.  The provenance graph is
    acyclic by construction (a justification only mentions atoms present
    strictly before the derived fact), so the unfolding terminates; the
    ``max_depth`` guard is a defensive bound.
    """
    db_instance = database if isinstance(database, Instance) else Instance(database)
    provenance = result.provenance

    if atom not in result.instance:
        raise ProofTreeError(f"{atom} was not derived by the engine")

    def build(current: Atom, depth: int, seen: Tuple[Atom, ...]) -> ProofTreeNode:
        if depth > max_depth:
            raise ProofTreeError("proof tree exceeds the maximum depth")
        if current in db_instance:
            return ProofTreeNode(atom=current)
        justification = provenance.get(current)
        if justification is None:
            raise ProofTreeError(
                f"no justification recorded for {current}; "
                "was the atom part of the input database?"
            )
        rule, body_atoms = justification
        if current in seen:
            raise ProofTreeError(
                f"cyclic provenance detected at {current}; this indicates an engine bug"
            )
        node = ProofTreeNode(atom=current, rule=rule)
        for body_atom in body_atoms:
            node.children.append(build(body_atom, depth + 1, seen + (current,)))
        return node

    return ProofTree(root=build(atom, 0, ()), database=db_instance)
