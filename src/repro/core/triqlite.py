"""TriQ-Lite 1.0: warded Datalog∃ with stratified grounded negation and ⊥.

Definition 6.1: *a TriQ-Lite 1.0 query is a Datalog∃,¬sg,⊥ query that is
warded*.  The class is

* powerful enough to express every SPARQL graph pattern under the OWL 2 QL
  core direct-semantics entailment regime, with or without the active-domain
  restriction (Corollary 6.2), and
* PTime-complete in data complexity (Theorem 6.7).

Evaluation uses :class:`repro.core.warded_engine.WardedEngine`, which realises
the polynomial ground-semantics computation that Proposition 6.8 and
Lemma 6.9 promise.  Every Datalog query is trivially a TriQ-Lite 1.0 query
(``affected(Pi) = ∅`` implies there are no dangerous variables), which is the
source of the PTime-hardness in Theorem 6.7 — the test suite checks that
inclusion explicitly.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.analysis.guards import GuardReport, classify_program
from repro.core.warded_engine import WardedEngine, WardedResult
from repro.datalog.atoms import Atom
from repro.datalog.program import Program, Query
from repro.datalog.semantics import INCONSISTENT, QueryResult
from repro.datalog.terms import Constant


class TriQLiteValidationError(ValueError):
    """Raised when a query does not belong to TriQ-Lite 1.0."""

    def __init__(self, report: GuardReport):
        self.report = report
        reasons = []
        if not report.stratified:
            reasons.append(report.violations.get("stratified", "not stratified"))
        if not report.warded:
            reasons.append(report.violations.get("warded", "not warded"))
        if not report.grounded_negation:
            reasons.append(
                report.violations.get("grounded_negation", "negation is not grounded")
            )
        super().__init__(
            "not a TriQ-Lite 1.0 query: " + "; ".join(reasons or ["unknown violation"])
        )


class TriQLiteQuery:
    """A TriQ-Lite 1.0 query ``(Pi, p)`` with validation and PTime evaluation."""

    def __init__(
        self,
        program: Program,
        output_predicate: str,
        output_arity: Optional[int] = None,
        validate: bool = True,
    ):
        self.query = Query(program, output_predicate, output_arity)
        self.report = classify_program(program)
        if validate and not self.report.is_triq_lite:
            raise TriQLiteValidationError(self.report)
        self._engine = WardedEngine(program, check_warded=False)

    # -- convenience accessors --------------------------------------------------

    @property
    def program(self) -> Program:
        """Return the validated TriQ-Lite program."""
        return self.query.program

    @property
    def output_predicate(self) -> str:
        """Return the name of the output predicate."""
        return self.query.output_predicate

    @property
    def output_arity(self) -> int:
        """Return the arity of the output predicate."""
        return self.query.output_arity

    @property
    def engine(self) -> WardedEngine:
        """Return the warded engine the query evaluates through."""
        return self._engine

    def __repr__(self) -> str:
        return f"TriQLiteQuery({self.output_predicate!r}/{self.output_arity})"

    # -- evaluation ---------------------------------------------------------------

    def materialise(self, database: Iterable[Atom]) -> WardedResult:
        """Materialise the stratified semantics (with provenance)."""
        return self._engine.materialise(database)

    def evaluate(self, database: Iterable[Atom]) -> QueryResult:
        """``Q(D)``: the set of constant answer tuples, or ``INCONSISTENT`` (⊤)."""
        return self._engine.evaluate_query(self.query, database)

    def holds(self, database: Iterable[Atom], candidate: Sequence[Constant] = ()) -> bool:
        """The Eval convention: ``Q(D) != ⊤`` implies ``candidate in Q(D)``."""
        result = self.evaluate(database)
        if result is INCONSISTENT:
            return True
        return tuple(candidate) in result

    def is_consistent(self, database: Iterable[Atom]) -> bool:
        """True iff the database satisfies every constraint of the program."""
        return self._engine.is_consistent(database)
