"""The paper's primary contribution: TriQ 1.0 and TriQ-Lite 1.0.

* :class:`TriQQuery` — queries based on weakly-frontier-guarded
  Datalog∃ with stratified negation and constraints (Definition 4.2),
  evaluated with the generic stratified chase semantics.
* :class:`TriQLiteQuery` — queries based on warded Datalog∃ with stratified
  *grounded* negation and constraints (Definition 6.1), evaluated with the
  polynomial-time warded engine (Theorem 6.7 / Proposition 6.8).
* :class:`WardedEngine` — the practical ground-semantics engine
  (``Pi(D)↓``) that the paper's conclusion calls for.
* :mod:`repro.core.prooftree` — proof trees in the sense of Definition 6.11
  (Figure 1), extracted from the engine's provenance.
* :mod:`repro.core.normalization` — the rule normal forms used in Section 6.3
  (single existential per rule; head-grounded / semi-body-grounded split).
"""

from repro.core.normalization import (
    split_existentials,
    normalize_single_existential,
    split_head_grounded,
    normalize_warded_program,
)
from repro.core.warded_engine import WardedEngine, WardedResult
from repro.core.prooftree import ProofTree, ProofTreeNode, extract_proof_tree
from repro.core.triq import TriQQuery, TriQValidationError, constraint_free_rewriting, STAR
from repro.core.triqlite import TriQLiteQuery, TriQLiteValidationError
from repro.core.evaluation import evaluate, eval_decision_problem

__all__ = [
    "split_existentials",
    "normalize_single_existential",
    "split_head_grounded",
    "normalize_warded_program",
    "WardedEngine",
    "WardedResult",
    "ProofTree",
    "ProofTreeNode",
    "extract_proof_tree",
    "TriQQuery",
    "TriQValidationError",
    "constraint_free_rewriting",
    "STAR",
    "TriQLiteQuery",
    "TriQLiteValidationError",
    "evaluate",
    "eval_decision_problem",
]
