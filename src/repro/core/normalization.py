"""Rule normal forms used by the evaluation algorithm of Section 6.3.

Two normalisations are provided, both preserving the ground semantics
``Pi(D)↓`` and preserving wardedness:

1. **Single existential per rule** (the first ``N(rho)`` of Section 6.3): a
   rule with ``k`` existential head variables is unfolded into a chain of
   ``k + 1`` rules, each introducing at most one fresh null, through auxiliary
   predicates carrying the frontier.

2. **Head-grounded / semi-body-grounded split** (the second ``N(rho)`` of
   Section 6.3): every rule becomes either *head-grounded* (each head term is
   a constant or a harmless variable) or *semi-body-grounded* (at most one
   body atom carries harmful variables).  The split isolates the ward in its
   own rule so that the ProofTree-style analysis can treat non-ward atoms as
   ground side conditions.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.analysis.affected import affected_positions
from repro.analysis.variables import classify_rule_variables
from repro.analysis.guards import find_ward
from repro.datalog.atoms import Atom
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable

_AUX_COUNTER = itertools.count()


def _fresh_aux_predicate(prefix: str) -> str:
    return f"__{prefix}_{next(_AUX_COUNTER)}"


def split_existentials(rule: Rule, rule_index: int = 0) -> List[Rule]:
    """Unfold a rule with ``k >= 2`` existential variables into a chain.

    Follows the construction of Section 6.3: auxiliary predicates
    ``p^rho_1, ..., p^rho_k`` carry the frontier ``X`` and the already
    invented existential variables, and the last rule emits the original head
    atoms.  Rules with at most one existential variable are returned as-is.
    """
    existentials = sorted(rule.existential_variables)
    if len(existentials) <= 1:
        return [rule]

    frontier = sorted(rule.frontier)
    rules: List[Rule] = []
    previous_atom: Optional[Atom] = None
    carried: List[Variable] = list(frontier)
    for step, existential in enumerate(existentials):
        aux_predicate = _fresh_aux_predicate(f"exist_{rule_index}_{step}")
        head_terms: List[Variable] = carried + [existential]
        aux_atom = Atom(aux_predicate, head_terms)
        if previous_atom is None:
            rules.append(
                Rule(
                    rule.body_positive,
                    (aux_atom,),
                    body_negative=rule.body_negative,
                    existential_variables=(existential,),
                    label=rule.label,
                )
            )
        else:
            rules.append(
                Rule(
                    (previous_atom,),
                    (aux_atom,),
                    existential_variables=(existential,),
                    label=rule.label,
                )
            )
        previous_atom = aux_atom
        carried = head_terms

    assert previous_atom is not None
    rules.append(Rule((previous_atom,), rule.head, label=rule.label))
    return rules


def normalize_single_existential(program: Program) -> Program:
    """Apply :func:`split_existentials` to every rule of the program."""
    rules: List[Rule] = []
    for index, rule in enumerate(program.rules):
        rules.extend(split_existentials(rule, index))
    return Program(rules, program.constraints)


def split_head_grounded(program: Program) -> Program:
    """The head-grounded / semi-body-grounded normal form of Section 6.3.

    For every rule whose body contains more than one atom carrying harmful
    variables, the harmless "side" of the body is folded into an auxiliary
    predicate via a head-grounded rule, and the ward joins against that
    auxiliary atom in a semi-body-grounded rule.  Rules already in one of the
    two shapes are left untouched.
    """
    reference = program.ex().positive_program()
    affected = affected_positions(reference)
    new_rules: List[Rule] = []
    for rule in program.rules:
        classification = classify_rule_variables(rule.positive_part(), reference, affected)
        harmful_atoms = [
            atom
            for atom in rule.body_positive
            if atom.variables & classification.harmful
        ]
        head_is_grounded = all(
            not isinstance(term, Variable) or classification.is_harmless(term) or term in rule.existential_variables
            for atom in rule.head
            for term in atom.terms
        )
        if len(harmful_atoms) <= 1 or head_is_grounded and not harmful_atoms:
            new_rules.append(rule)
            continue
        if len(harmful_atoms) <= 1:
            new_rules.append(rule)
            continue
        # Choose the ward (or an arbitrary harmful atom when no dangerous
        # variables exist) to stay in the second rule.
        ward = find_ward(rule.positive_part(), classification) or harmful_atoms[0]
        side_atoms = [a for a in rule.body_positive if a is not ward]
        side_harmless_atoms = [
            a for a in side_atoms if not (a.variables & classification.harmful)
        ]
        side_harmful_atoms = [
            a for a in side_atoms if a.variables & classification.harmful
        ]
        if not side_harmless_atoms:
            # Nothing to fold; the rule is semi-body-grounded only if there is
            # a single harmful atom, which we ruled out — keep the rule as-is
            # (it still evaluates correctly, just outside the normal form).
            new_rules.append(rule)
            continue
        folded_vars = sorted(
            {
                v
                for a in side_harmless_atoms
                for v in a.variables
            }
            & (rule.head_variables | {v for a in (ward, *side_harmful_atoms) for v in a.variables})
        )
        aux_predicate = _fresh_aux_predicate("side")
        aux_atom = Atom(aux_predicate, folded_vars)
        new_rules.append(Rule(side_harmless_atoms, (aux_atom,), label=rule.label))
        new_rules.append(
            Rule(
                (ward, aux_atom, *side_harmful_atoms),
                rule.head,
                body_negative=rule.body_negative,
                existential_variables=rule.existential_variables,
                label=rule.label,
            )
        )
    return Program(new_rules, program.constraints)


def normalize_warded_program(program: Program) -> Program:
    """Both normalisations in sequence (single existential, then the split)."""
    return split_head_grounded(normalize_single_existential(program))
