"""The OWL 2 QL core ontology model (DL-Lite_R), Section 5.2.

A vocabulary consists of classes (unary predicates) and properties (binary
predicates).  A *basic property* is ``p`` or ``p⁻``; a *basic class* is a
named class ``A`` or an unqualified existential restriction ``∃r`` over a
basic property ``r``.  Ontologies are finite sets of the six axiom forms of
Table 1:

* ``SubClassOf(b1, b2)``
* ``SubObjectPropertyOf(r1, r2)``
* ``DisjointClasses(b1, b2)``
* ``DisjointObjectProperties(r1, r2)``
* ``ClassAssertion(b, a)``
* ``ObjectPropertyAssertion(p, a1, a2)``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Set, Union

from repro.datalog.terms import Constant


def _as_constant(value: Union[Constant, str]) -> Constant:
    return value if isinstance(value, Constant) else Constant(value)


# ---------------------------------------------------------------------------
# Basic properties
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NamedProperty:
    """A property name ``p`` of the vocabulary."""

    name: str

    def inverse(self) -> "InverseProperty":
        """The inverse ``p⁻`` of this property."""
        return InverseProperty(self.name)

    def named(self) -> "NamedProperty":
        """This property itself (it is already named)."""
        return self

    @property
    def is_inverse(self) -> bool:
        """Always False for a named property."""
        return False

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class InverseProperty:
    """The inverse ``p⁻`` of a property name ``p``."""

    name: str

    def inverse(self) -> NamedProperty:
        """The underlying named property ``p``."""
        return NamedProperty(self.name)

    def named(self) -> NamedProperty:
        """The underlying named property ``p``."""
        return NamedProperty(self.name)

    @property
    def is_inverse(self) -> bool:
        """Always True for an inverse property."""
        return True

    def __str__(self) -> str:
        return f"{self.name}-"


BasicProperty = Union[NamedProperty, InverseProperty]


def inverse(prop: Union[BasicProperty, str]) -> BasicProperty:
    """The inverse of a basic property (``p ↦ p⁻`` and ``p⁻ ↦ p``)."""
    if isinstance(prop, str):
        prop = NamedProperty(prop)
    return prop.inverse()


# ---------------------------------------------------------------------------
# Basic classes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NamedClass:
    """A class name ``A`` of the vocabulary."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ExistentialClass:
    """The unqualified existential restriction ``∃r`` over a basic property."""

    property: BasicProperty

    def __str__(self) -> str:
        return f"∃{self.property}"


BasicClass = Union[NamedClass, ExistentialClass]


def some(prop: Union[BasicProperty, str]) -> ExistentialClass:
    """``∃p`` (or ``∃p⁻`` when given an :class:`InverseProperty`)."""
    if isinstance(prop, str):
        prop = NamedProperty(prop)
    return ExistentialClass(prop)


def _as_class(value: Union[BasicClass, str]) -> BasicClass:
    if isinstance(value, (NamedClass, ExistentialClass)):
        return value
    return NamedClass(value)


def _as_property(value: Union[BasicProperty, str]) -> BasicProperty:
    if isinstance(value, (NamedProperty, InverseProperty)):
        return value
    return NamedProperty(value)


# ---------------------------------------------------------------------------
# Axioms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SubClassOf:
    """``SubClassOf(b1, b2)``: every instance of ``b1`` is an instance of ``b2``."""

    sub: BasicClass
    sup: BasicClass

    def __str__(self) -> str:
        return f"SubClassOf({self.sub}, {self.sup})"


@dataclass(frozen=True)
class SubObjectPropertyOf:
    """``SubObjectPropertyOf(r1, r2)``."""

    sub: BasicProperty
    sup: BasicProperty

    def __str__(self) -> str:
        return f"SubObjectPropertyOf({self.sub}, {self.sup})"


@dataclass(frozen=True)
class DisjointClasses:
    """``DisjointClasses(b1, b2)``."""

    first: BasicClass
    second: BasicClass

    def __str__(self) -> str:
        return f"DisjointClasses({self.first}, {self.second})"


@dataclass(frozen=True)
class DisjointObjectProperties:
    """``DisjointObjectProperties(r1, r2)``."""

    first: BasicProperty
    second: BasicProperty

    def __str__(self) -> str:
        return f"DisjointObjectProperties({self.first}, {self.second})"


@dataclass(frozen=True)
class ClassAssertion:
    """``ClassAssertion(b, a)``: the individual ``a`` belongs to the basic class ``b``."""

    cls: BasicClass
    individual: Constant

    def __str__(self) -> str:
        return f"ClassAssertion({self.cls}, {self.individual})"


@dataclass(frozen=True)
class ObjectPropertyAssertion:
    """``ObjectPropertyAssertion(p, a1, a2)``: ``a1`` related to ``a2`` via ``p``."""

    property: NamedProperty
    subject: Constant
    object: Constant

    def __str__(self) -> str:
        return f"ObjectPropertyAssertion({self.property}, {self.subject}, {self.object})"


Axiom = Union[
    SubClassOf,
    SubObjectPropertyOf,
    DisjointClasses,
    DisjointObjectProperties,
    ClassAssertion,
    ObjectPropertyAssertion,
]

_TBOX_TYPES = (SubClassOf, SubObjectPropertyOf, DisjointClasses, DisjointObjectProperties)
_ABOX_TYPES = (ClassAssertion, ObjectPropertyAssertion)


# ---------------------------------------------------------------------------
# Ontologies
# ---------------------------------------------------------------------------


class Ontology:
    """An OWL 2 QL core ontology: a vocabulary plus a finite set of axioms."""

    def __init__(
        self,
        axioms: Iterable[Axiom] = (),
        classes: Iterable[Union[NamedClass, str]] = (),
        properties: Iterable[Union[NamedProperty, str]] = (),
    ):
        self.axioms: List[Axiom] = []
        self._classes: Set[NamedClass] = {
            c if isinstance(c, NamedClass) else NamedClass(c) for c in classes
        }
        self._properties: Set[NamedProperty] = {
            p if isinstance(p, NamedProperty) else NamedProperty(p) for p in properties
        }
        for axiom in axioms:
            self.add(axiom)

    # -- construction helpers ----------------------------------------------------

    def add(self, axiom: Axiom) -> None:
        """Append ``axiom`` and register the vocabulary it mentions."""
        self.axioms.append(axiom)
        self._register_vocabulary(axiom)

    def _register_vocabulary(self, axiom: Axiom) -> None:
        def register_class(cls: BasicClass) -> None:
            if isinstance(cls, NamedClass):
                self._classes.add(cls)
            else:
                self._properties.add(cls.property.named())

        def register_property(prop: BasicProperty) -> None:
            self._properties.add(prop.named())

        if isinstance(axiom, SubClassOf):
            register_class(axiom.sub)
            register_class(axiom.sup)
        elif isinstance(axiom, SubObjectPropertyOf):
            register_property(axiom.sub)
            register_property(axiom.sup)
        elif isinstance(axiom, DisjointClasses):
            register_class(axiom.first)
            register_class(axiom.second)
        elif isinstance(axiom, DisjointObjectProperties):
            register_property(axiom.first)
            register_property(axiom.second)
        elif isinstance(axiom, ClassAssertion):
            register_class(axiom.cls)
        elif isinstance(axiom, ObjectPropertyAssertion):
            register_property(axiom.property)
        else:
            raise TypeError(f"unknown axiom {axiom!r}")

    # -- convenience constructors --------------------------------------------------

    def sub_class(self, sub: Union[BasicClass, str], sup: Union[BasicClass, str]) -> "Ontology":
        """Add ``sub ⊑ sup`` (class inclusion); returns the ontology for chaining."""
        self.add(SubClassOf(_as_class(sub), _as_class(sup)))
        return self

    def sub_property(
        self, sub: Union[BasicProperty, str], sup: Union[BasicProperty, str]
    ) -> "Ontology":
        """Add ``sub ⊑ sup`` (property inclusion); returns the ontology for chaining."""
        self.add(SubObjectPropertyOf(_as_property(sub), _as_property(sup)))
        return self

    def disjoint_classes(
        self, first: Union[BasicClass, str], second: Union[BasicClass, str]
    ) -> "Ontology":
        """Add a class-disjointness axiom; returns the ontology for chaining."""
        self.add(DisjointClasses(_as_class(first), _as_class(second)))
        return self

    def disjoint_properties(
        self, first: Union[BasicProperty, str], second: Union[BasicProperty, str]
    ) -> "Ontology":
        """Add a property-disjointness axiom; returns the ontology for chaining."""
        self.add(DisjointObjectProperties(_as_property(first), _as_property(second)))
        return self

    def assert_class(self, cls: Union[BasicClass, str], individual: Union[Constant, str]) -> "Ontology":
        """Assert ``cls(individual)``; returns the ontology for chaining."""
        self.add(ClassAssertion(_as_class(cls), _as_constant(individual)))
        return self

    def assert_property(
        self,
        prop: Union[NamedProperty, str],
        subject: Union[Constant, str],
        object: Union[Constant, str],
    ) -> "Ontology":
        """Assert ``prop(subject, object)``; returns the ontology for chaining."""
        named = prop if isinstance(prop, NamedProperty) else NamedProperty(prop)
        self.add(ObjectPropertyAssertion(named, _as_constant(subject), _as_constant(object)))
        return self

    # -- inspection -------------------------------------------------------------------

    @property
    def classes(self) -> FrozenSet[NamedClass]:
        """The named classes mentioned by the axioms."""
        return frozenset(self._classes)

    @property
    def properties(self) -> FrozenSet[NamedProperty]:
        """The named properties mentioned by the axioms."""
        return frozenset(self._properties)

    def tbox(self) -> List[Axiom]:
        """Terminological axioms (class/property inclusions and disjointness)."""
        return [a for a in self.axioms if isinstance(a, _TBOX_TYPES)]

    def abox(self) -> List[Axiom]:
        """Assertional axioms (class and property assertions)."""
        return [a for a in self.axioms if isinstance(a, _ABOX_TYPES)]

    def individuals(self) -> FrozenSet[Constant]:
        """Every individual mentioned by an assertional axiom."""
        individuals: Set[Constant] = set()
        for axiom in self.axioms:
            if isinstance(axiom, ClassAssertion):
                individuals.add(axiom.individual)
            elif isinstance(axiom, ObjectPropertyAssertion):
                individuals.add(axiom.subject)
                individuals.add(axiom.object)
        return frozenset(individuals)

    def is_positive(self) -> bool:
        """No ``DisjointClasses`` axioms (the notion used in Definition 6.3)."""
        return not any(isinstance(a, DisjointClasses) for a in self.axioms)

    def __len__(self) -> int:
        return len(self.axioms)

    def __iter__(self) -> Iterator[Axiom]:
        return iter(self.axioms)

    def __repr__(self) -> str:
        return (
            f"Ontology({len(self.axioms)} axioms, {len(self._classes)} classes, "
            f"{len(self._properties)} properties)"
        )
