"""A DL-Lite_R reasoner used as the entailment oracle ``G ⊨ t`` (Section 5.2).

OWL 2 QL core corresponds to DL-Lite_R, for which reasoning reduces to
computing (i) the reflexive-transitive closure of the class / property
hierarchies (with the interaction ``r1 ⊑ r2  ⟹  ∃r1 ⊑ ∃r2`` and
``r1⁻ ⊑ r2⁻``), and (ii) the saturation of the ABox memberships under that
hierarchy.  The reasoner answers:

* instance checks ``(a, rdf:type, B)``,
* role checks ``(a, p, b)`` (also for inverse-property URIs),
* TBox checks ``(B1, rdfs:subClassOf, B2)`` and ``(r1, rdfs:subPropertyOf, r2)``,
* consistency (disjointness violations).

It is deliberately independent from the Datalog encoding
``tau_owl2ql_core`` so that the two can be tested against each other
(Theorem 5.3 benchmarks use exactly that cross-validation).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.datalog.terms import Constant
from repro.owl.model import (
    BasicClass,
    BasicProperty,
    ClassAssertion,
    DisjointClasses,
    DisjointObjectProperties,
    ExistentialClass,
    InverseProperty,
    NamedProperty,
    ObjectPropertyAssertion,
    Ontology,
    SubClassOf,
    SubObjectPropertyOf,
)
from repro.owl.rdf_mapping import class_uri, parse_class_uri, parse_property_uri, property_uri
from repro.rdf.graph import Triple
from repro.rdf.namespaces import OWL, RDF, RDFS


def _transitive_closure(edges: Dict) -> Dict:
    """Reflexive-transitive closure of a subsumption relation (small graphs)."""
    closure: Dict = {node: set(targets) for node, targets in edges.items()}
    for node in list(closure):
        closure[node].add(node)
    changed = True
    while changed:
        changed = False
        for node, supers in closure.items():
            additions = set()
            for sup in supers:
                additions |= closure.get(sup, {sup})
            if not additions <= supers:
                supers |= additions
                changed = True
    return closure


class DLLiteReasoner:
    """Saturation-based reasoning for OWL 2 QL core ontologies."""

    def __init__(self, ontology: Ontology):
        self.ontology = ontology
        self._property_subsumers = self._saturate_properties()
        self._class_subsumers = self._saturate_classes()
        self._memberships, self._role_pairs = self._saturate_abox()

    # -- TBox saturation -----------------------------------------------------------

    def _saturate_properties(self) -> Dict[BasicProperty, Set[BasicProperty]]:
        edges: Dict[BasicProperty, Set[BasicProperty]] = defaultdict(set)
        for prop in self.ontology.properties:
            edges[prop]
            edges[prop.inverse()]
        for axiom in self.ontology.axioms:
            if isinstance(axiom, SubObjectPropertyOf):
                edges[axiom.sub].add(axiom.sup)
                edges[axiom.sub.inverse()].add(axiom.sup.inverse())
                edges.setdefault(axiom.sup, set())
                edges.setdefault(axiom.sup.inverse(), set())
        return _transitive_closure(edges)

    def _saturate_classes(self) -> Dict[BasicClass, Set[BasicClass]]:
        edges: Dict[BasicClass, Set[BasicClass]] = defaultdict(set)
        for cls in self.ontology.classes:
            edges[cls]
        for prop, supers in self._property_subsumers.items():
            edges[ExistentialClass(prop)]
            for sup in supers:
                edges[ExistentialClass(prop)].add(ExistentialClass(sup))
        for axiom in self.ontology.axioms:
            if isinstance(axiom, SubClassOf):
                edges[axiom.sub].add(axiom.sup)
                edges.setdefault(axiom.sup, set())
        return _transitive_closure(edges)

    # -- ABox saturation -------------------------------------------------------------

    def _saturate_abox(self):
        memberships: Dict[Constant, Set[BasicClass]] = defaultdict(set)
        role_pairs: Dict[BasicProperty, Set[Tuple[Constant, Constant]]] = defaultdict(set)

        for axiom in self.ontology.axioms:
            if isinstance(axiom, ObjectPropertyAssertion):
                base = NamedProperty(axiom.property.name)
                for sup in self._property_subsumers.get(base, {base}):
                    if isinstance(sup, InverseProperty):
                        role_pairs[sup.named()].add((axiom.object, axiom.subject))
                        role_pairs[sup].add((axiom.subject, axiom.object))
                    else:
                        role_pairs[sup].add((axiom.subject, axiom.object))
                        role_pairs[sup.inverse()].add((axiom.object, axiom.subject))
            elif isinstance(axiom, ClassAssertion):
                memberships[axiom.individual].add(axiom.cls)

        # Memberships induced by role edges: a p b entails a : ∃p and b : ∃p⁻
        # (closed under the property hierarchy already applied above).
        for prop, pairs in role_pairs.items():
            for subject, _object in pairs:
                memberships[subject].add(ExistentialClass(prop))

        # Close memberships under the class hierarchy.
        for individual, classes in memberships.items():
            closed: Set[BasicClass] = set()
            for cls in classes:
                closed |= self._class_subsumers.get(cls, {cls})
            memberships[individual] = closed
        return memberships, role_pairs

    # -- public reasoning API ------------------------------------------------------------

    def class_subsumers(self, cls: BasicClass) -> FrozenSet[BasicClass]:
        """All basic classes ``B`` with ``cls ⊑* B``."""
        return frozenset(self._class_subsumers.get(cls, {cls}))

    def property_subsumers(self, prop: BasicProperty) -> FrozenSet[BasicProperty]:
        """All basic properties ``r`` with ``prop ⊑* r``."""
        return frozenset(self._property_subsumers.get(prop, {prop}))

    def is_subclass(self, sub: BasicClass, sup: BasicClass) -> bool:
        """True iff ``sub ⊑* sup`` is entailed by the TBox closure."""
        return sup in self._class_subsumers.get(sub, {sub})

    def is_subproperty(self, sub: BasicProperty, sup: BasicProperty) -> bool:
        """True iff ``sub ⊑* sup`` is entailed by the TBox closure."""
        return sup in self._property_subsumers.get(sub, {sub})

    def instances_of(self, cls: BasicClass) -> FrozenSet[Constant]:
        """All named individuals that are certain members of ``cls``."""
        return frozenset(
            individual
            for individual, classes in self._memberships.items()
            if cls in classes
        )

    def member_classes(self, individual: Constant) -> FrozenSet[BasicClass]:
        """All basic classes ``individual`` certainly belongs to."""
        return frozenset(self._memberships.get(individual, set()))

    def role_pairs(self, prop: BasicProperty) -> FrozenSet[Tuple[Constant, Constant]]:
        """All certain pairs of named individuals related by ``prop``."""
        return frozenset(self._role_pairs.get(prop, set()))

    def is_member(self, individual: Constant, cls: BasicClass) -> bool:
        """True iff ``individual`` is a certain member of ``cls``."""
        return cls in self._memberships.get(individual, set())

    # -- consistency ------------------------------------------------------------------------

    def inconsistency_witnesses(self) -> List[str]:
        """Human-readable descriptions of every disjointness violation."""
        witnesses: List[str] = []
        for axiom in self.ontology.axioms:
            if isinstance(axiom, DisjointClasses):
                for individual, classes in self._memberships.items():
                    if axiom.first in classes and axiom.second in classes:
                        witnesses.append(
                            f"{individual} is a member of both {axiom.first} and {axiom.second}"
                        )
            elif isinstance(axiom, DisjointObjectProperties):
                first_pairs = self._role_pairs.get(axiom.first, set())
                second_pairs = self._role_pairs.get(axiom.second, set())
                for pair in first_pairs & second_pairs:
                    witnesses.append(
                        f"{pair[0]}, {pair[1]} related by both {axiom.first} and {axiom.second}"
                    )
        return witnesses

    def is_consistent(self) -> bool:
        """True iff no disjointness axiom is violated."""
        return not self.inconsistency_witnesses()

    # -- triple entailment: the ``G ⊨ t`` of Section 5.2 -----------------------------------------

    def entails_triple(self, triple: Triple) -> bool:
        """``G ⊨ t`` for a triple over URIs, where G represents this ontology.

        An inconsistent ontology entails every triple (standard first-order
        semantics), matching the treatment of ⊥/⊤ in the paper.
        """
        if not self.is_consistent():
            return True
        subject, predicate, object_ = triple.subject, triple.predicate, triple.object
        if not all(isinstance(t, Constant) for t in triple):
            return False

        if predicate == RDF.type:
            if object_ in (OWL.Class, OWL.ObjectProperty, OWL.Restriction, OWL.Thing):
                return self._is_declaration(triple)
            return self.is_member(subject, parse_class_uri(object_))
        if predicate == RDFS.subClassOf:
            return self.is_subclass(parse_class_uri(subject), parse_class_uri(object_))
        if predicate == RDFS.subPropertyOf:
            return self.is_subproperty(
                parse_property_uri(subject), parse_property_uri(object_)
            )
        if predicate == OWL.disjointWith:
            return any(
                isinstance(a, DisjointClasses)
                and {class_uri(a.first), class_uri(a.second)} == {subject, object_}
                for a in self.ontology.axioms
            )
        if predicate == OWL.propertyDisjointWith:
            return any(
                isinstance(a, DisjointObjectProperties)
                and {property_uri(a.first), property_uri(a.second)} == {subject, object_}
                for a in self.ontology.axioms
            )
        if predicate in (OWL.inverseOf, OWL.onProperty, OWL.someValuesFrom):
            return self._is_declaration(triple)
        # Otherwise the predicate should denote a basic property.
        prop = parse_property_uri(predicate)
        return (subject, object_) in self._role_pairs.get(prop, set())

    def _is_declaration(self, triple: Triple) -> bool:
        """Declaration triples hold iff they belong to the RDF representation."""
        from repro.owl.rdf_mapping import ontology_to_graph

        return triple in ontology_to_graph(self.ontology)
