"""The fixed program ``tau_owl2ql_core`` (Section 5.2).

This Datalog∃,¬s,⊥ program encodes the OWL 2 QL core direct-semantics
entailment regime once and for all: it is *fixed*, independent of the user's
graph pattern, and can be included as a library — the key "black box"
property stressed at the end of Section 5.2 and formalised as the
good-candidate notion of Definition 6.3.

The rules are the paper's, with one adjustment needed for the program to be
warded exactly as Definition 6.1 requires (and as the conference version of
the paper states them): the two reflexivity rules read the class/property
*declarations* from the extensional ``triple`` predicate rather than from the
derived ``type`` predicate.  The two formulations are semantically equivalent
because declarations ``(x, rdf:type, owl:Class)`` / ``(x, rdf:type,
owl:ObjectProperty)`` only ever come from the input graph, but reading them
from ``type`` would make the positions ``sp[i]``/``sc[i]`` affected and break
wardedness of the subproperty-propagation rule.
"""

from __future__ import annotations

from functools import lru_cache

from repro.datalog.parser import parse_program
from repro.datalog.program import Program

#: The textual form of the fixed program (kept close to the paper's layout).
OWL2QL_CORE_RULES = """
% --- the active domain predicate C (rule (16)) -------------------------------
triple(?X, ?Y, ?Z) -> C(?X), C(?Y), C(?Z).

% --- storing the different elements of the ontology --------------------------
triple(?X, rdf:type, ?Y) -> type(?X, ?Y).
triple(?X, rdfs:subPropertyOf, ?Y) -> sp(?X, ?Y).
triple(?X, owl:inverseOf, ?Y) -> inv(?X, ?Y).
triple(?X, rdf:type, owl:Restriction),
    triple(?X, owl:onProperty, ?Y),
    triple(?X, owl:someValuesFrom, owl:Thing) -> restriction(?X, ?Y).
triple(?X, rdfs:subClassOf, ?Y) -> sc(?X, ?Y).
triple(?X, owl:disjointWith, ?Y) -> disj(?X, ?Y).
triple(?X, owl:propertyDisjointWith, ?Y) -> disj_property(?X, ?Y).
triple(?X, ?Y, ?Z) -> triple1(?X, ?Y, ?Z).

% --- reasoning about properties ----------------------------------------------
sp(?X1, ?X2), inv(?Y1, ?X1), inv(?Y2, ?X2) -> sp(?Y1, ?Y2).
triple(?X, rdf:type, owl:ObjectProperty) -> sp(?X, ?X).
sp(?X, ?Y), sp(?Y, ?Z) -> sp(?X, ?Z).

% --- reasoning about classes ---------------------------------------------------
sp(?X1, ?X2), restriction(?Y1, ?X1), restriction(?Y2, ?X2) -> sc(?Y1, ?Y2).
triple(?X, rdf:type, owl:Class) -> sc(?X, ?X).
sc(?X, ?Y), sc(?Y, ?Z) -> sc(?X, ?Z).

% --- reasoning about disjointness ------------------------------------------------
disj(?X1, ?X2), sc(?Y1, ?X1), sc(?Y2, ?X2) -> disj(?Y1, ?Y2).
disj_property(?X1, ?X2), sp(?Y1, ?X1), sp(?Y2, ?X2) -> disj_property(?Y1, ?Y2).

% --- reasoning about membership assertions ----------------------------------------
triple1(?X, ?U, ?Y), sp(?U, ?V) -> triple1(?X, ?V, ?Y).
triple1(?X, ?U, ?Y), inv(?U, ?V) -> triple1(?Y, ?V, ?X).
type(?X, ?Y), restriction(?Y, ?U) -> exists ?Z . triple1(?X, ?U, ?Z).
type(?X, ?Y) -> triple1(?X, rdf:type, ?Y).
type(?X, ?Y), sc(?Y, ?Z) -> type(?X, ?Z).
triple1(?X, ?U, ?Y), restriction(?Z, ?U) -> type(?X, ?Z).

% --- negative constraints -------------------------------------------------------------
type(?X, ?Y), type(?X, ?Z), disj(?Y, ?Z) -> false.
triple1(?X, ?U, ?Y), triple1(?X, ?V, ?Y), disj_property(?U, ?V) -> false.
"""


@lru_cache(maxsize=1)
def owl2ql_core_program() -> Program:
    """Parse (once) and return the fixed program ``tau_owl2ql_core``."""
    return parse_program(OWL2QL_CORE_RULES)
