"""OWL 2 QL core: the ontology language of Section 5.

The fragment corresponds to the description logic DL-Lite_R: vocabularies of
classes and properties, basic properties ``p``/``p⁻``, basic classes ``A``/
``∃r``, and the six axiom forms of Table 1.  The package provides the
ontology model, the RDF representation of ontologies (Table 1 plus the
class/property declaration triples of Section 5.2), a DL-Lite_R entailment
oracle (saturation-based), and the paper's fixed Datalog∃,¬s,⊥ program
``tau_owl2ql_core`` encoding the OWL 2 QL core direct-semantics entailment
regime.
"""

from repro.owl.model import (
    NamedClass,
    ExistentialClass,
    NamedProperty,
    InverseProperty,
    BasicClass,
    BasicProperty,
    SubClassOf,
    SubObjectPropertyOf,
    DisjointClasses,
    DisjointObjectProperties,
    ClassAssertion,
    ObjectPropertyAssertion,
    Axiom,
    Ontology,
    some,
    inverse,
)
from repro.owl.rdf_mapping import (
    ontology_to_graph,
    graph_to_ontology,
    class_uri,
    property_uri,
)
from repro.owl.dllite import DLLiteReasoner
from repro.owl.entailment_rules import owl2ql_core_program, OWL2QL_CORE_RULES

__all__ = [
    "NamedClass",
    "ExistentialClass",
    "NamedProperty",
    "InverseProperty",
    "BasicClass",
    "BasicProperty",
    "SubClassOf",
    "SubObjectPropertyOf",
    "DisjointClasses",
    "DisjointObjectProperties",
    "ClassAssertion",
    "ObjectPropertyAssertion",
    "Axiom",
    "Ontology",
    "some",
    "inverse",
    "ontology_to_graph",
    "graph_to_ontology",
    "class_uri",
    "property_uri",
    "DLLiteReasoner",
    "owl2ql_core_program",
    "OWL2QL_CORE_RULES",
]
