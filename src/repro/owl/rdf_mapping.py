"""Storing OWL 2 QL core ontologies as RDF graphs (Table 1 and Section 5.2).

URI conventions
---------------

The paper treats ``p``, ``p⁻``, ``∃p`` and ``∃p⁻`` as four pairwise distinct
URIs.  This module fixes the (reversible) naming convention:

* a property name ``p`` is the URI ``p``;
* its inverse ``p⁻`` is the URI ``p-`` (trailing dash);
* the restriction ``∃r`` is the URI ``some_r`` (so ``∃p⁻`` is ``some_p-``).

Declarations (Section 5.2)
--------------------------

For every class ``a``: ``(a, rdf:type, owl:Class)``.  For every property
``p``: the twelve triples declaring ``p``/``p⁻`` as object properties, the
mutual ``owl:inverseOf`` links, and ``∃p``/``∃p⁻`` as restrictions on
``p``/``p⁻`` with ``owl:someValuesFrom owl:Thing`` that are also classes.

Axioms (Table 1)
----------------

==============================  =========================================
OWL 2 QL core axiom             RDF triple
==============================  =========================================
SubClassOf(b1, b2)              (b1, rdfs:subClassOf, b2)
SubObjectPropertyOf(r1, r2)     (r1, rdfs:subPropertyOf, r2)
DisjointClasses(b1, b2)         (b1, owl:disjointWith, b2)
DisjointObjectProperties(r1,r2) (r1, owl:propertyDisjointWith, r2)
ClassAssertion(b, a)            (a, rdf:type, b)
ObjectPropertyAssertion(p,a,b)  (a, p, b)
==============================  =========================================
"""

from __future__ import annotations

from typing import List, Union

from repro.datalog.terms import Constant
from repro.owl.model import (
    Axiom,
    BasicClass,
    BasicProperty,
    ClassAssertion,
    DisjointClasses,
    DisjointObjectProperties,
    ExistentialClass,
    InverseProperty,
    NamedClass,
    NamedProperty,
    ObjectPropertyAssertion,
    Ontology,
    SubClassOf,
    SubObjectPropertyOf,
)
from repro.rdf.graph import RDFGraph, Triple
from repro.rdf.namespaces import OWL, RDF, RDFS

#: Prefix of the URI representing ``∃r``.
SOME_PREFIX = "some_"
#: Suffix of the URI representing ``p⁻``.
INVERSE_SUFFIX = "-"

_DECLARATION_TYPES = {OWL.Class, OWL.ObjectProperty, OWL.Restriction, OWL.Thing}
_VOCAB_PREDICATES = {
    RDFS.subClassOf,
    RDFS.subPropertyOf,
    OWL.disjointWith,
    OWL.propertyDisjointWith,
    OWL.inverseOf,
    OWL.onProperty,
    OWL.someValuesFrom,
}


# ---------------------------------------------------------------------------
# URI encoding
# ---------------------------------------------------------------------------


def property_uri(prop: BasicProperty) -> Constant:
    """The URI of a basic property (``p`` or ``p-``)."""
    if isinstance(prop, InverseProperty):
        return Constant(f"{prop.name}{INVERSE_SUFFIX}")
    return Constant(prop.name)


def class_uri(cls: BasicClass) -> Constant:
    """The URI of a basic class (``A`` or ``some_r``)."""
    if isinstance(cls, ExistentialClass):
        return Constant(f"{SOME_PREFIX}{property_uri(cls.property).value}")
    return Constant(cls.name)


def parse_property_uri(uri: Union[Constant, str]) -> BasicProperty:
    """The basic property denoted by a URI (inverse of :func:`property_uri`)."""
    value = uri.value if isinstance(uri, Constant) else uri
    if value.endswith(INVERSE_SUFFIX):
        return InverseProperty(value[: -len(INVERSE_SUFFIX)])
    return NamedProperty(value)


def parse_class_uri(uri: Union[Constant, str]) -> BasicClass:
    """The basic class denoted by a URI (inverse of :func:`class_uri`)."""
    value = uri.value if isinstance(uri, Constant) else uri
    if value.startswith(SOME_PREFIX):
        return ExistentialClass(parse_property_uri(value[len(SOME_PREFIX):]))
    return NamedClass(value)


# ---------------------------------------------------------------------------
# Ontology -> RDF
# ---------------------------------------------------------------------------


def _declaration_triples(ontology: Ontology) -> List[Triple]:
    triples: List[Triple] = []
    for cls in sorted(ontology.classes, key=lambda c: c.name):
        triples.append(Triple(Constant(cls.name), RDF.type, OWL.Class))
    for prop in sorted(ontology.properties, key=lambda p: p.name):
        direct = property_uri(prop)
        inverse = property_uri(prop.inverse())
        some_direct = class_uri(ExistentialClass(prop))
        some_inverse = class_uri(ExistentialClass(prop.inverse()))
        triples.extend(
            [
                Triple(direct, RDF.type, OWL.ObjectProperty),
                Triple(inverse, RDF.type, OWL.ObjectProperty),
                Triple(direct, OWL.inverseOf, inverse),
                Triple(inverse, OWL.inverseOf, direct),
                Triple(some_direct, RDF.type, OWL.Restriction),
                Triple(some_inverse, RDF.type, OWL.Restriction),
                Triple(some_direct, OWL.onProperty, direct),
                Triple(some_inverse, OWL.onProperty, inverse),
                Triple(some_direct, OWL.someValuesFrom, OWL.Thing),
                Triple(some_inverse, OWL.someValuesFrom, OWL.Thing),
                Triple(some_direct, RDF.type, OWL.Class),
                Triple(some_inverse, RDF.type, OWL.Class),
            ]
        )
    return triples


def axiom_to_triple(axiom: Axiom) -> Triple:
    """The Table 1 translation of a single axiom."""
    if isinstance(axiom, SubClassOf):
        return Triple(class_uri(axiom.sub), RDFS.subClassOf, class_uri(axiom.sup))
    if isinstance(axiom, SubObjectPropertyOf):
        return Triple(property_uri(axiom.sub), RDFS.subPropertyOf, property_uri(axiom.sup))
    if isinstance(axiom, DisjointClasses):
        return Triple(class_uri(axiom.first), OWL.disjointWith, class_uri(axiom.second))
    if isinstance(axiom, DisjointObjectProperties):
        return Triple(
            property_uri(axiom.first), OWL.propertyDisjointWith, property_uri(axiom.second)
        )
    if isinstance(axiom, ClassAssertion):
        return Triple(axiom.individual, RDF.type, class_uri(axiom.cls))
    if isinstance(axiom, ObjectPropertyAssertion):
        return Triple(axiom.subject, property_uri(axiom.property), axiom.object)
    raise TypeError(f"unknown axiom {axiom!r}")


def ontology_to_graph(ontology: Ontology, include_declarations: bool = True) -> RDFGraph:
    """The RDF graph representing an OWL 2 QL core ontology."""
    graph = RDFGraph()
    if include_declarations:
        graph.add_all(_declaration_triples(ontology))
    graph.add_all(axiom_to_triple(axiom) for axiom in ontology.axioms)
    return graph


# ---------------------------------------------------------------------------
# RDF -> Ontology
# ---------------------------------------------------------------------------


def graph_to_ontology(graph: RDFGraph) -> Ontology:
    """Read an OWL 2 QL core ontology back from its RDF representation.

    The function is the left inverse of :func:`ontology_to_graph`: for every
    ontology ``O``, ``graph_to_ontology(ontology_to_graph(O))`` contains
    exactly the axioms of ``O`` (declaration triples carry no axioms).
    """
    ontology = Ontology()

    # Vocabulary from declarations.
    for triple in graph.triples(predicate=RDF.type, object=OWL.ObjectProperty):
        uri = triple.subject
        if isinstance(uri, Constant) and not uri.value.endswith(INVERSE_SUFFIX):
            ontology._properties.add(NamedProperty(uri.value))
    for triple in graph.triples(predicate=RDF.type, object=OWL.Class):
        uri = triple.subject
        if isinstance(uri, Constant) and not uri.value.startswith(SOME_PREFIX):
            ontology._classes.add(NamedClass(uri.value))

    property_uris = {property_uri(p) for p in ontology.properties} | {
        property_uri(p.inverse()) for p in ontology.properties
    }

    for triple in graph:
        subject, predicate, object_ = triple.subject, triple.predicate, triple.object
        if not all(isinstance(t, Constant) for t in triple):
            continue
        if predicate == RDFS.subClassOf:
            ontology.add(SubClassOf(parse_class_uri(subject), parse_class_uri(object_)))
        elif predicate == RDFS.subPropertyOf:
            ontology.add(
                SubObjectPropertyOf(parse_property_uri(subject), parse_property_uri(object_))
            )
        elif predicate == OWL.disjointWith:
            ontology.add(DisjointClasses(parse_class_uri(subject), parse_class_uri(object_)))
        elif predicate == OWL.propertyDisjointWith:
            ontology.add(
                DisjointObjectProperties(
                    parse_property_uri(subject), parse_property_uri(object_)
                )
            )
        elif predicate == RDF.type:
            if object_ in _DECLARATION_TYPES:
                continue
            ontology.add(ClassAssertion(parse_class_uri(object_), subject))
        elif predicate in _VOCAB_PREDICATES:
            continue
        elif predicate in property_uris:
            prop = parse_property_uri(predicate)
            if isinstance(prop, InverseProperty):
                ontology.add(
                    ObjectPropertyAssertion(prop.named(), object_, subject)
                )
            else:
                ontology.add(ObjectPropertyAssertion(prop, subject, object_))
        else:
            # A property assertion over an undeclared property: register it.
            ontology.add(ObjectPropertyAssertion(NamedProperty(predicate.value), subject, object_))
    return ontology
