"""The guardedness hierarchy and wardedness (Sections 4.1, 4.2, 6.1, 6.2, 6.4).

All the syntactic classes of Datalog∃ programs that the paper uses are
implemented here, each against the reference program ``ex(Pi)+`` (the rules
without negated atoms and without constraints), as prescribed in Section 4.2:

* **guarded** — some positive body atom contains *all* body variables;
* **weakly guarded** — some body atom contains all *harmful* body variables;
* **frontier-guarded** — some body atom contains all *frontier* variables
  (body variables propagated to the head);
* **weakly-frontier-guarded** — some body atom contains all *dangerous* body
  variables (this is TriQ 1.0's underlying class, Definition 4.2);
* **nearly frontier-guarded** — every rule is frontier-guarded or all its body
  variables are harmless (Section 6.2);
* **warded** — dangerous variables are confined to a single *ward* which may
  share only harmless variables with the rest of the body (Section 6.1, the
  basis of TriQ-Lite 1.0);
* **warded with minimal interaction** — the mildest relaxation of wardedness
  considered in Section 6.4: the ward may leak at most one harmful variable,
  at most once, into an otherwise-harmless atom.

The helper :func:`has_grounded_negation` checks the ``¬sg`` condition of
Definition 6.1 (negated atoms mention constants and harmless variables only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.analysis.affected import affected_positions
from repro.analysis.variables import VariableClassification, classify_rule_variables
from repro.datalog.atoms import Atom, Position
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable


def _reference(program: Program) -> Program:
    """``ex(Pi)+``: drop constraints and negated atoms before the analysis."""
    return program.ex().positive_program()


def _classifications(
    program: Program,
) -> Tuple[Program, FrozenSet[Position], Dict[Rule, VariableClassification]]:
    reference = _reference(program)
    affected = affected_positions(reference)
    by_rule = {
        rule: classify_rule_variables(rule, reference, affected)
        for rule in reference.rules
    }
    return reference, affected, by_rule


# ---------------------------------------------------------------------------
# Per-rule guard search
# ---------------------------------------------------------------------------


def find_guard(rule: Rule) -> Optional[Atom]:
    """A positive body atom containing every body variable, if any."""
    body_vars = rule.body_variables
    for atom in rule.body_positive:
        if body_vars <= atom.variables:
            return atom
    return None


def find_weak_guard(rule: Rule, classification: VariableClassification) -> Optional[Atom]:
    """A body atom containing every harmful body variable, if any."""
    for atom in rule.body_positive:
        if classification.harmful <= atom.variables:
            return atom
    return None


def find_frontier_guard(rule: Rule) -> Optional[Atom]:
    """A body atom containing every frontier variable, if any."""
    frontier = rule.frontier
    for atom in rule.body_positive:
        if frontier <= atom.variables:
            return atom
    return None


def find_weak_frontier_guard(
    rule: Rule, classification: VariableClassification
) -> Optional[Atom]:
    """A body atom containing every dangerous body variable, if any."""
    for atom in rule.body_positive:
        if classification.dangerous <= atom.variables:
            return atom
    return None


def find_ward(rule: Rule, classification: VariableClassification) -> Optional[Atom]:
    """A *ward* for the rule (Section 6.1), if any.

    A ward is a body atom ``a`` such that (1) every dangerous variable occurs
    in ``a`` and (2) ``a`` shares only harmless variables with the rest of the
    body.  Rules without dangerous variables need no ward; this function then
    returns ``None`` and callers must treat that case as trivially warded.
    """
    if not classification.dangerous:
        return None
    for atom in rule.body_positive:
        if not classification.dangerous <= atom.variables:
            continue
        others = [a for a in rule.body_positive if a is not atom]
        shared = atom.variables & frozenset(v for a in others for v in a.variables)
        if shared <= classification.harmless:
            return atom
    return None


def find_minimal_interaction_ward(
    rule: Rule, classification: VariableClassification
) -> Optional[Atom]:
    """A ward in the *minimal interaction* sense of Section 6.4, if any.

    The relaxation: the candidate ward may share at most one harmful variable
    ``?V`` with the rest of the body, ``?V`` may occur at most once outside the
    ward, and the atom hosting that extra occurrence must otherwise contain
    only constants and harmless variables.
    """
    if not classification.dangerous:
        return None
    for atom in rule.body_positive:
        if not classification.dangerous <= atom.variables:
            continue
        others = [a for a in rule.body_positive if a is not atom]
        other_vars = frozenset(v for a in others for v in a.variables)
        leaked = (atom.variables & other_vars) - classification.harmless
        if len(leaked) > 1:
            continue
        if not leaked:
            return atom
        leaked_variable = next(iter(leaked))
        occurrences_outside = sum(
            1 for a in others for term in a.terms if term == leaked_variable
        )
        if occurrences_outside > 1:
            continue
        hosts = [a for a in others if leaked_variable in a.variables]
        if all(
            (a.variables - {leaked_variable}) <= classification.harmless for a in hosts
        ):
            return atom
    return None


# ---------------------------------------------------------------------------
# Program-level predicates
# ---------------------------------------------------------------------------


def is_guarded(program: Program) -> bool:
    """Every rule of ``ex(Pi)+`` has a guard containing all body variables."""
    reference = _reference(program)
    return all(find_guard(rule) is not None for rule in reference.rules)


def is_weakly_guarded(program: Program) -> bool:
    """Every rule has a body atom guarding all harmful variables."""
    _, _, by_rule = _classifications(program)
    return all(
        find_weak_guard(rule, classification) is not None
        for rule, classification in by_rule.items()
    )


def is_frontier_guarded(program: Program) -> bool:
    """Every rule has a body atom guarding all frontier variables."""
    reference = _reference(program)
    return all(find_frontier_guard(rule) is not None for rule in reference.rules)


def is_weakly_frontier_guarded(program: Program) -> bool:
    """Every rule has a body atom guarding all dangerous variables (TriQ 1.0)."""
    _, _, by_rule = _classifications(program)
    return all(
        not classification.dangerous
        or find_weak_frontier_guard(rule, classification) is not None
        for rule, classification in by_rule.items()
    )


def is_nearly_frontier_guarded(program: Program) -> bool:
    """Every rule is frontier-guarded, or all its body variables are harmless."""
    _, _, by_rule = _classifications(program)
    for rule, classification in by_rule.items():
        if find_frontier_guard(rule) is not None:
            continue
        if rule.body_variables <= classification.harmless:
            continue
        return False
    return True


def is_warded(program: Program) -> bool:
    """Every rule with dangerous variables has a ward (Section 6.1)."""
    _, _, by_rule = _classifications(program)
    for rule, classification in by_rule.items():
        if not classification.dangerous:
            continue
        if find_ward(rule, classification) is None:
            return False
    return True


def is_warded_with_minimal_interaction(program: Program) -> bool:
    """Every rule satisfies the relaxed wardedness of Section 6.4."""
    _, _, by_rule = _classifications(program)
    for rule, classification in by_rule.items():
        if not classification.dangerous:
            continue
        if find_minimal_interaction_ward(rule, classification) is None:
            return False
    return True


def has_grounded_negation(program: Program) -> bool:
    """The ``¬sg`` condition of Definition 6.1.

    Every term of every negated body atom must be a constant or a variable
    that is harmless w.r.t. ``ex(Pi)+`` — negation is applied only to values
    that are guaranteed to be database constants.
    """
    reference = _reference(program)
    affected = affected_positions(reference)
    # Negative atoms live on the original (negation-carrying) rules, but the
    # classification is w.r.t. the positive reference; classify the positive
    # part of each original rule.
    for rule in program.ex().rules:
        if not rule.body_negative:
            continue
        classification = classify_rule_variables(rule.positive_part(), reference, affected)
        for atom in rule.body_negative:
            for term in atom.terms:
                if isinstance(term, Constant):
                    continue
                if isinstance(term, Variable) and classification.is_harmless(term):
                    continue
                return False
    return True


# ---------------------------------------------------------------------------
# Full classification report
# ---------------------------------------------------------------------------


@dataclass
class GuardReport:
    """A one-stop syntactic classification of a program.

    ``violations`` maps class names to human-readable explanations of the
    first rule found violating the class — handy in error messages raised by
    :class:`repro.core.TriQQuery` and :class:`repro.core.TriQLiteQuery`.
    """

    guarded: bool
    weakly_guarded: bool
    frontier_guarded: bool
    weakly_frontier_guarded: bool
    nearly_frontier_guarded: bool
    warded: bool
    warded_minimal_interaction: bool
    grounded_negation: bool
    stratified: bool
    violations: Dict[str, str] = field(default_factory=dict)

    @property
    def is_triq(self) -> bool:
        """Membership in TriQ 1.0 (Definition 4.2)."""
        return self.stratified and self.weakly_frontier_guarded

    @property
    def is_triq_lite(self) -> bool:
        """Membership in TriQ-Lite 1.0 (Definition 6.1)."""
        return self.stratified and self.warded and self.grounded_negation


_CLASSIFY_CACHE: Dict[Program, GuardReport] = {}
_CLASSIFY_CACHE_LIMIT = 512


def classify_program(program: Program) -> GuardReport:
    """Classify ``program`` against every syntactic class at once.

    Reports are cached by program content (programs are immutable by
    convention), so validating the same translated query repeatedly — the
    common shape in the SPARQL entailment pipeline — analyses it once.
    """
    cached = _CLASSIFY_CACHE.get(program)
    if cached is not None:
        return cached
    report = _classify_program(program)
    if len(_CLASSIFY_CACHE) >= _CLASSIFY_CACHE_LIMIT:
        _CLASSIFY_CACHE.clear()
    _CLASSIFY_CACHE[program] = report
    return report


def _classify_program(program: Program) -> GuardReport:
    from repro.datalog.stratification import is_stratified

    reference, affected, by_rule = _classifications(program)
    violations: Dict[str, str] = {}

    def record(name: str, rule: Rule, reason: str) -> None:
        if name not in violations:
            violations[name] = f"rule '{rule}': {reason}"

    guarded = True
    weakly_guarded = True
    frontier_guarded = True
    weakly_frontier_guarded = True
    nearly_frontier_guarded = True
    warded = True
    warded_minimal = True

    for rule, classification in by_rule.items():
        if find_guard(rule) is None:
            guarded = False
            record("guarded", rule, "no body atom contains all body variables")
        if find_weak_guard(rule, classification) is None:
            weakly_guarded = False
            record(
                "weakly_guarded",
                rule,
                f"no body atom contains the harmful variables {sorted(map(str, classification.harmful))}",
            )
        if find_frontier_guard(rule) is None:
            frontier_guarded = False
            record("frontier_guarded", rule, "no body atom contains the frontier")
            if not (rule.body_variables <= classification.harmless):
                nearly_frontier_guarded = False
                record(
                    "nearly_frontier_guarded",
                    rule,
                    "not frontier-guarded and some body variable is harmful",
                )
        if classification.dangerous:
            if find_weak_frontier_guard(rule, classification) is None:
                weakly_frontier_guarded = False
                record(
                    "weakly_frontier_guarded",
                    rule,
                    f"no body atom contains the dangerous variables "
                    f"{sorted(map(str, classification.dangerous))}",
                )
            if find_ward(rule, classification) is None:
                warded = False
                record(
                    "warded",
                    rule,
                    "no body atom both contains the dangerous variables and shares "
                    "only harmless variables with the rest of the body",
                )
            if find_minimal_interaction_ward(rule, classification) is None:
                warded_minimal = False
                record(
                    "warded_minimal_interaction",
                    rule,
                    "no body atom satisfies the minimal-interaction relaxation",
                )

    grounded = has_grounded_negation(program)
    if not grounded and "grounded_negation" not in violations:
        violations["grounded_negation"] = (
            "some negated body atom mentions a harmful variable"
        )
    stratified = is_stratified(program)
    if not stratified:
        violations["stratified"] = "negation occurs inside a recursive cycle"

    return GuardReport(
        guarded=guarded,
        weakly_guarded=weakly_guarded,
        frontier_guarded=frontier_guarded,
        weakly_frontier_guarded=weakly_frontier_guarded,
        nearly_frontier_guarded=nearly_frontier_guarded,
        warded=warded,
        warded_minimal_interaction=warded_minimal,
        grounded_negation=grounded,
        stratified=stratified,
        violations=violations,
    )
