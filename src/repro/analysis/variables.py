"""Harmless / harmful / dangerous body variables (Section 4.1).

Fix a Datalog∃ program ``Pi``, a rule ``rho`` of ``Pi`` and a body variable
``?V`` of ``rho``:

* ``?V`` is **Pi-harmless** if at least one of its occurrences in the body is
  at a position of ``nonaffected(Pi)``;
* ``?V`` is **Pi-harmful** if it is not Pi-harmless (every body occurrence is
  at an affected position — the chase may bind it to a labelled null);
* ``?V`` is **Pi-dangerous** if it is Pi-harmful and it is propagated to the
  rule head.

The classification is always computed with respect to the *positive*,
existential part of a program (``ex(Pi)+`` in the paper); pass that program as
the ``reference`` argument when classifying rules of a program with negation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.analysis.affected import affected_positions
from repro.datalog.atoms import Position
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable


@dataclass(frozen=True)
class VariableClassification:
    """The three-way classification of the body variables of a single rule."""

    harmless: FrozenSet[Variable]
    harmful: FrozenSet[Variable]
    dangerous: FrozenSet[Variable]

    def is_harmless(self, variable: Variable) -> bool:
        """Return whether ``variable`` occurs in no affected position."""
        return variable in self.harmless

    def is_harmful(self, variable: Variable) -> bool:
        """Return whether ``variable`` occurs in some affected position."""
        return variable in self.harmful

    def is_dangerous(self, variable: Variable) -> bool:
        """Return whether ``variable`` is harmful *and* propagated to the head."""
        return variable in self.dangerous


def classify_rule_variables(
    rule: Rule,
    reference: Program,
    affected: Optional[FrozenSet[Position]] = None,
) -> VariableClassification:
    """Classify the positive-body variables of ``rule`` relative to ``reference``.

    ``reference`` should be the program ``ex(Pi)+`` whose affected positions
    drive the classification; ``affected`` may be supplied to avoid
    recomputing :func:`affected_positions` for every rule of a large program.
    """
    if affected is None:
        affected = affected_positions(reference)

    harmless = set()
    harmful = set()
    dangerous = set()
    head_variables = rule.head_variables

    for variable in rule.positive_body_variables:
        occurrences = [
            Position(atom.predicate, index + 1)
            for atom in rule.body_positive
            for index, term in enumerate(atom.terms)
            if term == variable
        ]
        if any(position not in affected for position in occurrences):
            harmless.add(variable)
        else:
            harmful.add(variable)
            if variable in head_variables:
                dangerous.add(variable)

    return VariableClassification(
        harmless=frozenset(harmless),
        harmful=frozenset(harmful),
        dangerous=frozenset(dangerous),
    )


def harmless_variables(rule: Rule, reference: Program) -> FrozenSet[Variable]:
    """``harmless(rho, Pi)``."""
    return classify_rule_variables(rule, reference).harmless


def harmful_variables(rule: Rule, reference: Program) -> FrozenSet[Variable]:
    """``harmful(rho, Pi)``."""
    return classify_rule_variables(rule, reference).harmful


def dangerous_variables(rule: Rule, reference: Program) -> FrozenSet[Variable]:
    """``dangerous(rho, Pi)``."""
    return classify_rule_variables(rule, reference).dangerous
