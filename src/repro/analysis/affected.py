"""Affected positions of a Datalog∃ program (Section 4.1).

A position ``p[i]`` of ``sch(Pi)`` is *affected* when a labelled null may be
propagated into it during the chase:

1. if some rule has an existentially quantified variable at position ``p[i]``
   in its head, then ``p[i]`` is affected; and
2. if some rule has a variable ``?V`` that occurs in the body *only* at
   affected positions and ``?V`` occurs in the head at position ``p[i]``,
   then ``p[i]`` is affected.

The analysis is a straightforward least fixpoint over the program's rules and
follows Example 4.1 of the paper verbatim (the example is reproduced in the
test suite).
"""

from __future__ import annotations

from typing import FrozenSet, Set

from repro.datalog.atoms import Position
from repro.datalog.program import Program
from repro.datalog.terms import Variable


def affected_positions(program: Program) -> FrozenSet[Position]:
    """``affected(Pi)``: the set of positions that may host labelled nulls.

    Only the *positive* parts of rules are inspected, matching the convention
    of Section 4.2 (``ex(Pi)+``); callers should pass
    ``program.positive_program()`` if they want that convention applied to a
    program that still carries negation or constraints — or simply pass the
    full program, since negative atoms and constraints never contribute
    affected positions anyway (their predicates only gain affected positions
    through rule heads, which are inspected here).
    """
    affected: Set[Position] = set()

    # Base case: positions of existentially quantified head variables.
    for rule in program.rules:
        for head_atom in rule.head:
            for index, term in enumerate(head_atom.terms):
                if isinstance(term, Variable) and term in rule.existential_variables:
                    affected.add(Position(head_atom.predicate, index + 1))

    # Inductive case: propagation of body variables occurring only at affected
    # positions into head positions.
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            for variable in rule.positive_body_variables:
                occurrences = [
                    Position(atom.predicate, index + 1)
                    for atom in rule.body_positive
                    for index, term in enumerate(atom.terms)
                    if term == variable
                ]
                if not occurrences or not all(p in affected for p in occurrences):
                    continue
                for head_atom in rule.head:
                    for index, term in enumerate(head_atom.terms):
                        if term == variable:
                            position = Position(head_atom.predicate, index + 1)
                            if position not in affected:
                                affected.add(position)
                                changed = True
    return frozenset(affected)


def nonaffected_positions(program: Program) -> FrozenSet[Position]:
    """``nonaffected(Pi) = pos(Pi) \\ affected(Pi)``."""
    return frozenset(program.positions()) - affected_positions(program)
