"""Ground connections and the unbounded ground-connection property (Section 6.2).

Given an instance ``I`` and a labelled null ``z`` occurring in it, the *ground
connection* of ``z`` is the set of constants that co-occur with ``z`` in some
atom of ``I``::

    gc(z, I) = { c in U | exists a in I with {c, z} subseteq dom(a) }

For a program ``Pi`` and a family of databases ``(D_n)``, the function
``mgc(n)`` is the maximum ``|gc(z, Pi(D_n))|`` over the nulls of ``Pi(D_n)``
(0 when no null occurs).  A Datalog∃ language has the **unbounded
ground-connection property (UGCP)** when some program and database family make
``mgc`` unbounded.  Lemma 6.5 shows the UGCP is necessary for a language to be
a *good candidate* for encoding the OWL 2 QL core entailment regime, and
Lemma 6.6 shows nearly frontier-guarded Datalog∃ lacks it — this module makes
both lemmas measurable (see ``benchmarks/bench_lemma65_ugcp.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.datalog.chase import ChaseEngine
from repro.datalog.database import Database, Instance
from repro.datalog.program import Program
from repro.datalog.terms import Constant, Null


def ground_connection(null: Null, instance: Instance) -> frozenset:
    """``gc(z, I)``: constants sharing an atom with ``null`` in ``instance``."""
    constants = set()
    for atom in instance:
        if null in atom.terms:
            constants.update(t for t in atom.terms if isinstance(t, Constant))
    return frozenset(constants)


def max_ground_connection(instance: Instance) -> int:
    """``max_z |gc(z, I)|`` over the nulls of the instance (0 if no nulls)."""
    best = 0
    # Single pass: accumulate the constant set per null.
    per_null: Dict[Null, set] = {}
    for atom in instance:
        nulls = [t for t in atom.terms if isinstance(t, Null)]
        if not nulls:
            continue
        constants = [t for t in atom.terms if isinstance(t, Constant)]
        for null in nulls:
            per_null.setdefault(null, set()).update(constants)
    for constants in per_null.values():
        best = max(best, len(constants))
    return best


def mgc_series(
    program: Program,
    database_family: Callable[[int], Database],
    sizes: Sequence[int],
    chase_engine: Optional[ChaseEngine] = None,
) -> List[Tuple[int, int]]:
    """Evaluate ``mgc(n)`` for each ``n`` in ``sizes``.

    ``database_family`` maps the parameter ``n`` to the database ``D_n``; the
    program is materialised with the (restricted) chase and the maximum ground
    connection of the result is recorded.  The returned list of ``(n, mgc(n))``
    pairs is what the Lemma 6.5 benchmark plots: an unbounded series for
    warded Datalog∃ encodings, a constant one for nearly frontier-guarded
    programs (Lemma 6.6).
    """
    engine = chase_engine or ChaseEngine(max_steps=500_000, on_limit="stop")
    series: List[Tuple[int, int]] = []
    for n in sizes:
        database = database_family(n)
        result = engine.chase(database, program)
        series.append((n, max_ground_connection(result.instance)))
    return series


def is_series_bounded(series: Sequence[Tuple[int, int]], tolerance: int = 0) -> bool:
    """Heuristic check that an ``mgc`` series is O(1).

    The series counts as bounded when its last value does not exceed its first
    value by more than ``tolerance``.  This is only a diagnostic for the
    benchmark report; the formal statements are Lemmas 6.5 and 6.6.
    """
    if not series:
        return True
    first = series[0][1]
    last = series[-1][1]
    return last - first <= tolerance
