"""Static analysis of Datalog∃ programs.

Implements the position/variable machinery of Sections 4.1, 6.1, 6.2 and 6.4
of the paper: affected positions, harmless/harmful/dangerous body variables,
the guardedness hierarchy (guarded, weakly-guarded, frontier-guarded,
weakly-frontier-guarded, nearly frontier-guarded, warded, warded with minimal
interaction), grounded negation, and the unbounded ground-connection property
(UGCP) analysis.
"""

from repro.analysis.affected import affected_positions, nonaffected_positions
from repro.analysis.variables import (
    VariableClassification,
    classify_rule_variables,
    harmless_variables,
    harmful_variables,
    dangerous_variables,
)
from repro.analysis.guards import (
    GuardReport,
    is_guarded,
    is_weakly_guarded,
    is_frontier_guarded,
    is_weakly_frontier_guarded,
    is_nearly_frontier_guarded,
    is_warded,
    is_warded_with_minimal_interaction,
    has_grounded_negation,
    find_ward,
    find_weak_guard,
    classify_program,
)
from repro.analysis.ugcp import ground_connection, max_ground_connection, mgc_series

__all__ = [
    "affected_positions",
    "nonaffected_positions",
    "VariableClassification",
    "classify_rule_variables",
    "harmless_variables",
    "harmful_variables",
    "dangerous_variables",
    "GuardReport",
    "is_guarded",
    "is_weakly_guarded",
    "is_frontier_guarded",
    "is_weakly_frontier_guarded",
    "is_nearly_frontier_guarded",
    "is_warded",
    "is_warded_with_minimal_interaction",
    "has_grounded_negation",
    "find_ward",
    "find_weak_guard",
    "classify_program",
    "ground_connection",
    "max_ground_connection",
    "mgc_series",
]
