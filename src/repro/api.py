"""The programmatic facade: :class:`EngineConfig` + :class:`Engine`.

Historically the engine was configured through environment variables
(``REPRO_ENGINE_MODE``, ``REPRO_ENGINE_PARALLEL``,
``REPRO_PARALLEL_THRESHOLD``) read at import time — a footgun for any caller
that imported submodules before setting them.  This module replaces that
with explicit configuration::

    import repro

    engine = repro.Engine(repro.EngineConfig(mode="parallel", workers=4))
    answers = engine.evaluate(program_text, "connected", database)
    with engine.delta_session(program_text) as session:
        session.push(facts)

The environment variables still work — they are now *lazy fallbacks*, read
at the first evaluation that needs them and only when nothing was configured
programmatically (see :mod:`repro.engine.mode`).  The legacy module-level
setters (:func:`repro.engine.set_execution_mode` and friends) remain as thin
shims over the same state the facade writes; new code should construct an
:class:`Engine`.

One process, one engine configuration: the execution mode is process-global
state (worker pools, plan caches, and the interning table are shared), so
:class:`Engine` is a configuration *scope*, not an isolated instance —
constructing a second Engine with a different config reconfigures the
process, exactly like the env vars always did.  The class exists so that the
configuration is explicit, inspectable, and independent of import order.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Iterable, Optional, Union

from repro.core.evaluation import evaluate as _evaluate
from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_program
from repro.datalog.program import Program
from repro.datalog.semantics import evaluate_program
from repro.engine import index as _index
from repro.engine import mode as _mode
from repro.engine import parallel as _parallel
from repro.engine.plancache import load_plan_cache, save_plan_cache

_VALID_MODES = (None, "row", "batch", "parallel")


@dataclass(frozen=True)
class EngineConfig:
    """Everything the env vars used to configure, as one explicit value.

    ``None`` for any field means "keep the current setting" — which, when
    nothing was ever set, means the documented lazy env-var fallback.

    ========================  ==============================  ================
    field                     replaces                        default
    ========================  ==============================  ================
    ``mode``                  ``REPRO_ENGINE_MODE``           ``"batch"``
    ``workers``               ``REPRO_ENGINE_PARALLEL``       ``2``
    ``parallel_threshold``    ``REPRO_PARALLEL_THRESHOLD``    ``4096``
    ``shm_result_min``        ``REPRO_SHM_RESULT_MIN``        ``0``
    ``compact_ratio``         ``REPRO_COMPACT_RATIO``         ``0.5``
    ``plan_cache``            —                               no persistence
    ========================  ==============================  ================

    ``shm_result_min`` is the match-result payload size (bytes) below which
    parallel workers use the result pipe instead of their pooled
    shared-memory segment; workers resolve it from their fork-inherited
    environment, so set it before the pool first spawns.  ``compact_ratio``
    is the tombstone fraction above which :meth:`DeltaSession.retract
    <repro.engine.incremental.DeltaSession.retract>` compacts a predicate's
    lanes (1.0 or higher disables compaction).

    ``plan_cache`` is a filesystem path: compiled join plans are staged from
    it when the engine is constructed (missing file = cold start) and written
    back by :meth:`Engine.save_plan_cache`.
    """

    mode: Optional[str] = None
    workers: Optional[int] = None
    parallel_threshold: Optional[int] = None
    shm_result_min: Optional[int] = None
    compact_ratio: Optional[float] = None
    plan_cache: Optional[str] = None

    def __post_init__(self):
        if self.mode not in _VALID_MODES:
            raise ValueError(
                f"mode must be one of {_VALID_MODES[1:]} or None, got {self.mode!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.parallel_threshold is not None and self.parallel_threshold < 0:
            raise ValueError(
                f"parallel_threshold must be >= 0, got {self.parallel_threshold}"
            )
        if self.shm_result_min is not None and self.shm_result_min < 0:
            raise ValueError(
                f"shm_result_min must be >= 0, got {self.shm_result_min}"
            )
        if self.compact_ratio is not None and self.compact_ratio <= 0:
            raise ValueError(
                f"compact_ratio must be positive, got {self.compact_ratio}"
            )

    @classmethod
    def from_env(cls, environ=None) -> "EngineConfig":
        """Snapshot the legacy environment variables into an explicit config.

        The migration helper for code moving off env-var configuration:
        ``Engine(EngineConfig.from_env())`` pins exactly what the lazy
        fallback would have resolved, immune to later ``os.environ`` edits.
        """
        environ = os.environ if environ is None else environ
        workers_raw = environ.get("REPRO_ENGINE_PARALLEL") or None
        workers = int(workers_raw) if workers_raw else None
        mode = environ.get("REPRO_ENGINE_MODE") or None
        if mode is None and workers is not None:
            mode = "parallel"
        threshold_raw = environ.get("REPRO_PARALLEL_THRESHOLD") or None
        threshold = int(threshold_raw) if threshold_raw else None
        result_min_raw = environ.get("REPRO_SHM_RESULT_MIN") or None
        result_min = int(result_min_raw) if result_min_raw else None
        ratio_raw = environ.get("REPRO_COMPACT_RATIO") or None
        ratio = float(ratio_raw) if ratio_raw else None
        return cls(
            mode=mode,
            workers=workers,
            parallel_threshold=threshold,
            shm_result_min=result_min,
            compact_ratio=ratio,
        )

    def with_overrides(self, **changes) -> "EngineConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


class Engine:
    """The library's front door: configure once, then evaluate/chase/serve.

    Construction applies the config to the process-global engine state (see
    the module docstring for why it is global) and stages the plan cache if
    one was named.  All methods accept programs as rule text or
    :class:`~repro.datalog.program.Program` objects, mirroring the
    module-level functions they supersede.
    """

    def __init__(self, config: Optional[EngineConfig] = None, **kwargs):
        if config is not None and kwargs:
            raise TypeError("pass either a config object or field keywords, not both")
        self.config = config if config is not None else EngineConfig(**kwargs)
        self._apply()

    def _apply(self) -> None:
        if self.config.mode is not None:
            _mode.set_execution_mode(self.config.mode)
        if self.config.workers is not None:
            _mode.set_worker_count(self.config.workers)
        if self.config.parallel_threshold is not None:
            _parallel.set_parallel_threshold(self.config.parallel_threshold)
        if self.config.shm_result_min is not None:
            _parallel.set_shm_result_min(self.config.shm_result_min)
        if self.config.compact_ratio is not None:
            _index.set_compact_ratio(self.config.compact_ratio)
        if self.config.plan_cache is not None and os.path.exists(self.config.plan_cache):
            load_plan_cache(self.config.plan_cache)

    # -- introspection -------------------------------------------------------

    @property
    def mode(self) -> str:
        """The execution mode actually in effect (resolves the lazy default)."""
        return _mode.get_execution_mode()

    @property
    def workers(self) -> int:
        """The parallel worker count actually in effect."""
        return _mode.get_worker_count()

    # -- evaluation ----------------------------------------------------------

    @staticmethod
    def _as_program(program: Union[str, Program]) -> Program:
        return program if isinstance(program, Program) else parse_program(program)

    def evaluate(
        self,
        program: Union[str, Program],
        output_predicate: str,
        database: Iterable[Atom],
        output_arity: Optional[int] = None,
        chase_engine=None,
    ):
        """Answer tuples of the query, or ``INCONSISTENT`` (⊤).

        The facade form of :func:`repro.evaluate`: classifies the program
        (TriQ-Lite → warded engine, TriQ → chase + rewriting) and evaluates.
        """
        return _evaluate(
            program, output_predicate, database, output_arity, chase_engine
        )

    def chase(
        self,
        program: Union[str, Program],
        database: Iterable[Atom],
        chase_engine=None,
    ):
        """Materialise the stratified semantics; an Instance or ``INCONSISTENT``.

        The facade form of
        :func:`repro.datalog.semantics.evaluate_program`.
        """
        return evaluate_program(self._as_program(program), database, chase_engine)

    def delta_session(
        self,
        program: Union[str, Program],
        database: Iterable = (),
        **kwargs,
    ):
        """An incremental :class:`~repro.engine.incremental.DeltaSession`."""
        from repro.engine.incremental import DeltaSession

        return DeltaSession(self._as_program(program), database, **kwargs)

    def entailment_view(self, graph):
        """A :class:`~repro.translation.entailment_regime.EntailmentView`."""
        from repro.translation.entailment_regime import EntailmentView

        return EntailmentView(graph)

    def materialized_view(self, graph=None, program=None):
        """A :class:`~repro.service.MaterializedView` (no HTTP, in-process)."""
        from repro.service import MaterializedView

        return MaterializedView(graph, program)

    def serve(
        self,
        graph=None,
        host: str = "127.0.0.1",
        port: int = 8377,
        block: bool = True,
    ):
        """Boot the HTTP query service over ``graph``.

        With ``block=True`` (the default) this runs the server until
        interrupted.  With ``block=False`` it returns the unstarted
        :class:`~repro.service.QueryService` — call ``await service.start()``
        from your own event loop (the end-to-end tests drive it this way).
        """
        from repro.service import QueryService

        service = QueryService(graph, host=host, port=port)
        if block:
            service.run_forever()
        return service

    # -- lifecycle -----------------------------------------------------------

    def save_plan_cache(self, path: Optional[str] = None) -> int:
        """Persist compiled join plans; returns the number written."""
        target = path if path is not None else self.config.plan_cache
        if target is None:
            raise ValueError("no plan_cache path configured or given")
        return save_plan_cache(target)

    def close(self) -> None:
        """Release process-level engine resources (the parallel worker pool)."""
        from repro.engine.parallel import shutdown_pool

        shutdown_pool()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"Engine(mode={self.mode!r}, workers={self.workers}, config={self.config})"


def configure(config: Optional[EngineConfig] = None, **kwargs) -> Engine:
    """Apply a configuration to the process and return the Engine scope.

    ``repro.configure(mode="parallel", workers=4)`` is the one-liner form of
    ``repro.Engine(EngineConfig(...))``.
    """
    return Engine(config, **kwargs)
