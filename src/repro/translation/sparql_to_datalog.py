"""The SPARQL → Datalog¬s translation ``P_dat`` (Section 5.1).

For a graph pattern ``P`` the translation builds a query
``P_dat = (tau_bgp(P) ∪ tau_opr(P) ∪ tau_out(P), answer_P)`` over the schema
``{triple(·,·,·)}`` such that ``⟦P⟧_G = ⟦(P_dat, tau_db(G))⟧`` for every RDF
graph ``G`` (Theorem 5.2).

Representation of partial mappings
----------------------------------

A SPARQL evaluation produces *partial* mappings, so a single fixed-arity
answer predicate cannot carry them directly.  Following the paper (and its
Example 5.1), the translation keeps one predicate per (sub-pattern, possible
domain) pair — the predicate the paper writes ``query^S_P`` — and only the
final output rules pad the missing positions with the reserved constant ``⋆``.
The set of possible domains of a pattern is computed structurally (a BGP has
exactly one, OPT adds the "left only" domains, SELECT intersects with the
projection), which keeps the program finite; it may be exponential in the size
of the pattern in the worst case, exactly as the paper notes for ``P_dat``.

Modes
-----

The same translator builds the three flavours used in Section 5:

* ``plain``       — ``tau_bgp``: basic graph patterns read the ``triple`` predicate;
* ``entailment_U``   — ``tau^U_bgp``: ``triple`` is replaced by ``triple1`` and every
  variable and blank node is guarded by the active-domain predicate ``C``;
* ``entailment_All`` — ``tau^All_bgp``: as above but blank nodes are *not* guarded
  by ``C`` (Section 5.3, the semantics without the active-domain restriction).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple, Union as TypingUnion

from repro.datalog.atoms import Atom
from repro.datalog.program import Program, Query
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Null, Term, Variable
from repro.sparql.ast import (
    And,
    AndCondition,
    BGP,
    Bound,
    Condition,
    EqualsConstant,
    EqualsVariable,
    Filter,
    GraphPattern,
    Not,
    Opt,
    OrCondition,
    Select,
    Union,
)
from repro.sparql.parser import SelectQuery, parse_sparql

#: The reserved constant representing "this position was left unbound".
STAR = Constant("__unbound__")

#: Valid translation modes.
PLAIN = "plain"
ENTAILMENT_U = "entailment_U"
ENTAILMENT_ALL = "entailment_All"
_MODES = (PLAIN, ENTAILMENT_U, ENTAILMENT_ALL)

#: Predicate names used by the translation.
TRIPLE = "triple"
TRIPLE1 = "triple1"
ACTIVE_DOMAIN = "C"
DOM = "dom"
EQ = "eq"


Domain = FrozenSet[Variable]


@dataclass
class _NodeTranslation:
    """Bookkeeping for one node of the pattern tree."""

    identifier: int
    variables: FrozenSet[Variable]
    domains: Set[Domain] = field(default_factory=set)

    def predicate(self, domain: Domain) -> str:
        ordered = "_".join(v.name for v in sorted(domain)) or "empty"
        return f"query_{self.identifier}_{ordered}"


@dataclass
class DatalogTranslation:
    """The result of translating a graph pattern.

    ``answer_variables`` fixes the order of the answer-tuple positions; an
    answer tuple may carry :data:`STAR` at positions whose variable was left
    unbound by the corresponding SPARQL mapping.
    """

    program: Program
    answer_predicate: str
    answer_variables: Tuple[Variable, ...]
    mode: str

    @property
    def arity(self) -> int:
        """Return the arity of the answer predicate."""
        return len(self.answer_variables)

    def query(self) -> Query:
        """Return the translation packaged as an executable :class:`Query`."""
        return Query(self.program, self.answer_predicate, self.arity)


class SPARQLToDatalogTranslator:
    """Builds ``P_dat`` (and its entailment-regime variants) for graph patterns."""

    def __init__(self, mode: str = PLAIN):
        if mode not in _MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {_MODES}")
        self.mode = mode
        self._rules: List[Rule] = []
        self._counter = itertools.count()
        self._blank_counter = itertools.count()

    # -- public API ------------------------------------------------------------

    def translate(
        self,
        pattern: TypingUnion[str, GraphPattern, SelectQuery],
        answer_predicate: str = "answer",
    ) -> DatalogTranslation:
        """Translate a graph pattern (or a SELECT query, parsed or as text)."""
        self._rules = []
        self._counter = itertools.count()
        self._blank_counter = itertools.count()

        if isinstance(pattern, str):
            pattern = parse_sparql(pattern)
        if isinstance(pattern, SelectQuery):
            answer_variables: Tuple[Variable, ...] = tuple(pattern.projection)
            root_pattern: GraphPattern = Select(pattern.projection, pattern.pattern)
        else:
            answer_variables = tuple(sorted(pattern.variables()))
            root_pattern = pattern

        self._emit_preamble()
        root = self._translate_node(root_pattern)
        self._emit_output(root, answer_predicate, answer_variables)
        return DatalogTranslation(
            program=Program(self._rules),
            answer_predicate=answer_predicate,
            answer_variables=answer_variables,
            mode=self.mode,
        )

    # -- preamble -----------------------------------------------------------------

    def _emit_preamble(self) -> None:
        """Domain and equality helper predicates shared by all translations."""
        x, y, z = Variable("PreX"), Variable("PreY"), Variable("PreZ")
        self._rules.append(
            Rule((Atom(TRIPLE, (x, y, z)),), (Atom(DOM, (x,)), Atom(DOM, (y,)), Atom(DOM, (z,))))
        )
        self._rules.append(Rule((Atom(DOM, (x,)),), (Atom(EQ, (x, x)),)))

    # -- structural recursion ---------------------------------------------------------

    def _translate_node(self, pattern: GraphPattern) -> _NodeTranslation:
        if isinstance(pattern, BGP):
            return self._translate_bgp(pattern)
        if isinstance(pattern, And):
            return self._translate_and(pattern)
        if isinstance(pattern, Union):
            return self._translate_union(pattern)
        if isinstance(pattern, Opt):
            return self._translate_opt(pattern)
        if isinstance(pattern, Filter):
            return self._translate_filter(pattern)
        if isinstance(pattern, Select):
            return self._translate_select(pattern)
        raise TypeError(f"unknown graph pattern {pattern!r}")

    def _new_node(self, variables: Iterable[Variable]) -> _NodeTranslation:
        return _NodeTranslation(identifier=next(self._counter), variables=frozenset(variables))

    # .. basic graph patterns (tau_bgp / tau^U_bgp / tau^All_bgp) ..................

    def _translate_bgp(self, bgp: BGP) -> _NodeTranslation:
        node = self._new_node(bgp.variables())
        domain: Domain = frozenset(bgp.variables())
        node.domains.add(domain)

        blank_variables: Dict[Null, Variable] = {}

        def convert(term) -> Term:
            if isinstance(term, Variable):
                return term
            if isinstance(term, Null):
                if term not in blank_variables:
                    blank_variables[term] = Variable(
                        f"Blank_{next(self._blank_counter)}_{term.label.lstrip('_:')}"
                    )
                return blank_variables[term]
            return term

        triple_predicate = TRIPLE if self.mode == PLAIN else TRIPLE1
        body: List[Atom] = []
        for triple in bgp.patterns:
            body.append(Atom(triple_predicate, tuple(convert(t) for t in triple)))

        if self.mode in (ENTAILMENT_U, ENTAILMENT_ALL):
            guarded: Set[Variable] = set(bgp.variables())
            if self.mode == ENTAILMENT_U:
                guarded |= set(blank_variables.values())
            for variable in sorted(guarded):
                body.append(Atom(ACTIVE_DOMAIN, (variable,)))

        if not body:
            # The empty basic graph pattern evaluates to { mu_empty }; make the
            # 0-ary predicate hold whenever the database is non-empty.
            body = [Atom(DOM, (Variable("AnyX"),))]

        head = Atom(node.predicate(domain), tuple(sorted(domain)))
        self._rules.append(Rule(tuple(body), (head,)))
        return node

    # .. AND ..........................................................................

    def _translate_and(self, pattern: And) -> _NodeTranslation:
        left = self._translate_node(pattern.left)
        right = self._translate_node(pattern.right)
        node = self._new_node(left.variables | right.variables)
        for left_domain in left.domains:
            for right_domain in right.domains:
                joined = frozenset(left_domain | right_domain)
                node.domains.add(joined)
                body = (
                    Atom(left.predicate(left_domain), tuple(sorted(left_domain))),
                    Atom(right.predicate(right_domain), tuple(sorted(right_domain))),
                )
                head = Atom(node.predicate(joined), tuple(sorted(joined)))
                self._rules.append(Rule(body, (head,)))
        return node

    # .. UNION ..........................................................................

    def _translate_union(self, pattern: Union) -> _NodeTranslation:
        left = self._translate_node(pattern.left)
        right = self._translate_node(pattern.right)
        node = self._new_node(left.variables | right.variables)
        for child in (left, right):
            for domain in child.domains:
                node.domains.add(domain)
                body = (Atom(child.predicate(domain), tuple(sorted(domain))),)
                head = Atom(node.predicate(domain), tuple(sorted(domain)))
                self._rules.append(Rule(body, (head,)))
        return node

    # .. OPT ............................................................................

    def _translate_opt(self, pattern: Opt) -> _NodeTranslation:
        left = self._translate_node(pattern.left)
        right = self._translate_node(pattern.right)
        node = self._new_node(left.variables | right.variables)

        # Join part (as in AND).
        for left_domain in left.domains:
            for right_domain in right.domains:
                joined = frozenset(left_domain | right_domain)
                node.domains.add(joined)
                body = (
                    Atom(left.predicate(left_domain), tuple(sorted(left_domain))),
                    Atom(right.predicate(right_domain), tuple(sorted(right_domain))),
                )
                head = Atom(node.predicate(joined), tuple(sorted(joined)))
                self._rules.append(Rule(body, (head,)))

        # Difference part: left mappings compatible with no right mapping.
        for left_domain in left.domains:
            node.domains.add(left_domain)
            compatible_predicate = f"compatible_{node.identifier}_" + (
                "_".join(v.name for v in sorted(left_domain)) or "empty"
            )
            for right_domain in right.domains:
                body = (
                    Atom(left.predicate(left_domain), tuple(sorted(left_domain))),
                    Atom(right.predicate(right_domain), tuple(sorted(right_domain))),
                )
                head = Atom(compatible_predicate, tuple(sorted(left_domain)))
                self._rules.append(Rule(body, (head,)))
            body_positive = (Atom(left.predicate(left_domain), tuple(sorted(left_domain))),)
            body_negative = (Atom(compatible_predicate, tuple(sorted(left_domain))),)
            head = Atom(node.predicate(left_domain), tuple(sorted(left_domain)))
            self._rules.append(Rule(body_positive, (head,), body_negative=body_negative))
        return node

    # .. FILTER ...........................................................................

    def _translate_filter(self, pattern: Filter) -> _NodeTranslation:
        child = self._translate_node(pattern.pattern)
        node = self._new_node(child.variables)
        for domain in child.domains:
            disjuncts = _condition_to_dnf(pattern.condition, domain)
            for positive_literals, negative_literals in disjuncts:
                node.domains.add(domain)
                body: List[Atom] = [Atom(child.predicate(domain), tuple(sorted(domain)))]
                negatives: List[Atom] = []
                for left, right in positive_literals:
                    body.append(Atom(EQ, (left, right)))
                for left, right in negative_literals:
                    negatives.append(Atom(EQ, (left, right)))
                head = Atom(node.predicate(domain), tuple(sorted(domain)))
                self._rules.append(Rule(tuple(body), (head,), body_negative=tuple(negatives)))
        if not node.domains:
            # The filter rejects every mapping of every domain; keep the node
            # around with no rules (its predicates are simply never derivable).
            node.domains = set(child.domains)
        return node

    # .. SELECT .............................................................................

    def _translate_select(self, pattern: Select) -> _NodeTranslation:
        child = self._translate_node(pattern.pattern)
        node = self._new_node(pattern.projection)
        for domain in child.domains:
            projected = frozenset(domain & pattern.projection)
            node.domains.add(projected)
            body = (Atom(child.predicate(domain), tuple(sorted(domain))),)
            head = Atom(node.predicate(projected), tuple(sorted(projected)))
            self._rules.append(Rule(body, (head,)))
        return node

    # .. tau_out ..............................................................................

    def _emit_output(
        self,
        root: _NodeTranslation,
        answer_predicate: str,
        answer_variables: Tuple[Variable, ...],
    ) -> None:
        for domain in root.domains:
            body = (Atom(root.predicate(domain), tuple(sorted(domain))),)
            head_terms: List[Term] = [
                variable if variable in domain else STAR for variable in answer_variables
            ]
            if not answer_variables:
                head_terms = []
            head = Atom(answer_predicate, tuple(head_terms))
            self._rules.append(Rule(body, (head,)))


# ---------------------------------------------------------------------------
# FILTER condition compilation
# ---------------------------------------------------------------------------

_EqLiteral = Tuple[Term, Term]
_Disjunct = Tuple[Tuple[_EqLiteral, ...], Tuple[_EqLiteral, ...]]


def _condition_to_dnf(condition: Condition, domain: Domain) -> List[_Disjunct]:
    """Compile a built-in condition (w.r.t. a fixed mapping domain) to DNF.

    ``bound(?X)`` literals are resolved statically against the domain; the
    remaining literals are (dis)equalities compiled to positive/negated ``eq``
    atoms.  Equalities mentioning an unbound variable are false (cases (2)
    and (3) of the satisfaction definition require the variable to be bound).
    Each returned disjunct is a pair (positive equalities, negated equalities);
    an unsatisfiable disjunct is dropped, and a tautological condition yields
    a single empty disjunct.
    """

    TRUE = "true"
    FALSE = "false"

    def simplify(cond: Condition, positive: bool):
        if isinstance(cond, Bound):
            value = cond.variable in domain
            if not positive:
                value = not value
            return TRUE if value else FALSE
        if isinstance(cond, EqualsConstant):
            if cond.variable not in domain:
                return FALSE if positive else TRUE
            literal = ((cond.variable, cond.constant), positive)
            return [literal]
        if isinstance(cond, EqualsVariable):
            if cond.left not in domain or cond.right not in domain:
                return FALSE if positive else TRUE
            literal = ((cond.left, cond.right), positive)
            return [literal]
        if isinstance(cond, Not):
            return simplify(cond.condition, not positive)
        if isinstance(cond, OrCondition):
            connective = "or" if positive else "and"
            return (connective, simplify(cond.left, positive), simplify(cond.right, positive))
        if isinstance(cond, AndCondition):
            connective = "and" if positive else "or"
            return (connective, simplify(cond.left, positive), simplify(cond.right, positive))
        raise TypeError(f"unknown condition {cond!r}")

    def to_disjuncts(tree) -> List[List[Tuple[_EqLiteral, bool]]]:
        if tree == TRUE:
            return [[]]
        if tree == FALSE:
            return []
        if isinstance(tree, list):
            return [list(tree)]
        connective, left, right = tree
        left_disjuncts = to_disjuncts(left)
        right_disjuncts = to_disjuncts(right)
        if connective == "or":
            return left_disjuncts + right_disjuncts
        combined: List[List[Tuple[_EqLiteral, bool]]] = []
        for l in left_disjuncts:
            for r in right_disjuncts:
                combined.append(l + r)
        return combined

    result: List[_Disjunct] = []
    for conjunction in to_disjuncts(simplify(condition, True)):
        positive_literals = tuple(lit for lit, sign in conjunction if sign)
        negative_literals = tuple(lit for lit, sign in conjunction if not sign)
        result.append((positive_literals, negative_literals))
    return result


# ---------------------------------------------------------------------------
# Convenience wrappers
# ---------------------------------------------------------------------------


def translate_pattern(
    pattern: GraphPattern, mode: str = PLAIN, answer_predicate: str = "answer"
) -> DatalogTranslation:
    """Translate a graph pattern into ``P_dat`` (or a regime variant)."""
    return SPARQLToDatalogTranslator(mode).translate(pattern, answer_predicate)


def translate_select_query(
    query: SelectQuery, mode: str = PLAIN, answer_predicate: str = "answer"
) -> DatalogTranslation:
    """Translate a parsed SELECT query, preserving its projection order."""
    return SPARQLToDatalogTranslator(mode).translate(query, answer_predicate)
