"""SPARQL under the OWL 2 QL core direct-semantics entailment regime (Sections 5.2-5.3).

Given a graph pattern ``P``, the paper defines two TriQ-Lite 1.0 queries:

* ``P^U_dat   = (tau_owl2ql_core ∪ tau^U_bgp(P)   ∪ tau_opr(P) ∪ tau_out(P), answer_P)``
  — the OWL 2 QL core direct-semantics entailment regime with the *active
  domain* restriction (every variable and blank node takes values among the
  URIs of the graph);
* ``P^All_dat = (tau_owl2ql_core ∪ tau^All_bgp(P) ∪ tau_opr(P) ∪ tau_out(P), answer_P)``
  — the more natural semantics of Section 5.3, where blank nodes are
  existential and may be witnessed by anonymous individuals invented by the
  ontology's existential axioms.

Theorem 5.3 states ``⟦P⟧^U_G = ⟦(P^U_dat, tau_db(G))⟧`` and Definition 5.5
*defines* ``⟦P⟧^All_G`` as ``⟦(P^All_dat, tau_db(G))⟧``.  Corollaries 5.4 and
6.2 observe that both queries are TriQ 1.0 and indeed TriQ-Lite 1.0 queries;
:func:`entailment_regime_query` returns them as validated
:class:`repro.core.TriQLiteQuery` objects.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.core.triqlite import TriQLiteQuery
from repro.datalog.semantics import INCONSISTENT
from repro.owl.entailment_rules import owl2ql_core_program
from repro.rdf.graph import RDFGraph
from repro.sparql.ast import GraphPattern
from repro.sparql.parser import SelectQuery
from repro.translation.answers import decode_answers
from repro.translation.sparql_to_datalog import (
    ENTAILMENT_ALL,
    ENTAILMENT_U,
    DatalogTranslation,
    SPARQLToDatalogTranslator,
)

#: The two entailment-regime flavours.
EntailmentMode = str
ACTIVE_DOMAIN_MODE: EntailmentMode = "U"
ALL_MODE: EntailmentMode = "All"


def translate_under_entailment(
    pattern: Union[GraphPattern, SelectQuery],
    mode: EntailmentMode = ACTIVE_DOMAIN_MODE,
    answer_predicate: str = "answer",
) -> DatalogTranslation:
    """Build ``P^U_dat`` or ``P^All_dat`` (program includes ``tau_owl2ql_core``)."""
    translator_mode = ENTAILMENT_U if mode == ACTIVE_DOMAIN_MODE else ENTAILMENT_ALL
    if mode not in (ACTIVE_DOMAIN_MODE, ALL_MODE):
        raise ValueError(f"unknown entailment mode {mode!r}; expected 'U' or 'All'")
    translation = SPARQLToDatalogTranslator(translator_mode).translate(
        pattern, answer_predicate
    )
    program = owl2ql_core_program().union(translation.program)
    return DatalogTranslation(
        program=program,
        answer_predicate=translation.answer_predicate,
        answer_variables=translation.answer_variables,
        mode=translation.mode,
    )


def entailment_regime_query(
    pattern: Union[GraphPattern, SelectQuery],
    mode: EntailmentMode = ACTIVE_DOMAIN_MODE,
    answer_predicate: str = "answer",
    validate: bool = True,
) -> Tuple[TriQLiteQuery, DatalogTranslation]:
    """The TriQ-Lite 1.0 query of Corollary 6.2, plus its translation metadata."""
    translation = translate_under_entailment(pattern, mode, answer_predicate)
    query = TriQLiteQuery(
        translation.program,
        translation.answer_predicate,
        translation.arity,
        validate=validate,
    )
    return query, translation


def evaluate_under_entailment(
    pattern: Union[GraphPattern, SelectQuery],
    graph: RDFGraph,
    mode: EntailmentMode = ACTIVE_DOMAIN_MODE,
):
    """``⟦P⟧^U_G`` / ``⟦P⟧^All_G`` as a set of mappings (or ``INCONSISTENT``)."""
    query, translation = entailment_regime_query(pattern, mode)
    result = query.evaluate(graph.to_database())
    if result is INCONSISTENT:
        return INCONSISTENT
    return decode_answers(result, translation.answer_variables)
