"""SPARQL under the OWL 2 QL core direct-semantics entailment regime (Sections 5.2-5.3).

Given a graph pattern ``P``, the paper defines two TriQ-Lite 1.0 queries:

* ``P^U_dat   = (tau_owl2ql_core ∪ tau^U_bgp(P)   ∪ tau_opr(P) ∪ tau_out(P), answer_P)``
  — the OWL 2 QL core direct-semantics entailment regime with the *active
  domain* restriction (every variable and blank node takes values among the
  URIs of the graph);
* ``P^All_dat = (tau_owl2ql_core ∪ tau^All_bgp(P) ∪ tau_opr(P) ∪ tau_out(P), answer_P)``
  — the more natural semantics of Section 5.3, where blank nodes are
  existential and may be witnessed by anonymous individuals invented by the
  ontology's existential axioms.

Theorem 5.3 states ``⟦P⟧^U_G = ⟦(P^U_dat, tau_db(G))⟧`` and Definition 5.5
*defines* ``⟦P⟧^All_G`` as ``⟦(P^All_dat, tau_db(G))⟧``.  Corollaries 5.4 and
6.2 observe that both queries are TriQ 1.0 and indeed TriQ-Lite 1.0 queries;
:func:`entailment_regime_query` returns them as validated
:class:`repro.core.TriQLiteQuery` objects.

Two evaluation strategies implement the same semantics:

* :func:`evaluate_under_entailment` — the paper-literal route: build the
  full translated program (core ∪ query rules) and run it through the warded
  engine.  One materialization *per query*; this is the differential oracle.
* the **materialized view** route — materialize ``tau_owl2ql_core`` over
  ``tau_db(G)`` *once* (:class:`EntailmentView`, or the query service's
  :class:`~repro.engine.incremental.DeltaSession`), then answer each pattern
  by evaluating the SPARQL mapping algebra directly over the instance's
  interned ``triple1`` rows with active-domain guards
  (:func:`evaluate_view_ids`).  This is sound and complete because the
  translation's query rules never feed back into the core predicates: every
  ``query^S_P`` rule is exactly one algebra operation over the core-chased
  ``triple1``/``C``, and a universal model answers those (C-guarded, or
  existentially projected) conjunctive parts identically whichever chase
  produced it.  Answers are byte-identical to the oracle — the parity suite
  asserts it — while each query skips re-chasing the ontology and decodes
  only at the result boundary.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set, Tuple, Union

from repro.core.triqlite import TriQLiteQuery
from repro.datalog.semantics import INCONSISTENT
from repro.datalog.terms import Variable
from repro.owl.entailment_rules import owl2ql_core_program
from repro.rdf.graph import RDFGraph
from repro.sparql.ast import BGP, GraphPattern, Select
from repro.sparql.evaluator import (
    IdMapping,
    decode_id_mappings,
    evaluate_bgp_ids,
    evaluate_pattern_ids,
)
from repro.sparql.mappings import Mapping
from repro.sparql.parser import SelectQuery, parse_sparql
from repro.translation.answers import decode_answers
from repro.translation.sparql_to_datalog import (
    ENTAILMENT_ALL,
    ENTAILMENT_U,
    TRIPLE,
    TRIPLE1,
    ACTIVE_DOMAIN,
    DatalogTranslation,
    SPARQLToDatalogTranslator,
)

#: The two entailment-regime flavours.
EntailmentMode = str
ACTIVE_DOMAIN_MODE: EntailmentMode = "U"
ALL_MODE: EntailmentMode = "All"


def translate_under_entailment(
    pattern: Union[str, GraphPattern, SelectQuery],
    mode: EntailmentMode = ACTIVE_DOMAIN_MODE,
    answer_predicate: str = "answer",
) -> DatalogTranslation:
    """Build ``P^U_dat`` or ``P^All_dat`` (program includes ``tau_owl2ql_core``)."""
    translator_mode = ENTAILMENT_U if mode == ACTIVE_DOMAIN_MODE else ENTAILMENT_ALL
    if mode not in (ACTIVE_DOMAIN_MODE, ALL_MODE):
        raise ValueError(f"unknown entailment mode {mode!r}; expected 'U' or 'All'")
    translation = SPARQLToDatalogTranslator(translator_mode).translate(
        pattern, answer_predicate
    )
    program = owl2ql_core_program().union(translation.program)
    return DatalogTranslation(
        program=program,
        answer_predicate=translation.answer_predicate,
        answer_variables=translation.answer_variables,
        mode=translation.mode,
    )


def entailment_regime_query(
    pattern: Union[str, GraphPattern, SelectQuery],
    mode: EntailmentMode = ACTIVE_DOMAIN_MODE,
    answer_predicate: str = "answer",
    validate: bool = True,
) -> Tuple[TriQLiteQuery, DatalogTranslation]:
    """The TriQ-Lite 1.0 query of Corollary 6.2, plus its translation metadata."""
    translation = translate_under_entailment(pattern, mode, answer_predicate)
    query = TriQLiteQuery(
        translation.program,
        translation.answer_predicate,
        translation.arity,
        validate=validate,
    )
    return query, translation


def evaluate_under_entailment(
    pattern: Union[str, GraphPattern, SelectQuery],
    graph: RDFGraph,
    mode: EntailmentMode = ACTIVE_DOMAIN_MODE,
):
    """``⟦P⟧^U_G`` / ``⟦P⟧^All_G`` as a set of mappings (or ``INCONSISTENT``).

    Paper-literal route: one warded-engine materialization of the full
    translated program per call.  For repeated queries over one graph, use
    :class:`EntailmentView` (same answers, one materialization total).
    """
    query, translation = entailment_regime_query(pattern, mode)
    result = query.evaluate(graph.to_database())
    if result is INCONSISTENT:
        return INCONSISTENT
    return decode_answers(result, translation.answer_variables)


# ---------------------------------------------------------------------------
# The materialized-view route (ID-native)
# ---------------------------------------------------------------------------


def _as_pattern(pattern: Union[str, GraphPattern, SelectQuery]) -> GraphPattern:
    """A parsed SELECT query becomes an explicit projection node.

    SPARQL text is accepted and parsed; this keeps the in-process entry
    points (:class:`EntailmentView`, the service's ``MaterializedView``)
    callable with the same query strings the HTTP endpoint takes.
    """
    if isinstance(pattern, str):
        pattern = parse_sparql(pattern)
    if isinstance(pattern, SelectQuery):
        return Select(pattern.projection, pattern.pattern)
    return pattern


def active_domain_ids(store) -> FrozenSet[int]:
    """The interned IDs of ``C`` — the active domain of the materialization.

    ``store`` is a core-materialized :class:`~repro.datalog.database.Instance`
    or :class:`~repro.engine.index.InstanceSnapshot`.
    """
    return frozenset(ids[0] for ids in store.matching_ids(ACTIVE_DOMAIN, 1, ()))


def evaluate_view_ids(
    pattern: Union[str, GraphPattern, SelectQuery],
    store,
    mode: EntailmentMode = ACTIVE_DOMAIN_MODE,
    active_domain: Optional[FrozenSet[int]] = None,
) -> Set[IdMapping]:
    """``⟦P⟧^mode`` over an already-materialized core instance, as ID mappings.

    ``store`` must hold a materialization of ``tau_owl2ql_core`` (the
    ``triple``/``triple1``/``C`` predicates); consistency is the caller's
    concern (see :class:`EntailmentView` / the query service, which check it
    once per materialization, not per query).  Basic graph patterns read the
    interned ``triple1`` rows; variables are guarded by active-domain
    membership in both regimes, blank nodes only under the active-domain
    semantics ``"U"`` (Section 5.3 drops that guard, letting blank nodes be
    witnessed by invented nulls).  Decoding is left to the caller — the
    service serializes straight from IDs.
    """
    if mode not in (ACTIVE_DOMAIN_MODE, ALL_MODE):
        raise ValueError(f"unknown entailment mode {mode!r}; expected 'U' or 'All'")
    domain = active_domain if active_domain is not None else active_domain_ids(store)
    guard_blanks = mode == ACTIVE_DOMAIN_MODE

    def guard(binder, tid: int) -> bool:
        if isinstance(binder, Variable):
            return tid in domain
        return tid in domain if guard_blanks else True

    # The translation's empty-BGP rule fires iff the (graph) domain is
    # non-empty, i.e. iff any ``triple`` fact exists.
    nonempty = next(iter(store.matching_ids(TRIPLE, 3, ())), None) is not None

    def bgp_evaluator(bgp: BGP) -> Set[IdMapping]:
        return evaluate_bgp_ids(
            bgp,
            lambda pairs: store.matching_ids(TRIPLE1, 3, pairs),
            guard=guard,
            empty_bgp_result=nonempty,
        )

    return evaluate_pattern_ids(_as_pattern(pattern), bgp_evaluator)


class EntailmentView:
    """One core materialization of a graph, answering many queries ID-natively.

    The library-level face of the query service's read path: materialize
    ``tau_owl2ql_core`` over ``tau_db(G)`` once, then evaluate each pattern
    directly over the interned instance.  Answers are byte-identical to
    :func:`evaluate_under_entailment` (the parity suite proves it on every
    existing entailment test plus random patterns).
    """

    def __init__(self, graph: RDFGraph):
        from repro.engine.incremental import DeltaSession

        self._session = DeltaSession(owl2ql_core_program(), graph.to_database())
        self.instance = self._session.instance
        self.consistent = self._session.check_consistency()
        self._active_domain = (
            active_domain_ids(self.instance) if self.consistent else frozenset()
        )

    def evaluate_ids(
        self,
        pattern: Union[str, GraphPattern, SelectQuery],
        mode: EntailmentMode = ACTIVE_DOMAIN_MODE,
    ) -> Set[IdMapping]:
        """ID answers (callers must have checked :attr:`consistent`)."""
        return evaluate_view_ids(pattern, self.instance, mode, self._active_domain)

    def evaluate(
        self,
        pattern: Union[str, GraphPattern, SelectQuery],
        mode: EntailmentMode = ACTIVE_DOMAIN_MODE,
    ) -> Union[Set[Mapping], type(INCONSISTENT)]:
        """``⟦P⟧^mode_G`` as decoded mappings, or ``INCONSISTENT`` (⊤)."""
        if not self.consistent:
            return INCONSISTENT
        return decode_id_mappings(self.evaluate_ids(pattern, mode))
