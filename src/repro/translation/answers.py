"""Decoding Datalog answers back into SPARQL mappings.

The paper defines, for a tuple ``t = (t1, ..., tn)`` in ``P_dat(tau_db(G))``,
the mapping ``mu_{t,P}`` that binds the i-th answer variable to ``ti``
whenever ``ti ≠ ⋆``, and then

    ``⟦(P_dat, tau_db(G))⟧ = { mu_{t,P} | t ∈ P_dat(tau_db(G)) }``.

Theorem 5.2 (and 5.3 for the entailment regimes) states that this set equals
``⟦P⟧_G`` (respectively ``⟦P⟧^U_G``); the test-suite and the T5.2/T5.3
benchmarks verify exactly that equality.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set, Tuple, Union

from repro.datalog.semantics import INCONSISTENT, QueryResult
from repro.datalog.terms import Constant, Variable
from repro.sparql.mappings import Mapping
from repro.translation.sparql_to_datalog import STAR, DatalogTranslation


def decode_answers(
    tuples: Iterable[Tuple[Constant, ...]],
    answer_variables: Sequence[Variable],
) -> Set[Mapping]:
    """Turn ⋆-padded answer tuples into SPARQL mappings (``mu_{t,P}``)."""
    mappings: Set[Mapping] = set()
    for answer in tuples:
        bindings = {
            variable: value
            for variable, value in zip(answer_variables, answer)
            if value != STAR
        }
        mappings.add(Mapping(bindings))
    return mappings


def mappings_of_translation(
    translation: DatalogTranslation,
    result: QueryResult,
) -> Union[Set[Mapping], type(INCONSISTENT)]:
    """``⟦(P_dat, D)⟧`` from an already-computed query result.

    Propagates ``INCONSISTENT`` (⊤) unchanged, which only arises for the
    entailment-regime translations when the ontology violates a disjointness
    constraint.
    """
    if result is INCONSISTENT:
        return INCONSISTENT
    return decode_answers(result, translation.answer_variables)
