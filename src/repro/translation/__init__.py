"""Translations from SPARQL to Datalog-based queries (Section 5).

* :mod:`repro.translation.sparql_to_datalog` — the translation ``P_dat`` of
  Section 5.1: every graph pattern becomes a (non-recursive) Datalog¬s query
  over ``tau_db(G)`` whose answers, decoded through the reserved constant
  ``⋆``, coincide with ``⟦P⟧_G`` (Theorem 5.2).
* :mod:`repro.translation.entailment_regime` — the variants ``P^U_dat`` and
  ``P^All_dat`` of Sections 5.2-5.3 that prepend the fixed program
  ``tau_owl2ql_core``; both are TriQ-Lite 1.0 queries (Corollaries 5.4 / 6.2).
* :mod:`repro.translation.answers` — decoding of ⋆-padded answer tuples back
  into SPARQL mappings (the ``⟦(P_dat, D)⟧`` notation of the paper).
"""

from repro.translation.sparql_to_datalog import (
    STAR,
    DatalogTranslation,
    SPARQLToDatalogTranslator,
    translate_pattern,
    translate_select_query,
)
from repro.translation.answers import decode_answers, mappings_of_translation
from repro.translation.entailment_regime import (
    translate_under_entailment,
    entailment_regime_query,
    EntailmentMode,
)

__all__ = [
    "STAR",
    "DatalogTranslation",
    "SPARQLToDatalogTranslator",
    "translate_pattern",
    "translate_select_query",
    "decode_answers",
    "mappings_of_translation",
    "translate_under_entailment",
    "entailment_regime_query",
    "EntailmentMode",
]
