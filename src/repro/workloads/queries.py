"""Query generators: the paper's running queries plus random SPARQL patterns."""

from __future__ import annotations

import random
from typing import Dict

from repro.datalog.terms import Constant, Variable
from repro.rdf.graph import RDFGraph
from repro.sparql.ast import And, BGP, Bound, Filter, GraphPattern, Opt, TriplePattern, Union


def author_queries() -> Dict[str, str]:
    """The Section 2 SPARQL queries (text form, parseable by ``parse_sparql``)."""
    return {
        "authors": "SELECT ?X WHERE { ?Y is_author_of ?Z . ?Y name ?X }",
        "authors_sameas": """
            SELECT ?X WHERE {
              { ?Y is_author_of ?Z . ?Y name ?X }
              UNION
              { ?Y is_author_of ?Z . ?Y owl:sameAs ?W . ?W name ?X }
            }
        """,
        "authors_restriction": """
            SELECT ?X WHERE {
              ?Y name ?X .
              ?Y rdf:type ?Z .
              ?Z rdf:type owl:Restriction .
              ?Z owl:onProperty is_author_of .
              ?Z owl:someValuesFrom owl:Thing
            }
        """,
    }


def random_bgp(
    graph: RDFGraph,
    n_triples: int = 2,
    n_variables: int = 2,
    seed: int = 0,
) -> BGP:
    """A random basic graph pattern whose constants come from ``graph``.

    Triple patterns reuse a small pool of variables so that joins actually
    happen; constants are sampled from the graph's predicates and nodes so the
    pattern has a reasonable chance of matching.
    """
    rng = random.Random(seed)
    triples = list(graph)
    if not triples:
        raise ValueError("cannot build a pattern over an empty graph")
    variables = [Variable(f"V{i}") for i in range(max(1, n_variables))]

    def pick_term(value: Constant):
        """One random term: variable, constant, or blank node."""
        roll = rng.random()
        if roll < 0.55:
            return variables[rng.randrange(len(variables))]
        return value

    patterns = []
    for i in range(n_triples):
        base = triples[rng.randrange(len(triples))]
        patterns.append(
            TriplePattern(
                pick_term(base.subject),
                base.predicate if rng.random() < 0.7 else variables[rng.randrange(len(variables))],
                pick_term(base.object),
            )
        )
    return BGP(patterns)


def random_pattern(
    graph: RDFGraph,
    depth: int = 2,
    seed: int = 0,
) -> GraphPattern:
    """A random graph pattern using AND / UNION / OPT / FILTER over random BGPs."""
    rng = random.Random(seed)

    def build(level: int, salt: int) -> GraphPattern:
        """A random algebra subtree of the given depth."""
        if level <= 0:
            return random_bgp(graph, n_triples=rng.randint(1, 2), n_variables=3, seed=seed * 97 + salt)
        left = build(level - 1, salt * 2 + 1)
        right = build(level - 1, salt * 2 + 2)
        choice = rng.random()
        if choice < 0.35:
            return And(left, right)
        if choice < 0.65:
            return Union(left, right)
        if choice < 0.9:
            return Opt(left, right)
        variables = sorted(left.variables())
        if not variables:
            return And(left, right)
        return Filter(left, Bound(variables[0]))

    return build(depth, 1)
