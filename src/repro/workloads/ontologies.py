"""Ontology generators: the Lemma 6.5 chains and a university-style workload."""

from __future__ import annotations

import random

from repro.datalog.terms import Constant, Null
from repro.owl.model import Ontology, some, inverse
from repro.owl.rdf_mapping import ontology_to_graph
from repro.rdf.graph import RDFGraph
from repro.rdf.namespaces import RDF
from repro.sparql.ast import BGP, TriplePattern


# ---------------------------------------------------------------------------
# The Lemma 6.5 family (O_n, P_n)
# ---------------------------------------------------------------------------


def chain_ontology(n: int) -> Ontology:
    """``O_n``: the positive OWL 2 QL core ontology of the Lemma 6.5 proof.

    ``ClassAssertion(a0, c)``, ``SubClassOf(a0, ∃p)``, ``SubClassOf(∃p⁻, a1)``
    and the chain ``SubClassOf(a1, a2), ..., SubClassOf(a_{n-1}, a_n)``.  The
    anonymous individual forced by ``∃p`` must belong to all of
    ``a1, ..., a_n``, which is what makes the ground connection of the
    corresponding null grow with ``n``.
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    ontology = Ontology()
    ontology.assert_class("a0", "c")
    ontology.sub_class("a0", some("p"))
    ontology.sub_class(some(inverse("p")), "a1")
    for i in range(1, n):
        ontology.sub_class(f"a{i}", f"a{i + 1}")
    return ontology


def chain_ontology_graph(n: int) -> RDFGraph:
    """``G_n``: the RDF representation of ``O_n``."""
    return ontology_to_graph(chain_ontology(n))


def chain_basic_graph_pattern(n: int) -> BGP:
    """``P_n``: ``{ (_:B, rdf:type, a1), ..., (_:B, rdf:type, a_n) }``."""
    blank = Null("_:B")
    return BGP(
        TriplePattern(blank, RDF.type, Constant(f"a{i}")) for i in range(1, n + 1)
    )


# ---------------------------------------------------------------------------
# A university-style OWL 2 QL core workload (LUBM-flavoured)
# ---------------------------------------------------------------------------

_UNIVERSITY_TBOX = [
    # class hierarchy
    ("sub_class", "Professor", "Faculty"),
    ("sub_class", "Lecturer", "Faculty"),
    ("sub_class", "Faculty", "Employee"),
    ("sub_class", "Employee", "Person"),
    ("sub_class", "Student", "Person"),
    ("sub_class", "GraduateStudent", "Student"),
    # property hierarchy
    ("sub_property", "headOf", "worksFor"),
    ("sub_property", "worksFor", "memberOf"),
    ("sub_property", "teacherOf", "involvedIn"),
    ("sub_property", "takesCourse", "involvedIn"),
    # existential axioms
    ("sub_class_some", "Professor", "teacherOf"),
    ("sub_class_some", "Student", "takesCourse"),
    ("sub_class_some", "Faculty", "worksFor"),
    ("sub_class_some_inv", "teacherOf", "Course"),
    ("sub_class_some_inv", "takesCourse", "Course"),
    ("sub_class_some_inv", "worksFor", "Department"),
]


def university_ontology(
    n_departments: int = 2,
    students_per_department: int = 10,
    professors_per_department: int = 3,
    courses_per_department: int = 4,
    with_disjointness: bool = False,
    seed: int = 0,
) -> Ontology:
    """A scalable OWL 2 QL core ontology for the entailment-regime benchmarks.

    The TBox is fixed (class/property hierarchies plus unqualified existential
    axioms); the ABox scales with the department/student/course counts.
    ``with_disjointness=True`` adds ``DisjointClasses(Student, Course)`` so
    consistency checking is exercised as well.
    """
    rng = random.Random(seed)
    ontology = Ontology()

    for kind, first, second in _UNIVERSITY_TBOX:
        if kind == "sub_class":
            ontology.sub_class(first, second)
        elif kind == "sub_property":
            ontology.sub_property(first, second)
        elif kind == "sub_class_some":
            ontology.sub_class(first, some(second))
        elif kind == "sub_class_some_inv":
            ontology.sub_class(some(inverse(first)), second)
    if with_disjointness:
        ontology.disjoint_classes("Student", "Course")

    for d in range(n_departments):
        department = f"dept{d}"
        ontology.assert_class("Department", department)
        courses = [f"course{d}_{c}" for c in range(courses_per_department)]
        for course in courses:
            ontology.assert_class("Course", course)
        for p in range(professors_per_department):
            professor = f"prof{d}_{p}"
            ontology.assert_class("Professor", professor)
            ontology.assert_property("worksFor", professor, department)
            if courses:
                ontology.assert_property(
                    "teacherOf", professor, courses[rng.randrange(len(courses))]
                )
            if p == 0:
                ontology.assert_property("headOf", professor, department)
        for s in range(students_per_department):
            student = f"student{d}_{s}"
            cls = "GraduateStudent" if s % 3 == 0 else "Student"
            ontology.assert_class(cls, student)
            if courses and s % 2 == 0:
                ontology.assert_property(
                    "takesCourse", student, courses[rng.randrange(len(courses))]
                )
    return ontology


def university_graph(**kwargs) -> RDFGraph:
    """The RDF representation of :func:`university_ontology`."""
    return ontology_to_graph(university_ontology(**kwargs))


# ---------------------------------------------------------------------------
# A LUBM-style multi-university workload (the parallel-scale series)
# ---------------------------------------------------------------------------

_LUBM_TBOX = [
    # class hierarchy (three professor ranks, two student kinds, organisations)
    ("sub_class", "FullProfessor", "Professor"),
    ("sub_class", "AssociateProfessor", "Professor"),
    ("sub_class", "AssistantProfessor", "Professor"),
    ("sub_class", "Professor", "Faculty"),
    ("sub_class", "Lecturer", "Faculty"),
    ("sub_class", "Faculty", "Employee"),
    ("sub_class", "Employee", "Person"),
    ("sub_class", "UndergraduateStudent", "Student"),
    ("sub_class", "GraduateStudent", "Student"),
    ("sub_class", "Student", "Person"),
    ("sub_class", "ResearchGroup", "Organization"),
    ("sub_class", "Department", "Organization"),
    ("sub_class", "University", "Organization"),
    ("sub_class", "GraduateCourse", "Course"),
    # property hierarchy
    ("sub_property", "headOf", "worksFor"),
    ("sub_property", "worksFor", "memberOf"),
    ("sub_property", "teacherOf", "involvedIn"),
    ("sub_property", "takesCourse", "involvedIn"),
    ("sub_property", "advisor", "knows"),
    # existential axioms (unqualified, OWL 2 QL core)
    ("sub_class_some", "Professor", "teacherOf"),
    ("sub_class_some", "Student", "takesCourse"),
    ("sub_class_some", "Faculty", "worksFor"),
    ("sub_class_some", "GraduateStudent", "advisor"),
    ("sub_class_some", "Department", "subOrganizationOf"),
    ("sub_class_some_inv", "teacherOf", "Course"),
    ("sub_class_some_inv", "takesCourse", "Course"),
    ("sub_class_some_inv", "worksFor", "Department"),
    ("sub_class_some_inv", "advisor", "Professor"),
    ("sub_class_some_inv", "subOrganizationOf", "University"),
]

_PROFESSOR_RANKS = ("FullProfessor", "AssociateProfessor", "AssistantProfessor")


def lubm_style_ontology(
    n_universities: int = 1,
    departments_per_university: int = 3,
    faculty_per_department: int = 4,
    students_per_department: int = 20,
    courses_per_department: int = 6,
    seed: int = 0,
) -> Ontology:
    """A LUBM-flavoured OWL 2 QL core workload scaling across universities.

    A richer TBox than :func:`university_ontology` (professor ranks,
    graduate courses, research groups, university/department organisation
    with ``subOrganizationOf`` existentials, advisor edges) over a
    multi-university ABox — the university-scale series the sharded parallel
    executor is benchmarked on.  The ABox grows linearly in every scale
    parameter; the entailment-regime materialisation grows roughly with
    #persons × class-hierarchy depth.
    """
    rng = random.Random(seed)
    ontology = Ontology()
    for kind, first, second in _LUBM_TBOX:
        if kind == "sub_class":
            ontology.sub_class(first, second)
        elif kind == "sub_property":
            ontology.sub_property(first, second)
        elif kind == "sub_class_some":
            ontology.sub_class(first, some(second))
        elif kind == "sub_class_some_inv":
            ontology.sub_class(some(inverse(first)), second)

    for u in range(n_universities):
        university = f"univ{u}"
        ontology.assert_class("University", university)
        for d in range(departments_per_university):
            department = f"u{u}dept{d}"
            ontology.assert_class("Department", department)
            ontology.assert_property("subOrganizationOf", department, university)
            group = f"u{u}d{d}group"
            ontology.assert_class("ResearchGroup", group)
            ontology.assert_property("subOrganizationOf", group, department)
            courses = [f"u{u}d{d}course{c}" for c in range(courses_per_department)]
            for c, course in enumerate(courses):
                cls = "GraduateCourse" if c % 3 == 0 else "Course"
                ontology.assert_class(cls, course)
            professors = []
            for f in range(faculty_per_department):
                person = f"u{u}d{d}fac{f}"
                if f % 4 == 3:
                    ontology.assert_class("Lecturer", person)
                else:
                    rank = _PROFESSOR_RANKS[f % len(_PROFESSOR_RANKS)]
                    ontology.assert_class(rank, person)
                    professors.append(person)
                ontology.assert_property("worksFor", person, department)
                ontology.assert_property("memberOf", person, group)
                if courses:
                    ontology.assert_property(
                        "teacherOf", person, courses[rng.randrange(len(courses))]
                    )
                if f == 0:
                    ontology.assert_property("headOf", person, department)
            for s in range(students_per_department):
                student = f"u{u}d{d}stud{s}"
                graduate = s % 4 == 0
                ontology.assert_class(
                    "GraduateStudent" if graduate else "UndergraduateStudent", student
                )
                for _ in range(1 + s % 2):
                    if courses:
                        ontology.assert_property(
                            "takesCourse", student, courses[rng.randrange(len(courses))]
                        )
                if graduate and professors:
                    ontology.assert_property(
                        "advisor", student, professors[rng.randrange(len(professors))]
                    )
    return ontology


def lubm_style_graph(**kwargs) -> RDFGraph:
    """The RDF representation of :func:`lubm_style_ontology`."""
    return ontology_to_graph(lubm_style_ontology(**kwargs))
