"""RDF graph generators: the Section 2 scenarios plus random/synthetic graphs."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.rdf.graph import RDFGraph
from repro.rdf.namespaces import OWL, RDF, RDFS


# ---------------------------------------------------------------------------
# The motivating graphs G1-G4 of Section 2
# ---------------------------------------------------------------------------


def section2_g1() -> RDFGraph:
    """``G1``: Ullman authored "The Complete Book"."""
    return RDFGraph(
        [
            ("dbUllman", "is_author_of", "The Complete Book"),
            ("dbUllman", "name", "Jeffrey Ullman"),
        ]
    )


def section2_g2() -> RDFGraph:
    """``G2``: ``G1`` plus the co-authorship triple about Aho."""
    graph = section2_g1()
    graph.add_all(
        [
            ("dbAho", "is_coauthor_of", "dbUllman"),
            ("dbAho", "name", "Alfred Aho"),
        ]
    )
    return graph


def section2_g3() -> RDFGraph:
    """``G3``: ``G2`` plus the OWL restrictions relating co-authorship and authorship."""
    graph = section2_g2()
    graph.add_all(
        [
            ("r1", RDF.type, OWL.Restriction),
            ("r2", RDF.type, OWL.Restriction),
            ("r1", OWL.onProperty, "is_coauthor_of"),
            ("r2", OWL.onProperty, "is_author_of"),
            ("r1", OWL.someValuesFrom, OWL.Thing),
            ("r2", OWL.someValuesFrom, OWL.Thing),
            ("r1", RDFS.subClassOf, "r2"),
        ]
    )
    return graph


def section2_g4() -> RDFGraph:
    """``G4``: the owl:sameAs scenario with DBpedia and YAGO URIs for Ullman."""
    return RDFGraph(
        [
            ("dbUllman", "is_author_of", "The Complete Book"),
            ("dbUllman", OWL.sameAs, "yagoUllman"),
            ("yagoUllman", "name", "Jeffrey Ullman"),
        ]
    )


# ---------------------------------------------------------------------------
# Transport networks (the final Section 2 scenario)
# ---------------------------------------------------------------------------


def transport_network(
    n_cities: int,
    n_services: int = 3,
    hierarchy_depth: int = 2,
    seed: int = 0,
) -> Tuple[RDFGraph, List[str]]:
    """A transport-service scenario of configurable size.

    Cities ``city0 .. city{n-1}`` form a line, consecutive cities are linked by
    a service; each concrete service (e.g. ``A311``) belongs, through a
    ``partOf`` chain of length ``hierarchy_depth``, to the ``transportService``
    node.  Returns the graph and the ordered list of city names, so callers
    know which reachability pairs to expect (all ``i < j`` pairs).
    """
    rng = random.Random(seed)
    graph = RDFGraph()
    cities = [f"city{i}" for i in range(n_cities)]

    operators = [f"operator{i}" for i in range(n_services)]
    for operator in operators:
        previous = operator
        for level in range(hierarchy_depth - 1):
            intermediate = f"{operator}_group{level}"
            graph.add((previous, "partOf", intermediate))
            previous = intermediate
        graph.add((previous, "partOf", "transportService"))

    for index in range(n_cities - 1):
        operator = operators[rng.randrange(len(operators))] if operators else "operator0"
        service = f"service{index}"
        graph.add((service, "partOf", operator))
        graph.add((cities[index], service, cities[index + 1]))
    return graph, cities


def paper_transport_graph() -> RDFGraph:
    """The exact Oxford/London/Madrid/Valladolid figure of Section 2."""
    return RDFGraph(
        [
            ("TheAirline", "partOf", "transportService"),
            ("BritishAirways", "partOf", "transportService"),
            ("Renfe", "partOf", "transportService"),
            ("A311", "partOf", "TheAirline"),
            ("BA201", "partOf", "BritishAirways"),
            ("R502", "partOf", "Renfe"),
            ("Oxford", "A311", "London"),
            ("London", "BA201", "Madrid"),
            ("Madrid", "R502", "Valladolid"),
        ]
    )


# ---------------------------------------------------------------------------
# Random graphs
# ---------------------------------------------------------------------------


def random_rdf_graph(
    n_triples: int,
    n_nodes: int = 50,
    predicates: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> RDFGraph:
    """A uniformly random RDF graph over a fixed node and predicate pool."""
    rng = random.Random(seed)
    predicates = list(predicates) if predicates else ["name", "knows", "phone", "worksFor", "cites"]
    nodes = [f"n{i}" for i in range(n_nodes)]
    graph = RDFGraph()
    attempts = 0
    while len(graph) < n_triples and attempts < 50 * n_triples:
        attempts += 1
        graph.add(
            (
                nodes[rng.randrange(n_nodes)],
                predicates[rng.randrange(len(predicates))],
                nodes[rng.randrange(n_nodes)],
            )
        )
    return graph


def random_undirected_graph(
    n_vertices: int, edge_probability: float, seed: int = 0
) -> List[Tuple[str, str]]:
    """An Erdős–Rényi style undirected graph as an edge list (for Example 4.3)."""
    rng = random.Random(seed)
    edges: List[Tuple[str, str]] = []
    for i in range(n_vertices):
        for j in range(i + 1, n_vertices):
            if rng.random() < edge_probability:
                edges.append((f"v{i}", f"v{j}"))
    return edges


# ---------------------------------------------------------------------------
# Deep chains and layered graphs (the parallel-scale reachability series)
# ---------------------------------------------------------------------------


def chain_graph(
    length: int, branches_per_node: int = 0, predicate: str = "knows"
) -> RDFGraph:
    """A depth-``length`` chain ``c0 → c1 → … → c_length`` of ``predicate``
    edges, optionally with ``branches_per_node`` leaf branches hanging off
    every chain node.

    Transitive closure over the chain produces Θ(length²) pairs in Θ(length)
    semi-naive rounds — the deep-fixpoint shape (many small deltas) that
    stresses per-round overhead, as opposed to the wide-delta shape of
    :func:`layered_graph`.
    """
    graph = RDFGraph()
    for i in range(length):
        graph.add((f"c{i}", predicate, f"c{i + 1}"))
        for b in range(branches_per_node):
            graph.add((f"c{i}", predicate, f"c{i}b{b}"))
    return graph


def layered_graph(
    layers: int, width: int, out_degree: int = 3, seed: int = 0, predicate: str = "knows"
) -> RDFGraph:
    """A layered DAG: ``width`` nodes per layer, each with ``out_degree``
    random edges into the next layer.

    Reachability closes in Θ(layers) rounds over wide deltas of up to
    ``width²`` pairs per layer distance — the bulk-delta shape the sharded
    parallel executor partitions across workers.
    """
    rng = random.Random(seed)
    graph = RDFGraph()
    for layer in range(layers):
        for i in range(width):
            for _ in range(out_degree):
                j = rng.randrange(width)
                graph.add((f"l{layer}n{i}", predicate, f"l{layer + 1}n{j}"))
    return graph
