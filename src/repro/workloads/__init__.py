"""Synthetic workload generators used by the examples, tests and benchmarks.

The paper evaluates nothing experimentally (it is a PODS/TODS theory paper),
so this package provides the synthetic data its constructions need to be
exercised at laptop scale: the motivating RDF graphs of Section 2, random RDF
graphs and SPARQL patterns, transport networks, random undirected graphs for
the k-clique query, the chain ontologies of Lemma 6.5, and a scalable
university-style OWL 2 QL core ontology for the entailment-regime benchmarks.
:mod:`repro.workloads.streams` adds *fact feeds* — an initial database plus
a schedule of arrival batches, insert-only or churning (paired inserts and
window evictions) — for the incremental streaming subsystem and its
benchmarks.
"""

from repro.workloads.graphs import (
    section2_g1,
    section2_g2,
    section2_g3,
    section2_g4,
    transport_network,
    random_rdf_graph,
    random_undirected_graph,
)
from repro.workloads.ontologies import (
    chain_ontology,
    chain_ontology_graph,
    chain_basic_graph_pattern,
    university_ontology,
    university_graph,
)
from repro.workloads.queries import random_bgp, random_pattern, author_queries
from repro.workloads.streams import (
    churn_heavy_social_stream,
    growing_university_stream,
    sliding_chain_stream,
    sliding_social_stream,
    trickle_insert_chain,
)

__all__ = [
    "churn_heavy_social_stream",
    "growing_university_stream",
    "sliding_chain_stream",
    "sliding_social_stream",
    "trickle_insert_chain",
    "section2_g1",
    "section2_g2",
    "section2_g3",
    "section2_g4",
    "transport_network",
    "random_rdf_graph",
    "random_undirected_graph",
    "chain_ontology",
    "chain_ontology_graph",
    "chain_basic_graph_pattern",
    "university_ontology",
    "university_graph",
    "random_bgp",
    "random_pattern",
    "author_queries",
]
