"""Streaming workload generators: insert-only fact feeds for `DeltaSession`.

The batch workloads in :mod:`repro.workloads.graphs` and
:mod:`repro.workloads.ontologies` produce one database; the generators here
produce a database **plus a schedule of arrival batches**, which is the input
shape of the incremental subsystem (:mod:`repro.engine.incremental`) and of
``benchmarks/bench_scale_streaming.py``.  Every generator returns
``(initial, batches)`` where ``initial`` is an :class:`~repro.rdf.graph.RDFGraph`
and ``batches`` is a list of lists of :class:`~repro.rdf.graph.Triple` —
both feed :meth:`~repro.engine.incremental.DeltaSession.push` directly.

The chain and university streams are **insert-only** monotone feeds —
growing link graphs and a monotonically growing ontology ABox — matching
:meth:`~repro.engine.incremental.DeltaSession.push`.  The sliding social
stream is a **churn** feed: its window genuinely evicts, so each batch is an
``(inserts, deletes)`` pair whose deletes feed
:meth:`~repro.engine.incremental.DeltaSession.retract` (DRed deletion).
Pass ``insert_only=True`` to recover the historical insert-only shape, where
"sliding" was only the locality of new edges.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple, Union

from repro.rdf.graph import RDFGraph, Triple
from repro.workloads.ontologies import lubm_style_graph

Stream = Tuple[RDFGraph, List[List[Triple]]]
ChurnBatch = Tuple[List[Triple], List[Triple]]
ChurnStream = Tuple[RDFGraph, List[ChurnBatch]]


def trickle_insert_chain(
    initial_length: int,
    batches: int,
    edges_per_batch: int = 1,
    predicate: str = "knows",
) -> Stream:
    """A chain that keeps growing at the tip, one small batch at a time.

    The initial graph is the chain ``c0 → … → c{initial_length}``; each batch
    appends ``edges_per_batch`` further chain edges.  Under transitive
    closure every batch extends Θ(length) new pairs while a recompute costs
    Θ(length²) — the workload where incremental evaluation wins the most,
    and the trickle-insert scenario of the streaming benchmarks.
    """
    graph = RDFGraph()
    for i in range(initial_length):
        graph.add((f"c{i}", predicate, f"c{i + 1}"))
    feed: List[List[Triple]] = []
    tip = initial_length
    for _ in range(batches):
        batch = [
            Triple(f"c{tip + j}", predicate, f"c{tip + j + 1}")
            for j in range(edges_per_batch)
        ]
        tip += edges_per_batch
        feed.append(batch)
    return graph, feed


def growing_university_stream(
    universities: int,
    departments_per_university: int = 2,
    faculty_per_department: int = 3,
    students_per_department: int = 12,
    courses_per_department: int = 4,
    seed: int = 0,
) -> Stream:
    """A LUBM-style universe growing one university per batch.

    The initial graph holds one university; batch ``k`` delivers exactly the
    triples of university ``k + 1`` (TBox axioms arrive with the first
    university and never change).  Relies on the prefix property of
    :func:`~repro.workloads.ontologies.lubm_style_ontology`: universities
    are generated sequentially from one seeded RNG, so scale ``n`` is a
    superset of scale ``n - 1`` and consecutive set differences are precisely
    the new university's ABox.
    """
    if universities < 1:
        raise ValueError("need at least one university")
    scale = dict(
        departments_per_university=departments_per_university,
        faculty_per_department=faculty_per_department,
        students_per_department=students_per_department,
        courses_per_department=courses_per_department,
        seed=seed,
    )
    previous = lubm_style_graph(n_universities=1, **scale)
    initial = previous
    feed: List[List[Triple]] = []
    for n in range(2, universities + 1):
        current = lubm_style_graph(n_universities=n, **scale)
        fresh = [triple for triple in current if triple not in previous]
        feed.append(fresh)
        previous = current
    return initial, feed


def sliding_social_stream(
    initial_edges: int = 200,
    batches: int = 10,
    edges_per_batch: int = 40,
    window: int = 50,
    drift: int = 5,
    predicate: str = "knows",
    seed: int = 0,
    insert_only: bool = False,
) -> Union[Stream, ChurnStream]:
    """A social graph whose activity window slides over an unbounded userbase.

    Edges always connect two users inside the current activity window of
    ``window`` user ids; after every batch the window slides forward by
    ``drift`` ids, so fresh users keep entering and old users drop out.  The
    window genuinely **evicts**: each batch is an ``(inserts, deletes)``
    pair, where the deletes are every previously delivered, still-live edge
    with an endpoint behind the new window start (in delivery order).  The
    inserts feed :meth:`~repro.engine.incremental.DeltaSession.push`, the
    deletes :meth:`~repro.engine.incremental.DeltaSession.retract`.

    With ``insert_only=True`` the eviction half is dropped and the return
    shape reverts to a plain batch list — exactly the edges the default
    stream inserts, from the same RNG draw, so records benchmarked against
    the historical insert-only stream stay comparable.

    Duplicate edges are retried a bounded number of times, so batch sizes
    are approximate upper bounds on dense windows; an evicted edge is never
    re-delivered.
    """
    rng = random.Random(seed)
    graph = RDFGraph()
    seen = set()
    live: Dict[Tuple[int, int], Triple] = {}

    def fresh_edges(count: int, base: int) -> List[Triple]:
        """Up to ``count`` never-seen edges inside the current window."""
        edges: List[Triple] = []
        attempts = 0
        while len(edges) < count and attempts < 20 * count:
            attempts += 1
            a = base + rng.randrange(window)
            b = base + rng.randrange(window)
            if a == b or (a, b) in seen:
                continue
            seen.add((a, b))
            live[(a, b)] = edge = Triple(f"user{a}", predicate, f"user{b}")
            edges.append(edge)
        return edges

    for triple in fresh_edges(initial_edges, 0):
        graph.add(triple)
    feed: list = []
    base = 0
    for _ in range(batches):
        base += drift
        if insert_only:
            feed.append(fresh_edges(edges_per_batch, base))
            continue
        evicted = [pair for pair in live if pair[0] < base or pair[1] < base]
        deletes = [live.pop(pair) for pair in evicted]
        feed.append((fresh_edges(edges_per_batch, base), deletes))
    return graph, feed


def sliding_chain_stream(
    window: int = 80,
    batches: int = 8,
    edges_per_batch: int = 10,
    predicate: str = "knows",
) -> ChurnStream:
    """A chain whose fixed-width window slides: grow the tip, evict the tail.

    The initial graph is the chain ``c0 → … → c{window}``; each batch inserts
    ``edges_per_batch`` edges at the tip and deletes the same number at the
    tail, so exactly ``window`` edges stay live.  This is the regime
    incremental deletion is built for: under a left-linear transitive
    closure, the pairs reachable *through* a tail edge all start at the dead
    node, none has alternative support, so DRed marks Θ(edges_per_batch ×
    window) facts and re-derives zero — while a recompute pays the full
    Θ(window²) fixpoint per slide.  Contrast
    :func:`churn_heavy_social_stream`, whose densely connected windows are
    DRed's worst case.
    """
    graph = RDFGraph()
    for i in range(window):
        graph.add(Triple(f"c{i}", predicate, f"c{i + 1}"))
    feed: List[ChurnBatch] = []
    tip = tail = 0
    for _ in range(batches):
        inserts = [
            Triple(f"c{window + tip + j}", predicate, f"c{window + tip + j + 1}")
            for j in range(edges_per_batch)
        ]
        deletes = [
            Triple(f"c{tail + j}", predicate, f"c{tail + j + 1}")
            for j in range(edges_per_batch)
        ]
        tip += edges_per_batch
        tail += edges_per_batch
        feed.append((inserts, deletes))
    return graph, feed


def churn_heavy_social_stream(
    initial_edges: int = 150,
    batches: int = 8,
    edges_per_batch: int = 30,
    window: int = 40,
    predicate: str = "knows",
    seed: int = 0,
) -> ChurnStream:
    """A churn-heavy schedule: the window jumps half its width every batch.

    The deletion-stress variant of :func:`sliding_social_stream` — with
    ``drift = window // 2`` roughly half the live edges are evicted at every
    slide, so retraction work per batch is comparable to insertion work.
    This is the schedule ``benchmarks/bench_stream_churn.py`` replays to
    weigh incremental DRed deletion against recompute-per-window.
    """
    return sliding_social_stream(
        initial_edges=initial_edges,
        batches=batches,
        edges_per_batch=edges_per_batch,
        window=window,
        drift=max(1, window // 2),
        predicate=predicate,
        seed=seed,
    )
