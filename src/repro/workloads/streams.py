"""Streaming workload generators: insert-only fact feeds for `DeltaSession`.

The batch workloads in :mod:`repro.workloads.graphs` and
:mod:`repro.workloads.ontologies` produce one database; the generators here
produce a database **plus a schedule of arrival batches**, which is the input
shape of the incremental subsystem (:mod:`repro.engine.incremental`) and of
``benchmarks/bench_scale_streaming.py``.  Every generator returns
``(initial, batches)`` where ``initial`` is an :class:`~repro.rdf.graph.RDFGraph`
and ``batches`` is a list of lists of :class:`~repro.rdf.graph.Triple` —
both feed :meth:`~repro.engine.incremental.DeltaSession.push` directly.

All streams are **insert-only**: the incremental engine's instance is
append-only (its snapshot and worker-replica contracts rely on that), so the
generators model monotone feeds — growing link graphs, a monotonically
growing ontology ABox, a social graph whose *activity* slides while its
history accumulates.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.rdf.graph import RDFGraph, Triple
from repro.workloads.ontologies import lubm_style_graph

Stream = Tuple[RDFGraph, List[List[Triple]]]


def trickle_insert_chain(
    initial_length: int,
    batches: int,
    edges_per_batch: int = 1,
    predicate: str = "knows",
) -> Stream:
    """A chain that keeps growing at the tip, one small batch at a time.

    The initial graph is the chain ``c0 → … → c{initial_length}``; each batch
    appends ``edges_per_batch`` further chain edges.  Under transitive
    closure every batch extends Θ(length) new pairs while a recompute costs
    Θ(length²) — the workload where incremental evaluation wins the most,
    and the trickle-insert scenario of the streaming benchmarks.
    """
    graph = RDFGraph()
    for i in range(initial_length):
        graph.add((f"c{i}", predicate, f"c{i + 1}"))
    feed: List[List[Triple]] = []
    tip = initial_length
    for _ in range(batches):
        batch = [
            Triple(f"c{tip + j}", predicate, f"c{tip + j + 1}")
            for j in range(edges_per_batch)
        ]
        tip += edges_per_batch
        feed.append(batch)
    return graph, feed


def growing_university_stream(
    universities: int,
    departments_per_university: int = 2,
    faculty_per_department: int = 3,
    students_per_department: int = 12,
    courses_per_department: int = 4,
    seed: int = 0,
) -> Stream:
    """A LUBM-style universe growing one university per batch.

    The initial graph holds one university; batch ``k`` delivers exactly the
    triples of university ``k + 1`` (TBox axioms arrive with the first
    university and never change).  Relies on the prefix property of
    :func:`~repro.workloads.ontologies.lubm_style_ontology`: universities
    are generated sequentially from one seeded RNG, so scale ``n`` is a
    superset of scale ``n - 1`` and consecutive set differences are precisely
    the new university's ABox.
    """
    if universities < 1:
        raise ValueError("need at least one university")
    scale = dict(
        departments_per_university=departments_per_university,
        faculty_per_department=faculty_per_department,
        students_per_department=students_per_department,
        courses_per_department=courses_per_department,
        seed=seed,
    )
    previous = lubm_style_graph(n_universities=1, **scale)
    initial = previous
    feed: List[List[Triple]] = []
    for n in range(2, universities + 1):
        current = lubm_style_graph(n_universities=n, **scale)
        fresh = [triple for triple in current if triple not in previous]
        feed.append(fresh)
        previous = current
    return initial, feed


def sliding_social_stream(
    initial_edges: int = 200,
    batches: int = 10,
    edges_per_batch: int = 40,
    window: int = 50,
    drift: int = 5,
    predicate: str = "knows",
    seed: int = 0,
) -> Stream:
    """A social graph whose activity window slides over an unbounded userbase.

    Edges always connect two users inside the current activity window of
    ``window`` user ids; after every batch the window slides forward by
    ``drift`` ids, so fresh users keep entering the graph, old users stop
    receiving edges, and the accumulated history only ever grows (the stream
    stays insert-only — "sliding" is the locality of *new* edges, not a
    deletion).  Duplicate edges are retried a bounded number of times, so
    batch sizes are approximate upper bounds on dense windows.
    """
    rng = random.Random(seed)
    graph = RDFGraph()
    seen = set()

    def fresh_edges(count: int, base: int) -> List[Triple]:
        """Up to ``count`` never-seen edges inside the current window."""
        edges: List[Triple] = []
        attempts = 0
        while len(edges) < count and attempts < 20 * count:
            attempts += 1
            a = base + rng.randrange(window)
            b = base + rng.randrange(window)
            if a == b or (a, b) in seen:
                continue
            seen.add((a, b))
            edges.append(Triple(f"user{a}", predicate, f"user{b}"))
        return edges

    for triple in fresh_edges(initial_edges, 0):
        graph.add(triple)
    feed: List[List[Triple]] = []
    base = 0
    for _ in range(batches):
        base += drift
        feed.append(fresh_edges(edges_per_batch, base))
    return graph, feed
