"""Alternating Turing machines and the Theorem 6.15 reduction.

Theorem 6.15 shows that *warded Datalog∃ with minimal interaction* — the
mildest conceivable relaxation of wardedness — is already ExpTime-hard in data
complexity.  The proof simulates an alternating Turing machine ``M`` that uses
linear space on input ``I``: a database ``D_M`` (depending on ``M`` and ``I``)
encodes the initial configuration and the transition table, and a *fixed*
program (independent of ``M``) generates the configuration tree through
existential rules and propagates acceptance back to the initial configuration
``ι``.

This module provides:

* a small executable ATM model (:class:`AlternatingTuringMachine`) with a
  direct acceptance checker used as the ground truth;
* the database ``D_M`` and the fixed program of the reduction;
* :func:`atm_accepts_via_datalog`, which runs the reduction through the chase
  (with an explicit depth bound, since the configuration tree is infinite) and
  reads off ``accept(ι)``.

The machines used in tests and benchmarks halt within a handful of steps —
the construction is a lower-bound argument, so its cost is exponential by
design and only tiny instances are feasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.datalog.atoms import Atom
from repro.datalog.chase import ChaseEngine
from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.datalog.program import Program
from repro.datalog.terms import Constant

#: Cursor movements.
LEFT = -1
RIGHT = +1

#: Reserved state names.
ACCEPT_STATE = "s_accept"
REJECT_STATE = "s_reject"

#: The constant identifying the initial configuration.
INITIAL_CONFIGURATION = Constant("iota")

BLANK = "_"


@dataclass(frozen=True)
class Transition:
    """``delta(state, symbol) = ((s1, a1, m1), (s2, a2, m2))``.

    Alternation branches over exactly two successor configurations, matching
    the shape of the ``transition`` facts in the paper's reduction.
    """

    state: str
    symbol: str
    first: Tuple[str, str, int]
    second: Tuple[str, str, int]


@dataclass
class AlternatingTuringMachine:
    """A linear-space alternating Turing machine.

    ``existential_states`` / ``universal_states`` partition the non-final
    states; ``ACCEPT_STATE`` and ``REJECT_STATE`` are implicit members of the
    state set.  A configuration with no applicable transition rejects unless
    its state is ``ACCEPT_STATE``.
    """

    existential_states: FrozenSet[str]
    universal_states: FrozenSet[str]
    transitions: Tuple[Transition, ...]
    initial_state: str

    def transition_for(self, state: str, symbol: str) -> Optional[Transition]:
        """Return the transition applicable in ``state`` reading ``symbol``, if any."""
        for transition in self.transitions:
            if transition.state == state and transition.symbol == symbol:
                return transition
        return None

    # -- direct semantics -------------------------------------------------------

    def accepts(self, tape: Sequence[str], max_depth: int = 64) -> bool:
        """Direct recursive acceptance check (the ground truth for the reduction)."""
        return self._accepts(self.initial_state, 0, tuple(tape), max_depth)

    def _accepts(self, state: str, cursor: int, tape: Tuple[str, ...], budget: int) -> bool:
        if state == ACCEPT_STATE:
            return True
        if state == REJECT_STATE or budget <= 0:
            return False
        if cursor < 0 or cursor >= len(tape):
            return False
        transition = self.transition_for(state, tape[cursor])
        if transition is None:
            return False

        def follow(branch: Tuple[str, str, int]) -> bool:
            next_state, written, move = branch
            next_tape = tuple(
                written if i == cursor else symbol for i, symbol in enumerate(tape)
            )
            return self._accepts(next_state, cursor + move, next_tape, budget - 1)

        first = follow(transition.first)
        if state in self.existential_states:
            return first or follow(transition.second)
        second = follow(transition.second)
        return first and second


# ---------------------------------------------------------------------------
# The fixed program of Theorem 6.15
# ---------------------------------------------------------------------------

ATM_RULES = """
% ----- configuration tree -----------------------------------------------------
config(?V) -> exists ?V1 ?V2 .
    succ(?V, ?V1, ?V2), config(?V1), config(?V2), follows(?V, ?V1), follows(?V, ?V2).

% ----- auxiliary join predicate keeping the rules minimally interacting -------
state(?S, ?V), cursor(?C, ?V) -> state_cursor(?S, ?C, ?V).
state_cursor(?S, ?C, ?V), symbol(?A, ?C, ?V) -> state_cursor_symbol(?S, ?C, ?A, ?V).

% ----- transitions: four rules, one per pair of cursor moves -------------------
transition(?S, ?A, ?S1, ?A1, mleft, ?S2, ?A2, mright),
    succ(?V, ?V1, ?V2), state_cursor_symbol(?S, ?C, ?A, ?V),
    next_cell(?C1, ?C), next_cell(?C, ?C2) ->
    state(?S1, ?V1), state(?S2, ?V2),
    symbol(?A1, ?C, ?V1), symbol(?A2, ?C, ?V2),
    cursor(?C1, ?V1), cursor(?C2, ?V2).

transition(?S, ?A, ?S1, ?A1, mright, ?S2, ?A2, mleft),
    succ(?V, ?V1, ?V2), state_cursor_symbol(?S, ?C, ?A, ?V),
    next_cell(?C1, ?C), next_cell(?C, ?C2) ->
    state(?S1, ?V1), state(?S2, ?V2),
    symbol(?A1, ?C, ?V1), symbol(?A2, ?C, ?V2),
    cursor(?C2, ?V1), cursor(?C1, ?V2).

transition(?S, ?A, ?S1, ?A1, mleft, ?S2, ?A2, mleft),
    succ(?V, ?V1, ?V2), state_cursor_symbol(?S, ?C, ?A, ?V),
    next_cell(?C1, ?C) ->
    state(?S1, ?V1), state(?S2, ?V2),
    symbol(?A1, ?C, ?V1), symbol(?A2, ?C, ?V2),
    cursor(?C1, ?V1), cursor(?C1, ?V2).

transition(?S, ?A, ?S1, ?A1, mright, ?S2, ?A2, mright),
    succ(?V, ?V1, ?V2), state_cursor_symbol(?S, ?C, ?A, ?V),
    next_cell(?C, ?C2) ->
    state(?S1, ?V1), state(?S2, ?V2),
    symbol(?A1, ?C, ?V1), symbol(?A2, ?C, ?V2),
    cursor(?C2, ?V1), cursor(?C2, ?V2).

% ----- cells not under the cursor keep their symbols ----------------------------
state_cursor_symbol(?S, ?C, ?A, ?V), neq(?C, ?Cp), symbol(?Ap, ?Cp, ?V) ->
    next_symbol(?Cp, ?Ap, ?V).
follows(?V, ?Vp), next_symbol(?C, ?A, ?V) -> symbol(?A, ?C, ?Vp).

% ----- acceptance ----------------------------------------------------------------
state(s_accept, ?V) -> accept(?V).
follows(?V, ?Vp), state(?S, ?V) -> previous_state(?S, ?Vp).
succ(?V, ?V1, ?V2), accept(?V2) -> sibling_accept(?V1).
succ(?V, ?V1, ?V2), accept(?V1) -> sibling_accept(?V2).
accept(?V), sibling_accept(?V) -> both_siblings_accept(?V).
previous_state(?S, ?V), exists_state(?S), accept(?V) -> previous_accept(?V).
previous_state(?S, ?V), forall_state(?S), both_siblings_accept(?V) -> previous_accept(?V).
follows(?V, ?Vp), previous_accept(?Vp) -> accept(?V).
"""


def atm_program() -> Program:
    """The fixed program of the reduction (independent of the machine)."""
    return parse_program(ATM_RULES)


def atm_database(machine: AlternatingTuringMachine, tape: Sequence[str]) -> Database:
    """``D_M``: initial configuration, tape layout and transition table."""
    if not tape:
        raise ValueError("the input tape must contain at least one cell")
    database = Database()
    database.add(Atom("config", (INITIAL_CONFIGURATION,)))
    database.add(Atom("state", (Constant(machine.initial_state), INITIAL_CONFIGURATION)))
    database.add(Atom("cursor", (Constant("c1"), INITIAL_CONFIGURATION)))
    for index, symbol in enumerate(tape, start=1):
        database.add(
            Atom("symbol", (Constant(symbol), Constant(f"c{index}"), INITIAL_CONFIGURATION))
        )
    for index in range(1, len(tape)):
        database.add(Atom("next_cell", (Constant(f"c{index}"), Constant(f"c{index + 1}"))))
    for i in range(1, len(tape) + 1):
        for j in range(1, len(tape) + 1):
            if i != j:
                database.add(Atom("neq", (Constant(f"c{i}"), Constant(f"c{j}"))))
    for state in machine.existential_states:
        database.add(Atom("exists_state", (Constant(state),)))
    for state in machine.universal_states:
        database.add(Atom("forall_state", (Constant(state),)))
    for transition in machine.transitions:
        database.add(
            Atom(
                "transition",
                (
                    Constant(transition.state),
                    Constant(transition.symbol),
                    Constant(transition.first[0]),
                    Constant(transition.first[1]),
                    Constant("mleft" if transition.first[2] == LEFT else "mright"),
                    Constant(transition.second[0]),
                    Constant(transition.second[1]),
                    Constant("mleft" if transition.second[2] == LEFT else "mright"),
                ),
            )
        )
    return database


def atm_accepts_directly(machine: AlternatingTuringMachine, tape: Sequence[str], max_depth: int = 64) -> bool:
    """Ground truth via the direct recursive semantics."""
    return machine.accepts(tape, max_depth)


def atm_accepts_via_datalog(
    machine: AlternatingTuringMachine,
    tape: Sequence[str],
    depth: int = 6,
    max_steps: int = 500_000,
) -> bool:
    """Run the Theorem 6.15 reduction through the chase and check ``accept(ι)``.

    The configuration-tree rule makes the full chase infinite, so the chase is
    cut off at null depth ``depth`` (configurations reachable in at most
    ``depth`` machine steps).  The answer is therefore exact whenever the
    machine halts within ``depth`` steps on every branch — which is how the
    test machines are chosen.
    """
    program = atm_program()
    database = atm_database(machine, tape)
    engine = ChaseEngine(max_steps=max_steps, max_null_depth=depth, on_limit="stop")
    result = engine.chase(database, program)
    return Atom("accept", (INITIAL_CONFIGURATION,)) in result.instance
