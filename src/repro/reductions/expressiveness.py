"""Program expressive power (Section 7).

The classical notion of expressive power cannot separate warded Datalog∃ from
plain Datalog (every warded query is equivalent to some Datalog query), so the
paper introduces *program expressive power*: the set of triples
``(D, Λ, t)`` such that the query ``(Pi ∪ Λ, p)`` — ``Pi`` fixed, ``Λ`` a set
of output rules — derives ``t`` over ``D``.  Theorem 7.1 exhibits a warded
program whose program expressive power cannot be matched by any Datalog
program:

    ``Pi  = { p(X) → ∃Y s(X, Y) }``
    ``Λ1  = { s(X, Y) → q }``           ``Λ2 = { s(X, Y), p(Y) → q }``
    ``D   = { p(c) }``

``() ∈ Q1(D)`` but ``() ∉ Q2(D)`` for the warded ``Pi``; for *every* Datalog
program ``Pi'`` the two memberships coincide, so no Datalog program realises
the same set of triples.  This module builds the witnesses and provides the
coexistence check used by the Theorem 7.1 benchmark, which samples many small
Datalog programs and verifies the implication for each of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.warded_engine import WardedEngine
from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.datalog.program import Program, Query
from repro.datalog.semantics import INCONSISTENT, evaluate_query
from repro.datalog.terms import Constant


def pep_witness_program() -> Program:
    """``Pi = { p(?X) -> exists ?Y . s(?X, ?Y) }`` — warded, not Datalog."""
    return parse_program("p(?X) -> exists ?Y . s(?X, ?Y).")


def pep_output_rules() -> Tuple[Program, Program]:
    """``(Λ1, Λ2)``: the two sets of output rules of the Theorem 7.1 proof."""
    first = parse_program("s(?X, ?Y) -> q().")
    second = parse_program("s(?X, ?Y), p(?Y) -> q().")
    return first, second


def pep_witness_database() -> Database:
    """``D = { p(c) }``."""
    database = Database()
    database.add(Atom("p", (Constant("c"),)))
    return database


@dataclass
class PepSeparation:
    """The outcome of evaluating the two witness queries over ``D``."""

    q1_holds: bool
    q2_holds: bool

    @property
    def separates(self) -> bool:
        """Theorem 7.1 requires ``() ∈ Q1(D)`` and ``() ∉ Q2(D)``."""
        return self.q1_holds and not self.q2_holds


def warded_pep_separation() -> PepSeparation:
    """Evaluate ``Q1 = (Pi ∪ Λ1, q)`` and ``Q2 = (Pi ∪ Λ2, q)`` over ``D``."""
    base = pep_witness_program()
    lambda1, lambda2 = pep_output_rules()
    database = pep_witness_database()
    results = []
    for extra in (lambda1, lambda2):
        program = base.union(extra)
        engine = WardedEngine(program)
        answers = engine.evaluate_query(Query(program, "q", 0), database)
        results.append(answers is not INCONSISTENT and () in answers)
    return PepSeparation(q1_holds=results[0], q2_holds=results[1])


def datalog_pep_coexistence(program: Program, database: Optional[Database] = None) -> bool:
    """For a *Datalog* program ``Pi'``: ``() ∈ Q'1(D)`` implies ``() ∈ Q'2(D)``.

    The Theorem 7.1 proof observes this implication holds for every Datalog
    program, which forces ``(D, Λ1, ())`` and ``(D, Λ2, ())`` to coexist in
    every Datalog program's expressive power.  The benchmark samples random
    Datalog programs and checks the implication empirically via this helper.
    Raises ``ValueError`` when ``program`` is not plain Datalog (existential
    rules would defeat the purpose of the check).
    """
    if program.has_existentials:
        raise ValueError("datalog_pep_coexistence expects an existential-free program")
    database = database or pep_witness_database()
    lambda1, lambda2 = pep_output_rules()

    def holds(extra: Program) -> bool:
        full = program.union(extra)
        answers = evaluate_query(Query(full, "q", 0), database)
        return answers is not INCONSISTENT and () in answers

    return (not holds(lambda1)) or holds(lambda2)
