"""Hardness reductions and expressiveness constructions of the paper.

* :mod:`repro.reductions.clique` — Example 4.3: the TriQ 1.0 program deciding
  whether a graph contains a k-clique (the paper's evidence that TriQ 1.0 can
  express costly queries; used by the Theorem 4.4 ExpTime benchmark).
* :mod:`repro.reductions.atm` — alternating Turing machines and the reduction
  of Theorem 6.15 showing warded Datalog∃ *with minimal interaction* is
  ExpTime-hard in data complexity.
* :mod:`repro.reductions.expressiveness` — the program-expressive-power
  witnesses of Theorems 7.1 and 7.2.
"""

from repro.reductions.clique import (
    clique_program,
    clique_database,
    clique_query,
    contains_clique,
    contains_clique_bruteforce,
)
from repro.reductions.atm import (
    AlternatingTuringMachine,
    Transition,
    atm_program,
    atm_database,
    atm_accepts_directly,
    atm_accepts_via_datalog,
)
from repro.reductions.expressiveness import (
    pep_witness_program,
    pep_output_rules,
    pep_witness_database,
    warded_pep_separation,
    datalog_pep_coexistence,
)

__all__ = [
    "clique_program",
    "clique_database",
    "clique_query",
    "contains_clique",
    "contains_clique_bruteforce",
    "AlternatingTuringMachine",
    "Transition",
    "atm_program",
    "atm_database",
    "atm_accepts_directly",
    "atm_accepts_via_datalog",
    "pep_witness_program",
    "pep_output_rules",
    "pep_witness_database",
    "warded_pep_separation",
    "datalog_pep_coexistence",
]
