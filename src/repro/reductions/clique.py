"""Example 4.3: deciding k-cliques in TriQ 1.0.

The paper encodes an undirected graph ``G = (V, E)`` and an integer ``k`` in a
database::

    { node0(v) | v ∈ V } ∪ { edge0(v, w) | (v, w) ∈ E } ∪ { succ0(0,1), ..., succ0(k-1, k) }

and gives a fixed-per-k TriQ 1.0 query ``Q = (Pi_aux ∪ Pi_clique, yes)`` such
that ``G`` contains a k-clique iff ``Q(D) ≠ ∅``.  The program builds, through
existential rules, a tree of mappings ``[1, k] → V`` (of size ``n^k``) and
checks that some leaf maps onto a clique — which is why evaluation of TriQ 1.0
queries is ExpTime-hard in data complexity (Theorem 4.4; the benchmark
``bench_theorem44_exptime.py`` measures the blow-up empirically).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Set, Tuple

from repro.core.triq import TriQQuery
from repro.datalog.atoms import Atom
from repro.datalog.chase import ChaseEngine
from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.datalog.program import Program
from repro.datalog.semantics import INCONSISTENT
from repro.datalog.terms import Constant

#: The paper's program, verbatim (Pi_aux followed by Pi_clique).
CLIQUE_RULES = """
% ----- Pi_aux: the linear order on [0, k] ------------------------------------
succ0(?X, ?Y) -> less0(?X, ?Y).
succ0(?X, ?Y), less0(?Y, ?Z) -> less0(?X, ?Z).

less0(?X, ?Y) -> not_max(?X).
less0(?X, ?Y) -> not_min(?Y).
less0(?X, ?Y), not not_min(?X) -> zero0(?X).
less0(?Y, ?X), not not_max(?X) -> max0(?X).

% ----- Pi_aux: copy the database into the schema used by Pi_clique ------------
node0(?X) -> node(?X).
edge0(?X, ?Y) -> edge(?X, ?Y).
succ0(?X, ?Y) -> succ(?X, ?Y).
less0(?X, ?Y) -> less(?X, ?Y).
zero0(?X) -> zero(?X).
max0(?X) -> max(?X).

% ----- Pi_clique: the tree of mappings [1, i] -> V ------------------------------
zero(?X) -> exists ?Y . ism(?Y, ?X).
ism(?X, ?Y), succ(?Y, ?Z), node(?W) ->
    exists ?U . next(?X, ?W, ?U), ism(?U, ?Z), map(?U, ?Z, ?W).
next(?X, ?Y, ?Z), map(?X, ?U, ?V) -> map(?Z, ?U, ?V).

% ----- Pi_clique: detecting non-cliques and accepting ----------------------------
less(?X, ?Y), map(?Z, ?X, ?W), map(?Z, ?Y, ?U), not edge(?W, ?U) -> noclique(?Z).
less(?X, ?Y), map(?Z, ?X, ?W), map(?Z, ?Y, ?W) -> noclique(?Z).
ism(?X, ?Y), max(?Y), not noclique(?X) -> yes().
"""


def clique_program() -> Program:
    """The paper's program ``Pi_aux ∪ Pi_clique`` (independent of the data)."""
    return parse_program(CLIQUE_RULES)


def clique_query(validate: bool = True) -> TriQQuery:
    """The TriQ 1.0 query ``(Pi, yes)`` of Example 4.3."""
    return TriQQuery(clique_program(), "yes", output_arity=0, validate=validate)


def clique_database(edges: Iterable[Tuple[str, str]], k: int) -> Database:
    """Encode an undirected graph and the integer ``k`` as the database ``D``.

    Edges are given over arbitrary hashable vertex names; both orientations of
    every edge are stored since the graph is undirected.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    facts = []
    vertices: Set[str] = set()
    for source, target in edges:
        vertices.add(str(source))
        vertices.add(str(target))
        facts.append(Atom("edge0", (Constant(str(source)), Constant(str(target)))))
        facts.append(Atom("edge0", (Constant(str(target)), Constant(str(source)))))
    facts.extend(Atom("node0", (Constant(vertex),)) for vertex in sorted(vertices))
    facts.extend(
        Atom("succ0", (Constant(str(i)), Constant(str(i + 1)))) for i in range(k)
    )
    database = Database()
    database.bulk_load(facts)
    return database


def contains_clique(
    edges: Iterable[Tuple[str, str]],
    k: int,
    max_steps: int = 2_000_000,
) -> bool:
    """Decide k-clique containment by evaluating the Example 4.3 query.

    The evaluation materialises the full mapping tree (``n^k`` leaves), so
    keep ``n`` and ``k`` small — the exponential cost is the point of the
    construction, not an implementation accident.
    """
    edges = list(edges)
    database = clique_database(edges, k)
    query = clique_query()
    engine = ChaseEngine(max_steps=max_steps, on_limit="raise")
    result = query.evaluate(database, engine)
    if result is INCONSISTENT:
        raise RuntimeError("the clique program has no constraints; ⊤ is impossible")
    return () in result


def contains_clique_bruteforce(edges: Iterable[Tuple[str, str]], k: int) -> bool:
    """Reference implementation: enumerate all k-subsets of vertices."""
    adjacency: Set[Tuple[str, str]] = set()
    vertices: Set[str] = set()
    for source, target in edges:
        source, target = str(source), str(target)
        vertices.add(source)
        vertices.add(target)
        adjacency.add((source, target))
        adjacency.add((target, source))
    if k == 1:
        return bool(vertices)
    for subset in itertools.combinations(sorted(vertices), k):
        if all(
            (a, b) in adjacency for a, b in itertools.combinations(subset, 2)
        ):
            return True
    return False
