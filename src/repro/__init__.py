"""repro: a reproduction of "Expressive Languages for Querying the Semantic Web".

The library implements the TriQ 1.0 and TriQ-Lite 1.0 query languages of
Arenas, Gottlob and Pieris, together with every substrate they rest on: a
Datalog∃,¬s,⊥ engine (chase, semi-naive evaluation, stratification), the
guardedness/wardedness analysis, an RDF data model, the SPARQL algebra, OWL 2
QL core with its DL-Lite_R entailment, the SPARQL→Datalog translations, the
entailment-regime encodings, and a materialized-view query service.

Quickstart::

    import repro

    engine = repro.Engine(repro.EngineConfig(mode="batch"))
    program = '''
        triple(?X, partOf, transportService) -> ts(?X).
        triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
        ts(?T), triple(?X, ?T, ?Y) -> connected(?X, ?Y).
        ts(?T), triple(?X, ?T, ?Z), connected(?Z, ?Y) -> connected(?X, ?Y).
    '''
    db = repro.Database([repro.parse_atom('triple(Oxford, A311, London)')])
    answers = engine.evaluate(program, "connected", db)

Configuration is programmatic (:class:`Engine` / :class:`EngineConfig`); the
``REPRO_ENGINE_MODE`` / ``REPRO_ENGINE_PARALLEL`` environment variables
remain supported as lazy fallbacks, read at first use.  See ``docs/api.md``
for the facade reference and the deprecation table.
"""

__version__ = "1.1.0"

# -- the facade (start here) ------------------------------------------------
from repro.api import Engine, EngineConfig, configure

# -- the data model ---------------------------------------------------------
from repro.datalog import (
    Atom,
    Constant,
    Constraint,
    Database,
    INCONSISTENT,
    Instance,
    Null,
    Program,
    Query,
    Rule,
    Variable,
    parse_atom,
    parse_program,
    parse_rule,
)

# -- query languages and analysis -------------------------------------------
from repro.analysis import classify_program
from repro.core import (
    TriQLiteQuery,
    TriQQuery,
    WardedEngine,
    evaluate,
    extract_proof_tree,
)

# -- streaming (imported last: builds on the datalog layer above) -----------
from repro.engine.incremental import DeltaSession, PushResult

__all__ = [
    # The facade — the supported entry points for new code.
    "Engine",
    "EngineConfig",
    "configure",
    "__version__",
    # Data model.
    "Atom",
    "Constant",
    "Constraint",
    "Database",
    "INCONSISTENT",
    "Instance",
    "Null",
    "Program",
    "Query",
    "Rule",
    "Variable",
    "parse_atom",
    "parse_program",
    "parse_rule",
    # Query languages and analysis.
    "TriQLiteQuery",
    "TriQQuery",
    "WardedEngine",
    "classify_program",
    "evaluate",
    "extract_proof_tree",
    # Streaming.
    "DeltaSession",
    "PushResult",
    # Service layer (lazy — see __getattr__).
    "MaterializedView",
    "QueryService",
    # Deprecated shims (prefer Engine / EngineConfig).
    "set_execution_mode",
    "set_worker_count",
]

# The service layer pulls in asyncio plumbing nobody pays for unless they
# serve; same lazy re-export pattern as repro.engine's incremental exports.
_SERVICE_EXPORTS = ("MaterializedView", "QueryService")

# Legacy module-level configuration entry points, kept as thin shims over
# the same state the facade writes.  New code should use Engine/EngineConfig
# (or repro.configure); these delegate unchanged so existing call sites and
# the env-var workflow keep working byte-identically.
_DEPRECATED_SHIMS = ("set_execution_mode", "set_worker_count")


def __getattr__(name: str):
    if name in _SERVICE_EXPORTS:
        from repro import service

        return getattr(service, name)
    if name in _DEPRECATED_SHIMS:
        from repro.engine import mode

        return getattr(mode, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_SERVICE_EXPORTS) | set(_DEPRECATED_SHIMS))
