"""repro: a reproduction of "Expressive Languages for Querying the Semantic Web".

The library implements the TriQ 1.0 and TriQ-Lite 1.0 query languages of
Arenas, Gottlob and Pieris, together with every substrate they rest on: a
Datalog∃,¬s,⊥ engine (chase, semi-naive evaluation, stratification), the
guardedness/wardedness analysis, an RDF data model, the SPARQL algebra, OWL 2
QL core with its DL-Lite_R entailment, the SPARQL→Datalog translations, and
the entailment-regime encodings.

Quickstart::

    from repro import parse_program, Database, parse_atom, evaluate

    program = '''
        triple(?X, partOf, transportService) -> ts(?X).
        triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
        ts(?T), triple(?X, ?T, ?Y) -> connected(?X, ?Y).
        ts(?T), triple(?X, ?T, ?Z), connected(?Z, ?Y) -> connected(?X, ?Y).
    '''
    db = Database([parse_atom('triple(Oxford, A311, London)'), ...])
    answers = evaluate(program, "connected", db)
"""

__version__ = "1.0.0"

from repro.datalog import (
    Atom,
    Constant,
    Constraint,
    Database,
    INCONSISTENT,
    Instance,
    Null,
    Program,
    Query,
    Rule,
    Variable,
    parse_atom,
    parse_program,
    parse_rule,
)
from repro.analysis import classify_program
from repro.core import (
    TriQLiteQuery,
    TriQQuery,
    WardedEngine,
    evaluate,
    extract_proof_tree,
)

# Imported last: the streaming subsystem builds on the datalog layer above.
from repro.engine.incremental import DeltaSession, PushResult

__all__ = [
    "DeltaSession",
    "PushResult",
    "__version__",
    "Atom",
    "Constant",
    "Constraint",
    "Database",
    "INCONSISTENT",
    "Instance",
    "Null",
    "Program",
    "Query",
    "Rule",
    "Variable",
    "parse_atom",
    "parse_program",
    "parse_rule",
    "classify_program",
    "TriQLiteQuery",
    "TriQQuery",
    "WardedEngine",
    "evaluate",
    "extract_proof_tree",
]
