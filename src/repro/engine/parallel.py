"""The sharded multi-process fixpoint executor.

:mod:`repro.engine.shard` defines *what* a worker computes — the matches of
one plan whose step-0 candidates fall in the worker's hash shard, tagged
with global insertion ordinals so the streams merge back into single-process
order.  This module runs that scheme across a pool of ``fork``-started
worker processes and exposes it to the engines as a drop-in replacement for
:meth:`CompiledRule.trigger_row_batches <repro.engine.plan.CompiledRule.trigger_row_batches>`:

* **Workers hold replicas, the parent holds the truth.**  Each worker keeps
  an encoded replica (ID rows + postings, no Atom objects) plus the
  :class:`~repro.engine.shard.ShardedInstance` shard it owns.  The parent
  never ships whole instances per round: a :class:`ParallelSession` tracks
  per-predicate row counts plus a tombstone-log watermark and broadcasts
  only the rows appended — and the deletions logged — since the last sync.
  Every parent row of the window is shipped in per-predicate row order
  (tombstoned ones as dead placeholders), so replica row ids stay
  parent-aligned even across :meth:`DeltaSession.retract
  <repro.engine.incremental.DeltaSession.retract>` calls.
* **The wire format is columnar.**  Facts cross the process boundary as one
  flat int array of term IDs (``[pred, arity, gid, ids...]`` per live fact,
  ``[pred, -1]`` per dead placeholder, 4-byte entries unless IDs overflow),
  one flat array of ``[pred, row_id, gid]`` deletion triples replayed from
  :attr:`PredicateIndex.tombstone_log
  <repro.engine.index.PredicateIndex.tombstone_log>`, plus
  an **incremental dictionary delta** — the term-table suffix
  (:meth:`~repro.engine.interning.TermTable.delta_since`) the workers have
  not replayed yet.  Gids travel explicitly because deletions leave ordinal
  gaps a replica-side counter could not reproduce.  Each constant string is
  pickled once per pool lifetime, not once per fact occurrence; match
  results come back the same way (gid arrays + flat slot-ID arrays).  The
  parent counts every payload byte in ``STATS.parallel_bytes_shipped``.
* **Shared memory makes the replicas zero-copy.**  When POSIX shared memory
  is available (the default; ``REPRO_SHM=0`` forces the pickled protocol),
  the parent *promotes* every predicate's
  :class:`~repro.engine.colbuf.ColumnBuffer` into a shared segment and the
  sync message shrinks to a **segment table** — ``(predicate, name,
  capacity, positions, watermark)`` rows plus the dictionary delta and the
  tombstone-log suffix (now 4-int ``[pred, row_id, gid, arity]`` records).
  Workers attach the segments read-only and build their shard gid lists
  directly from the shared columns (the gid column travels inside the
  buffer, so no per-fact append stream crosses the wire at all), and replay
  deletions by reading the still-present values of tombstoned rows.  With
  the CSR seal protocol (the default; ``REPRO_CSR=0`` disables it) workers
  do not even rebuild postings: the parent seals its list buckets into a
  flat per-``(predicate, position)`` CSR layout
  (:class:`~repro.engine.index.CsrSealer`) — one shared segment per sync,
  covering only the lanes dirtied since the watermark — and workers attach
  it zero-copy (:class:`~repro.engine.index.CsrStore`), which drives the
  per-sync ``STATS.postings_rebuilt`` pass to 0.  Match results come back
  through a **pooled per-worker result segment** (grow-by-doubling, reused
  across tasks) once they reach :func:`shm_result_min` (default 0: every
  result skips the pipe), counted in ``STATS.parallel_shm_bytes``; only
  the residual control traffic stays in ``STATS.parallel_bytes_shipped``.
  Reads and writes never race: the parent only mutates shared buffers
  between dispatches, workers only read between a sync and their match
  reply, and the broadcast/collect-all cycle means a worker never rewrites
  its result segment before the parent consumed the previous task.
  ``shutdown_pool`` demotes every promoted buffer back to the heap, which
  is what keeps ``/dev/shm`` clean across pool retirements and term-table
  epoch resets.
* **Matching is distributed, firing is not.**  A match task asks every
  worker for its shard's slice of one rule's trigger batches (the full join
  of a naive round, or the viable pivots of a delta round, whose candidate
  window is the delta's contiguous ordinal range in the parent instance).
  The parent merges the shard streams by ordinal
  (:func:`~repro.engine.shard.merge_sharded`), applies the frozen-snapshot
  negation pre-filter, and the engine fires heads / invents nulls / updates
  counters sequentially exactly as in batch mode — which is what makes
  results, null sequences, and the mode-independent counters byte-identical
  across ``row``, ``batch``, and ``parallel``.
* **Small work never pays IPC.**  A dispatch whose estimated step-0
  candidate count is below :func:`parallel_threshold` (default 4096,
  ``REPRO_PARALLEL_THRESHOLD``) runs the in-process batch executor instead;
  the fallback is counted in ``STATS.parallel_fallbacks`` and — because all
  executors agree match-for-match — never observable in results.

The pool is process-global and lazy: nothing is forked until the first
dispatch actually crosses the threshold, sessions re-arm it when another
session (e.g. a nested engine run) used it in between, and the pool survives
across engine runs so repeated materialisations pay the fork cost once.
Worker term tables are never cleared: the parent's table is append-only, so
every session's dictionary deltas extend the same replayed prefix and the
pool-level high-water mark (:attr:`WorkerPool.synced_terms`) persists across
sessions.  Platforms without the ``fork`` start method degrade to the
in-process batch path transparently.
"""

from __future__ import annotations

import atexit
import os
import pickle
import time
from array import array
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.engine import interning
from repro.engine.colbuf import (
    ColumnBuffer,
    _registration_suppressed,
    _segment_name,
    demote_all,
)
from repro.engine.index import CsrSealer, CsrStore, PredicateIndex
from repro.engine.interning import TERMS
from repro.engine.mode import get_worker_count, parallel_enabled
from repro.engine.shard import ShardedInstance, merge_sharded, run_batch_sharded
from repro.engine.stats import STATS
from repro.obs.trace import TRACER

if TYPE_CHECKING:  # pragma: no cover - import cycle: database builds on engine
    from repro.datalog.database import Instance

# None = not resolved yet: REPRO_PARALLEL_THRESHOLD is read lazily at first
# use (matching repro.engine.mode), never at import time.
_threshold: Optional[int] = None

#: Seconds the parent waits for one worker's match result before declaring
#: the pool wedged (generous: match tasks are pure in-memory joins).
_RESULT_TIMEOUT = 300.0


def parallel_threshold() -> int:
    """Step-0 candidate estimate below which dispatches stay in-process."""
    global _threshold
    if _threshold is None:
        raw = os.environ.get("REPRO_PARALLEL_THRESHOLD") or None
        _threshold = int(raw) if raw else 4096
    return _threshold


def set_parallel_threshold(threshold: int) -> None:
    """Set the dispatch cost threshold for this process."""
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    global _threshold
    _threshold = threshold


@contextmanager
def parallel_threshold_override(threshold: int) -> Iterator[None]:
    """Temporarily force/relax dispatch (the parity tests use 0)."""
    previous = parallel_threshold()
    set_parallel_threshold(threshold)
    try:
        yield
    finally:
        set_parallel_threshold(previous)


# None = not resolved yet: REPRO_SHM is read lazily at first use so test
# harnesses can set it after import.
_shm_mode: Optional[bool] = None


def shm_enabled() -> bool:
    """True iff sessions ship shared-memory segment tables instead of rows.

    ``REPRO_SHM=0`` forces the pickled wire protocol (the CI matrix runs a
    leg this way); anything else means "use shared memory when the platform
    provides it" — a failed segment creation still degrades per session.
    """
    global _shm_mode
    if _shm_mode is None:
        _shm_mode = os.environ.get("REPRO_SHM") != "0"
    return _shm_mode


def set_shm_enabled(flag: bool) -> None:
    """Force the sync protocol choice for this process (tests)."""
    global _shm_mode
    _shm_mode = bool(flag)


@contextmanager
def shm_override(flag: bool) -> Iterator[None]:
    """Temporarily force/disable the shared-memory protocol (tests)."""
    previous = shm_enabled()
    set_shm_enabled(flag)
    try:
        yield
    finally:
        set_shm_enabled(previous)


# None = not resolved yet: REPRO_CSR is read lazily at first use so test
# harnesses can set it after import.
_csr_mode: Optional[bool] = None


def csr_enabled() -> bool:
    """True iff shared-memory sessions seal postings to CSR for the workers.

    ``REPRO_CSR=0`` keeps the PR 9 behaviour — workers rebuild their
    postings dicts from the shared gid lane every sync (the benchmark
    probes run both legs to measure the delta).  Only consulted on the
    shared-memory protocol; the pickled protocol always rebuilds.
    """
    global _csr_mode
    if _csr_mode is None:
        _csr_mode = os.environ.get("REPRO_CSR") != "0"
    return _csr_mode


def set_csr_enabled(flag: bool) -> None:
    """Force the CSR seal protocol choice for this process (tests).

    Takes effect at the next session arm: a session resolves the choice at
    its first sync and keeps it (a mid-session switch would leave workers
    with half-built postings), and fork-inherited worker state means tests
    should ``shutdown_pool()`` before toggling.
    """
    global _csr_mode
    _csr_mode = bool(flag)


@contextmanager
def csr_override(flag: bool) -> Iterator[None]:
    """Temporarily force/disable the CSR seal protocol (tests, benchmarks)."""
    previous = csr_enabled()
    set_csr_enabled(flag)
    try:
        yield
    finally:
        set_csr_enabled(previous)


# None = not resolved yet: REPRO_SHM_RESULT_MIN is read lazily at first use
# (in the worker process, so the env var must be set before the pool forks).
_shm_result_min: Optional[int] = None


def shm_result_min() -> int:
    """Result payload bytes below which workers use the pipe, not the ring.

    ``REPRO_SHM_RESULT_MIN`` (default 0): with the pooled per-worker result
    segment the per-result cost is one memcpy — no create/open/unlink churn
    — so even tiny results default to shared memory and the pipe carries
    only control tuples.  Raising it restores pipe shipping for small
    results (the lifecycle tests exercise both sides).  Workers resolve it
    lazily from their fork-inherited environment; parent-side setters only
    affect pools forked afterwards.
    """
    global _shm_result_min
    if _shm_result_min is None:
        raw = os.environ.get("REPRO_SHM_RESULT_MIN")
        try:
            _shm_result_min = int(raw) if raw else 0
        except ValueError:
            _shm_result_min = 0
    return _shm_result_min


def set_shm_result_min(n_bytes: int) -> None:
    """Pin the result-ring threshold for this process (tests, EngineConfig)."""
    if n_bytes < 0:
        raise ValueError(f"result shm threshold must be >= 0, got {n_bytes}")
    global _shm_result_min
    _shm_result_min = int(n_bytes)


# ---------------------------------------------------------------------------
# Columnar wire helpers
# ---------------------------------------------------------------------------


def _int_array(values) -> array:
    """An int array at the narrowest safe width (4-byte unless IDs overflow).

    Term IDs and ordinals are small in practice; a fixed ``'q'`` would ship
    8 bytes per slot where the old object pickles paid ~5 per memo
    reference, losing the byte-volume war the columnar format exists to
    win.  The typecode travels inside the array's pickle, so the receiver
    is width-agnostic.
    """
    arr = array("i")
    try:
        arr.extend(values)
        return arr
    except OverflowError:
        return array("q", values)


def _pack_parts(
    parts: List[Tuple[List[int], List[Tuple[int, ...]]]],
) -> List[Tuple[array, int, array]]:
    """Flatten per-plan (gids, slot-ID rows) into int-array columns."""
    packed = []
    for gids, rows in parts:
        width = len(rows[0]) if rows else 0
        flat = []
        for row in rows:
            flat.extend(row)
        packed.append((_int_array(gids), width, _int_array(flat)))
    return packed


def _unpack_parts(
    packed: Sequence[Tuple[array, int, array]],
) -> List[Tuple[List[int], List[Tuple[int, ...]]]]:
    """Rebuild (gids, slot-ID rows) lists from the flat wire columns."""
    parts = []
    for gids_arr, width, flat in packed:
        gids = list(gids_arr)
        if width:
            it = iter(flat)
            rows: List[Tuple[int, ...]] = list(zip(*([it] * width)))
        else:
            rows = [()] * len(gids)
        parts.append((gids, rows))
    return parts


class _ResultRing:
    """A worker's persistent result segment, reused across match tasks.

    The one-shot predecessor paid a create + open + unlink syscall round per
    result, which only amortised above 256 KB — everything smaller stayed
    on the pipe.  The ring keeps **one** worker-owned segment alive for the
    pool's lifetime and grows it by doubling when a payload outsizes it, so
    shipping a result is a single memcpy and even tiny payloads skip the
    pipe (see :func:`shm_result_min`).

    Reuse is safe because the match protocol is broadcast → collect-all →
    next-task: the parent has consumed a task's payload from every worker
    before any worker receives the next task, so a worker never overwrites
    bytes the parent still needs.  The worker stays the registered creator
    (its resource tracker reclaims the segment if the process dies); on
    regrow the old segment is unlinked immediately — the parent's stale
    mapping stays readable until it notices the new name and closes it.
    """

    __slots__ = ("_shm", "_capacity", "_broken")

    def __init__(self) -> None:
        self._shm = None
        self._capacity = 0
        self._broken = False

    def ship(self, payload: bytes) -> Optional[Tuple[str, int]]:
        """Stage ``payload`` in the ring; ``(name, size)``, or None = pipe."""
        size = len(payload)
        if self._broken or size < shm_result_min():
            return None
        if self._capacity < size:
            try:
                from multiprocessing import shared_memory

                capacity = max(self._capacity, 1 << 16)
                while capacity < size:
                    capacity *= 2
                fresh = shared_memory.SharedMemory(
                    create=True, size=capacity, name=_segment_name("res")
                )
            except Exception:  # pragma: no cover - /dev/shm unavailable or full
                self._broken = True
                return None
            self.close(unlink=True)
            self._shm = fresh
            self._capacity = capacity
        self._shm.buf[:size] = payload
        return (self._shm.name, size)

    def close(self, unlink: bool) -> None:
        """Drop the segment (idempotent); ``unlink`` retires the name too."""
        shm, self._shm = self._shm, None
        self._capacity = 0
        if shm is None:
            return
        try:
            shm.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass
        if unlink:
            try:
                shm.unlink()
            except Exception:  # pragma: no cover - teardown best effort
                pass


class _Replica:
    """A worker's encoded mirror of the parent instance.

    Holds only what matching needs: the ID-row index and the insertion
    counter (replica ordinals equal parent ordinals because sync messages
    arrive in global insertion order).  No Atom is ever materialised — the
    decoded view is a parent-side, result-boundary concern.
    """

    __slots__ = ("_index",)

    def __init__(self) -> None:
        self._index = PredicateIndex()

    def add_encoded(self, predicate: str, ids: Tuple[int, ...]) -> None:
        """Append one (parent-deduplicated) encoded fact.

        The fact's global ordinal travels explicitly on the wire (deleted
        facts leave ordinal gaps, so a replica-side counter would drift);
        the replica itself only needs parent-aligned *row ids*, which the
        append order guarantees.
        """
        self._index.add_encoded(predicate, ids)

    def _plan_source(self):
        """(index, row limits) pair the join-plan executor runs against."""
        return self._index, None


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _worker_main(worker_id: int, n_workers: int, task_queue, result_queue) -> None:
    """The worker loop: maintain an encoded replica + shard, answer match tasks.

    Rules are compiled locally (plan compilation is deterministic and interns
    only constants the parent interned first, so worker plans are
    slot-for-slot and ID-for-ID identical to the parent's).
    """
    from repro.engine.plan import compile_rule

    replica = _Replica()
    sharded = ShardedInstance(n_workers, keep=worker_id)
    shard = sharded.shard(worker_id)
    rules: List = []
    compiled: Dict[int, object] = {}
    #: predicate -> the attached ColumnBuffer view of the parent's segment
    #: (shared-memory protocol only; empty under the pickled protocol).
    attached: Dict[str, ColumnBuffer] = {}
    #: Sealed CSR postings attached from the parent (CSR protocol only).
    csr_store = CsrStore()
    #: The pooled result segment this worker ships match payloads through.
    ring = _ResultRing()
    #: Rows (re)posted into this worker's postings dicts since the last
    #: match reply — folded into the parent's ``STATS.postings_rebuilt``
    #: per reply (the per-match ``STATS.reset()`` wipes module globals, so
    #: the count lives in a loop local).
    postings_rebuilt = 0

    def detach_all() -> None:
        for cols in attached.values():
            cols.detach()
        attached.clear()
        csr_store.release_all()

    #: A failed sync (e.g. a dictionary-delta divergence) leaves the replica
    #: suspect: the diagnostic is held here and reported on the next match
    #: task instead of killing the process with the message unread.
    sync_error: Optional[str] = None
    while True:
        message = task_queue.get()
        tag = message[0]
        if tag == "sync":
            # The payload is pickled once in the parent (a broadcast would
            # otherwise pickle the same columns once per worker): the term
            # dictionary delta, the message's predicate name table, the flat
            # [pred, arity, gid, ids...] append stream in per-predicate row
            # order (arity -1 = dead placeholder, no gid), and the
            # [pred, row_id, gid] deletion triples replayed from the
            # parent's tombstone log.  Appends land first so deletion row
            # ids are always in range; the replay guard skips rows that are
            # already dead, which makes full-log replay after a replica
            # reset a no-op rather than an error.
            try:
                c_start, consts, n_start, nulls, preds, stream, deletions = (
                    pickle.loads(message[1])
                )
                TERMS.apply_delta(c_start, n_start, consts, nulls)
                cursor = 0
                end = len(stream)
                while cursor < end:
                    predicate = preds[stream[cursor]]
                    arity = stream[cursor + 1]
                    if arity < 0:
                        replica._index.add_dead(predicate)
                        cursor += 2
                        continue
                    gid = stream[cursor + 2]
                    ids = tuple(stream[cursor + 3 : cursor + 3 + arity])
                    cursor += 3 + arity
                    replica.add_encoded(predicate, ids)
                    postings_rebuilt += 1
                    sharded.ingest_encoded(predicate, ids, gid)
                cursor = 0
                end = len(deletions)
                while cursor < end:
                    predicate = preds[deletions[cursor]]
                    row_id = deletions[cursor + 1]
                    gid = deletions[cursor + 2]
                    cursor += 3
                    replica._index.tombstone_row(predicate, row_id)
                    if gid >= 0:
                        shard.tombstone_gid(predicate, gid)
            except Exception as error:
                sync_error = f"sync failed: {type(error).__name__}: {error}"
        elif tag == "sync2":
            # The shared-memory protocol: no fact rows on the wire at all.
            # The payload carries the dictionary delta, a segment table
            # (predicate, name, capacity, positions, watermark), the
            # predicate name table, 4-int [pred, row_id, gid, arity]
            # deletion records, and the CSR seal descriptor (None on
            # non-CSR sessions).  The worker attaches each segment (or just
            # advances its watermark when the name is unchanged) and builds
            # its shard gid lists straight off the shared columns.  Without
            # CSR it also posts the fresh rows into its local postings and
            # replays deletions against them; with CSR neither pass runs —
            # probes resolve against the attached seal chunks, which the
            # parent already rebuilt for any lane a deletion dirtied.
            try:
                (
                    c_start,
                    consts,
                    n_start,
                    nulls,
                    segments,
                    preds,
                    deletions,
                    csr,
                ) = pickle.loads(message[1])
                TERMS.apply_delta(c_start, n_start, consts, nulls)
                use_csr = csr is not None
                starts: Dict[str, int] = {}
                for predicate, name, capacity, n_positions, n_rows in segments:
                    prev = attached.get(predicate)
                    if prev is not None and prev.segment[0] == name:
                        start = prev.n_rows
                        prev.advance(n_rows)
                        cols = prev
                    else:
                        # First sight of the predicate, or the parent
                        # regrew it into a fresh segment (row ids are
                        # stable across regrows, so posting continues from
                        # the old watermark).
                        start = prev.n_rows if prev is not None else 0
                        if prev is not None:
                            prev.detach()
                        cols = ColumnBuffer.attach(name, capacity, n_positions, n_rows)
                        attached[predicate] = cols
                    starts[predicate] = start
                    if use_csr:
                        replica._index.attach_cols(predicate, cols)
                    else:
                        replica._index.index_attached(predicate, cols, start)
                        postings_rebuilt += n_rows - start
                    arities = cols.arities
                    gid_column = cols.gids
                    for row_id in range(start, n_rows):
                        arity = arities[row_id]
                        if arity < 0:
                            continue
                        sharded.ingest_encoded(
                            predicate,
                            cols.values_at(row_id, arity),
                            gid_column[row_id],
                        )
                if use_csr:
                    seal_name, seal_values, directory = csr
                    if seal_name is not None:
                        csr_store.apply(seal_name, seal_values, preds, directory)
                    replica._index.csr = csr_store
                cursor = 0
                end = len(deletions)
                while cursor < end:
                    predicate = preds[deletions[cursor]]
                    row_id = deletions[cursor + 1]
                    gid = deletions[cursor + 2]
                    arity = deletions[cursor + 3]
                    cursor += 4
                    if not use_csr and row_id < starts.get(predicate, 0):
                        replica._index.unlink_dead(predicate, row_id, arity)
                    if gid >= 0:
                        shard.tombstone_gid(predicate, gid)
            except Exception as error:
                sync_error = f"sync failed: {type(error).__name__}: {error}"
        elif tag == "match":
            _, task_id, rule_id, spec = message
            if sync_error is not None:
                result_queue.put(("err", task_id, worker_id, sync_error))
                continue
            try:
                crule = compiled.get(rule_id)
                if crule is None:
                    crule = compiled[rule_id] = compile_rule(rules[rule_id])
                STATS.reset()
                parts: List[Tuple[List[int], List[Tuple]]] = []
                if spec[0] == "full":
                    parts.append(run_batch_sharded(crule.plan, shard, replica))
                else:
                    _, gid_lo, gid_hi, pivots = spec
                    for pivot in pivots:
                        parts.append(
                            run_batch_sharded(
                                crule.pivot_plans[pivot], shard, replica, gid_lo, gid_hi
                            )
                        )
                payload = pickle.dumps(
                    _pack_parts(parts), pickle.HIGHEST_PROTOCOL
                )
                shipped = ring.ship(payload)
                if shipped is not None:
                    result_queue.put(
                        (
                            "shm",
                            task_id,
                            worker_id,
                            shipped[0],
                            shipped[1],
                            STATS.batch_probe_groups,
                            postings_rebuilt,
                        )
                    )
                else:
                    result_queue.put(
                        (
                            "ok",
                            task_id,
                            worker_id,
                            payload,
                            STATS.batch_probe_groups,
                            postings_rebuilt,
                        )
                    )
                postings_rebuilt = 0
            except Exception as error:  # pragma: no cover - defensive
                result_queue.put(
                    ("err", task_id, worker_id, f"{type(error).__name__}: {error}")
                )
        elif tag == "reset":
            detach_all()
            replica = _Replica()
            sharded = ShardedInstance(n_workers, keep=worker_id)
            shard = sharded.shard(worker_id)
            rules = message[1]
            compiled = {}
            sync_error = None
        elif tag == "clear":
            detach_all()
            replica = _Replica()
            sharded = ShardedInstance(n_workers, keep=worker_id)
            shard = sharded.shard(worker_id)
            rules = []
            compiled = {}
            sync_error = None
        elif tag == "stop":
            detach_all()
            ring.close(unlink=True)
            return


# ---------------------------------------------------------------------------
# Parent side: the pool
# ---------------------------------------------------------------------------


class WorkerPool:
    """N fork-started workers, one task pipe each, one shared result queue."""

    def __init__(self, n_workers: int):
        import multiprocessing

        context = multiprocessing.get_context("fork")
        self.n_workers = n_workers
        self.task_queues = [context.SimpleQueue() for _ in range(n_workers)]
        self.result_queue = context.Queue()
        #: Per-kind term-table counts the workers hold (fork inherits the
        #: table; dictionary deltas extend it from here, across sessions).
        self.synced_terms: Tuple[int, int] = TERMS.counts()
        self.processes = [
            context.Process(
                target=_worker_main,
                args=(worker_id, n_workers, self.task_queues[worker_id], self.result_queue),
                daemon=True,
                name=f"repro-shard-{worker_id}",
            )
            for worker_id in range(n_workers)
        ]
        for process in self.processes:
            process.start()
        self._task_counter = 0
        #: The session whose replica state the workers currently hold.
        self.current_session: Optional["ParallelSession"] = None
        #: worker_id -> (segment name, mapping) of that worker's pooled
        #: result ring — attached once and reused until the worker regrows
        #: the ring under a new name (the worker owns every unlink).
        self._result_segments: Dict[int, Tuple[str, object]] = {}

    def broadcast(self, message) -> None:
        """Send one message to every worker's task queue."""
        for queue in self.task_queues:
            queue.put(message)

    def _read_result(self, worker_id: int, name: str, size: int) -> bytes:
        """One worker's result payload out of its pooled ring segment.

        The mapping is cached per worker (suppressed registration — the
        worker is the creator) and replaced only when the ring regrew into
        a fresh name; the steady state is a single memcpy per result with
        no segment syscalls at all.
        """
        cached = self._result_segments.get(worker_id)
        if cached is None or cached[0] != name:
            from multiprocessing import shared_memory

            if cached is not None:
                try:
                    cached[1].close()
                except Exception:  # pragma: no cover - teardown best effort
                    pass
            with _registration_suppressed():
                shm = shared_memory.SharedMemory(name=name)
            cached = self._result_segments[worker_id] = (name, shm)
        return bytes(cached[1].buf[:size])

    def match(self, rule_id: int, spec) -> List[List[Tuple[List[int], List[Tuple]]]]:
        """Run one match task on every worker; per-worker payloads, by id."""
        self._task_counter += 1
        task_id = self._task_counter
        self.broadcast(("match", task_id, rule_id, spec))
        payloads: List[Optional[List]] = [None] * self.n_workers
        pending = self.n_workers
        probe_groups = 0
        rebuilt = 0
        waited = 0.0
        while pending:
            # Short poll intervals so a crashed worker (segfault, OOM kill)
            # fails the dispatch within ~a second instead of stalling for
            # the whole deadline.
            try:
                result = self.result_queue.get(timeout=1.0)
            except Exception:
                waited += 1.0
                dead = [p.name for p in self.processes if not p.is_alive()]
                if dead:
                    raise RuntimeError(
                        f"parallel worker(s) died mid-task: {', '.join(dead)}"
                    ) from None
                if waited >= _RESULT_TIMEOUT:
                    raise RuntimeError(
                        "parallel executor timed out waiting for workers"
                    ) from None
                continue
            if result[0] == "err":
                raise RuntimeError(
                    f"parallel worker {result[2]} failed on task {result[1]}: {result[3]}"
                )
            if result[0] == "shm":
                _, result_task, worker_id, segment_name, size, groups, posted = result
                payload = self._read_result(worker_id, segment_name, size)
                STATS.parallel_shm_bytes += size
            else:
                _, result_task, worker_id, payload, groups, posted = result
                STATS.parallel_bytes_shipped += len(payload)
            if result_task != task_id:  # pragma: no cover - protocol guard
                raise RuntimeError(
                    f"parallel protocol error: expected task {task_id}, got {result_task}"
                )
            payloads[worker_id] = _unpack_parts(pickle.loads(payload))
            probe_groups += groups
            rebuilt += posted
            pending -= 1
        STATS.batch_probe_groups += probe_groups
        STATS.postings_rebuilt += rebuilt
        return payloads  # type: ignore[return-value]

    def shutdown(self) -> None:
        """Stop every worker (best effort; terminates stragglers)."""
        for queue in self.task_queues:
            try:
                queue.put(("stop",))
            except Exception:  # pragma: no cover - teardown best effort
                pass
        for process in self.processes:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - teardown best effort
                process.terminate()
        for _, shm in self._result_segments.values():
            try:
                shm.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        self._result_segments.clear()


_POOL: Optional[WorkerPool] = None
_POOL_BROKEN = False


def _get_pool(n_workers: int) -> Optional[WorkerPool]:
    """The process-global pool, (re)spawned lazily at the requested size."""
    global _POOL, _POOL_BROKEN
    if _POOL_BROKEN:
        return None
    if _POOL is not None and _POOL.n_workers != n_workers:
        shutdown_pool()
    if _POOL is None:
        try:
            _POOL = WorkerPool(n_workers)
        except Exception:
            # No fork start method (or the platform refuses to spawn):
            # degrade to the in-process batch executor for good.
            _POOL_BROKEN = True
            return None
        atexit.register(shutdown_pool)
    return _POOL


def shutdown_pool() -> None:
    """Stop the worker pool (tests, epoch resets, and interpreter exit).

    Also demotes every promoted column buffer back to the heap: with no
    workers left to attach them, the shared segments would only leak
    ``/dev/shm`` space.  The order matters — workers must be gone before
    their mapped segments are unlinked and the content copied out.
    """
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None
    demote_all()


# Worker replicas replay the parent's dictionary as an append-only suffix;
# the protocol cannot express the null space shrinking, so an epoch reset
# must retire the whole pool (a fresh one replays the post-reset table).
interning.register_epoch_hook(shutdown_pool)


# ---------------------------------------------------------------------------
# Parent side: sessions
# ---------------------------------------------------------------------------


class ParallelSession:
    """One engine run's window onto the worker pool.

    Bound to the run's working :class:`Instance` and its compiled rules.
    Creation is free: the pool is spawned and the initial database shipped
    only when a dispatch first crosses the cost threshold.  If another
    session used the pool in between (nested engine runs), the next dispatch
    transparently resets the workers and resyncs from scratch.
    """

    def __init__(self, instance: Instance, compiled: Sequence, n_workers: int):
        self.instance = instance
        self.compiled = list(compiled)
        self.n_workers = n_workers
        # Keyed by Rule *value* (rules hash by content), not CompiledRule
        # identity: the plan cache may recompile a rule mid-run after a
        # wholesale clear, and the fresh object must still dispatch.
        self._rule_ids = {crule.rule: i for i, crule in enumerate(self.compiled)}
        self._synced_limits: Dict[str, int] = {}
        self._synced_count = 0
        #: Tombstone-log length at the last sync: the deletion half of the
        #: wire protocol ships the log suffix past this watermark.
        self._synced_tombstones = 0
        #: None = protocol not chosen yet; resolved at the first sync so the
        #: whole session speaks one protocol (a mid-session switch would
        #: desync the replicas).  False after a failed segment creation.
        self._use_shm: Optional[bool] = None
        #: True once the workers hold attached segments for this session:
        #: the first shared-memory sync after an arm drops the tombstone-log
        #: prefix entirely (fresh attaches skip dead rows, so the history is
        #: already baked in).
        self._shm_armed = False
        #: None = CSR choice not made yet; resolved with the protocol at the
        #: first shared-memory sync and then fixed for the session.
        self._use_csr: Optional[bool] = None
        #: The incremental CSR seal state (lives as long as the workers'
        #: attached chunks do — released whenever the replicas reset).
        self._sealer: Optional[CsrSealer] = None
        self._pool: Optional[WorkerPool] = None
        # (id(delta), len(delta), parent counter) -> validated window, so the
        # O(len) ordinal check is shared while the delta and the instance are
        # both unchanged.  The parent counter guards against id reuse: delta
        # instances are transient, and a freed delta's address can be recycled
        # by a later same-length delta — any firing in between moves the
        # counter, and without firing an equal-length delta over an unchanged
        # append-only instance validates to the same window anyway.
        self._window_cache: Optional[
            Tuple[int, int, int, Optional[Tuple[int, int]]]
        ] = None

    # -- plumbing -----------------------------------------------------------

    def _ensure_active(self) -> bool:
        """Arm the pool for this session; False if no pool is available.

        Deletions do not disable dispatch: the wire protocol ships every
        parent row of a sync window (dead ones as placeholders, so replica
        row ids stay parent-aligned) plus the tombstone-log suffix, and the
        replay guard makes re-shipping the full log after a replica reset
        harmless.  Replica parity over interleaved pushes and retractions
        is pinned by ``tests/test_engine_shard_parity.py``.
        """
        pool = _get_pool(self.n_workers)
        if pool is None:
            return False
        self._pool = pool
        if pool.current_session is not self:
            pool.broadcast(("reset", [crule.rule for crule in self.compiled]))
            self._synced_limits = {}
            self._synced_count = 0
            self._synced_tombstones = 0
            self._shm_armed = False
            if self._sealer is not None:
                # The workers just dropped their attached chunks; the next
                # sync reseals from scratch for the fresh replicas.
                self._sealer.release()
                self._sealer = None
            pool.current_session = self
        self._sync()
        return True

    def _sync(self) -> None:
        """Bring the workers level with the instance (protocol-dispatching).

        The shared-memory protocol (:meth:`_sync_shm`) ships only a segment
        table; the pickled protocol (:meth:`_sync_legacy`) ships the row
        window.  The choice is made once per session at the first real sync
        — a mid-session switch would desync the replicas — except that a
        first-sync segment-creation failure falls back to the pickled
        protocol before anything has shipped, which is still consistent.
        """
        instance = self.instance
        index = instance._index
        log = index.tombstone_log
        if (
            instance._counter == self._synced_count
            and len(log) == self._synced_tombstones
        ):
            return
        sync_start = time.perf_counter_ns()
        try:
            if self._use_shm is None:
                self._use_shm = shm_enabled()
            if self._use_shm:
                if self._sync_shm(instance, index, log):
                    return
                # Shared memory is unusable on this platform/run.  Nothing
                # has shipped yet when this happens on the first sync
                # (promotion is the first step); a mid-session failure means
                # a fresh predicate or a seal could not get a segment —
                # resync the pool from scratch over the pickled protocol so
                # the replicas stay whole either way.
                self._use_shm = False
                if self._sealer is not None:
                    self._sealer.release()
                    self._sealer = None
                pool = self._pool
                pool.broadcast(("reset", [crule.rule for crule in self.compiled]))
                self._synced_limits = {}
                self._synced_count = 0
                self._synced_tombstones = 0
                self._shm_armed = False
            self._sync_legacy(instance, index, log)
        finally:
            STATS.parallel_sync_ns += time.perf_counter_ns() - sync_start

    def _sync_shm(self, instance, index, log) -> bool:
        """Ship a shared-memory segment table; False if promotion failed.

        Every predicate's column buffer is promoted (idempotent — already
        promoted buffers just report their current segment and watermark),
        and the payload carries no fact rows at all: the dictionary delta,
        the ``(predicate, name, capacity, positions, watermark)`` table, the
        predicate name table, 4-int ``[pred, row_id, gid, arity]`` deletion
        records past the log watermark, and — on CSR sessions — the seal
        descriptor ``(segment, n_values, directory)`` whose six-int records
        index the same predicate table.  On the session's first shipment the
        log prefix is dropped instead: fresh worker attaches skip dead rows,
        so the deletion history is already reflected.
        """
        segments: List[Tuple[str, str, int, int, int]] = []
        for predicate, cols in index.cols.items():
            segment = cols.promote()
            if segment is None:
                return False
            segments.append((predicate, *segment))
        if self._use_csr is None:
            self._use_csr = csr_enabled()
        csr: Optional[Tuple[Optional[str], int, array]] = None
        entries: List[Tuple[str, int, int, int, int, int]] = []
        seal_name: Optional[str] = None
        seal_values = 0
        if self._use_csr:
            if self._sealer is None:
                self._sealer = CsrSealer()
            sealed = self._sealer.seal(index)
            if sealed is None:  # pragma: no cover - /dev/shm unavailable or full
                return False
            seal_name, seal_values, entries = sealed
        sync_start = time.perf_counter_ns() if TRACER.enabled else 0
        pool = self._pool
        c_start, n_start = pool.synced_terms
        consts, nulls = TERMS.delta_since(c_start, n_start)
        pool.synced_terms = TERMS.counts()
        if not self._shm_armed:
            self._synced_tombstones = len(log)
            self._shm_armed = True
        pred_ids: Dict[str, int] = {}
        preds: List[str] = []

        def intern_pred(predicate: str) -> int:
            pred_idx = pred_ids.get(predicate)
            if pred_idx is None:
                pred_idx = pred_ids[predicate] = len(preds)
                preds.append(predicate)
            return pred_idx

        deletions: List[int] = []
        for predicate, row_id, gid, arity in log[self._synced_tombstones :]:
            deletions.append(intern_pred(predicate))
            deletions.append(row_id)
            deletions.append(gid if gid is not None else -1)
            deletions.append(arity)
        if self._use_csr:
            directory: List[int] = []
            for predicate, position, replace, off, n_tids, n_rows in entries:
                directory.append(intern_pred(predicate))
                directory.append(position)
                directory.append(replace)
                directory.append(off)
                directory.append(n_tids)
                directory.append(n_rows)
            csr = (seal_name, seal_values, _int_array(directory))
        payload = pickle.dumps(
            (
                c_start,
                consts,
                n_start,
                nulls,
                segments,
                preds,
                _int_array(deletions),
                csr,
            ),
            pickle.HIGHEST_PROTOCOL,
        )
        STATS.parallel_bytes_shipped += len(payload) * self.n_workers
        pool.broadcast(("sync2", payload))
        self._synced_count = instance._counter
        self._synced_tombstones = len(log)
        if TRACER.enabled:
            TRACER.record(
                "parallel.sync",
                sync_start,
                bytes=len(payload) * self.n_workers,
                workers=self.n_workers,
                segments=len(segments),
            )
        return True

    def _sync_legacy(self, instance, index, log) -> None:
        """Ship the rows appended — and the deletions logged — since last sync.

        The payload is columnar: the term-dictionary suffix the workers have
        not replayed yet (pool-level high-water mark, so strings ship once
        per pool lifetime even across sessions), the message's predicate
        name table, one flat int array of ``[pred, arity, gid, ids...]``
        append records, and one of ``[pred, row_id, gid]`` deletion triples.
        Appends are collected per predicate in row order — *every* parent
        row of the window is shipped, tombstoned ones as ``[pred, -1]``
        placeholders, so replica row ids stay parent-aligned — and each
        live row carries its global ordinal explicitly, because deletions
        leave ordinal gaps a replica-side counter could not reproduce.
        Within a predicate gids still ascend (append order), which is all
        the sharded merge contract requires.
        """
        sync_start = time.perf_counter_ns() if TRACER.enabled else 0
        pool = self._pool
        c_start, n_start = pool.synced_terms
        consts, nulls = TERMS.delta_since(c_start, n_start)
        pool.synced_terms = TERMS.counts()
        pred_ids: Dict[str, int] = {}
        preds: List[str] = []

        def intern_pred(predicate: str) -> int:
            pred_idx = pred_ids.get(predicate)
            if pred_idx is None:
                pred_idx = pred_ids[predicate] = len(preds)
                preds.append(predicate)
            return pred_idx

        stream: List[int] = []
        limits = self._synced_limits
        for predicate, cols in index.cols.items():
            start = limits.get(predicate, 0)
            n_rows = len(cols)
            if start >= n_rows:
                continue
            arities = cols.arities
            gid_column = cols.gids
            buffers = cols.buffers
            pred_idx = intern_pred(predicate)
            for row_id in range(start, n_rows):
                arity = arities[row_id]
                if arity < 0:
                    stream.append(pred_idx)
                    stream.append(-1)
                    continue
                stream.append(pred_idx)
                stream.append(arity)
                stream.append(gid_column[row_id])
                for position in range(arity):
                    stream.append(buffers[position][row_id])
            limits[predicate] = n_rows
        deletions: List[int] = []
        for predicate, row_id, gid, _arity in log[self._synced_tombstones :]:
            deletions.append(intern_pred(predicate))
            deletions.append(row_id)
            deletions.append(gid if gid is not None else -1)
        payload = pickle.dumps(
            (
                c_start,
                consts,
                n_start,
                nulls,
                preds,
                _int_array(stream),
                _int_array(deletions),
            ),
            pickle.HIGHEST_PROTOCOL,
        )
        STATS.parallel_bytes_shipped += len(payload) * self.n_workers
        pool.broadcast(("sync", payload))
        self._synced_count = instance._counter
        self._synced_tombstones = len(log)
        if TRACER.enabled:
            TRACER.record(
                "parallel.sync",
                sync_start,
                bytes=len(payload) * self.n_workers,
                workers=self.n_workers,
            )

    def _delta_window(self, delta: Instance) -> Optional[Tuple[int, int]]:
        """The delta's ordinal range in the parent instance, or None.

        Every engine builds its delta as "the facts newly added to the
        working instance this round", so the delta maps to a contiguous,
        ascending ordinal window; anything else (an ad-hoc delta instance)
        falls back to the in-process executor.  The full mapping is checked
        — span and count alone would accept a delta like ordinals
        ``[3, 9, 5]`` and silently match the wrong window — and the
        validated result is memoised while the delta object and the parent
        instance are both unchanged, so back-to-back lookups (several rules
        matched before anything fires) pay the O(len) walk once.
        """
        cached = self._window_cache
        if (
            cached is not None
            and cached[0] == id(delta)
            and cached[1] == len(delta)
            and cached[2] == self.instance._counter
        ):
            return cached[3]
        window = None
        ordinals = self.instance._ordinals
        expected = None
        for atom in delta._ordinals:
            ordinal = ordinals.get(atom)
            if ordinal is None or (expected is not None and ordinal != expected):
                expected = None
                break
            if expected is None:
                window = ordinal
            expected = ordinal + 1
        window = (window, expected) if expected is not None else None
        self._window_cache = (id(delta), len(delta), self.instance._counter, window)
        return window

    def _dispatch(self, crule, spec) -> List[List[Tuple]]:
        """One match task; merged rows per plan, in spec order."""
        rule_id = self._rule_ids[crule.rule]
        dispatch_start = time.perf_counter_ns() if TRACER.enabled else 0
        try:
            payloads = self._pool.match(rule_id, spec)
        except RuntimeError:
            # A failed or timed-out task leaves the surviving workers'
            # results queued (and their replicas suspect): tear the pool
            # down so the next dispatch starts from a clean respawn instead
            # of tripping over stale results.
            shutdown_pool()
            self._pool = None
            raise
        STATS.parallel_tasks += 1
        if TRACER.enabled:
            TRACER.record(
                "parallel.dispatch",
                dispatch_start,
                rule=crule.rule.head[0].predicate,
                workers=self.n_workers,
            )
        n_plans = 1 if spec[0] == "full" else len(spec[3])
        return [
            merge_sharded([payload[i] for payload in payloads])
            for i in range(n_plans)
        ]

    # -- engine-facing API --------------------------------------------------

    def full_rows(self, crule) -> List[Tuple]:
        """``crule.plan.run_batch(instance)``, distributed (the chase path).

        No negation filtering: the chase checks negation per trigger at fire
        time because its reference may be the mutating working instance.
        """
        plan = crule.plan
        steps = plan.steps
        if steps and not plan.prebound and crule.rule in self._rule_ids:
            estimate = self.instance._index.live.get(steps[0].predicate, 0)
            if estimate >= parallel_threshold() and self._ensure_active():
                return self._dispatch(crule, ("full",))[0]
        STATS.parallel_fallbacks += 1
        return plan.run_batch(self.instance)

    def trigger_row_batches(
        self, crule, delta=None, negation_reference=None
    ) -> List[Tuple[object, List[Tuple]]]:
        """Distributed :meth:`CompiledRule.trigger_row_batches`.

        Same eager pivot semantics, same ``pivots_skipped`` accounting (done
        here in the parent, so the counter stays mode-independent), same
        frozen-snapshot negation pre-filter (applied after the merge) — the
        only difference is who computes the matches.
        """
        instance = self.instance
        if delta is None:
            rows = self.full_rows(crule)
            if crule.negation and negation_reference is not None and rows:
                rows = crule._filter_negation_rows(rows, crule.plan, negation_reference)
            return [(crule.plan, rows)] if rows else []
        delta_index = delta._plan_source()[0]
        full_index = instance._plan_source()[0]
        delta_live = delta_index.live
        pivots: List[int] = []
        estimate = 0
        for pivot, atom in enumerate(crule.rule.body_positive):
            count = delta_live.get(atom.predicate)
            if not count:
                continue
            plan = crule.pivot_plans[pivot]
            if not plan.pivot_viable(delta_index, full_index):
                STATS.pivots_skipped += 1
                continue
            pivots.append(pivot)
            estimate += count
        if not pivots:
            return []
        window = (
            self._delta_window(delta)
            if estimate >= parallel_threshold() and crule.rule in self._rule_ids
            else None
        )
        if window is not None and self._ensure_active():
            lo, hi = window
            merged = self._dispatch(crule, ("delta", lo, hi, tuple(pivots)))
        else:
            STATS.parallel_fallbacks += 1
            merged = [
                crule.pivot_plans[pivot].run_batch(instance, None, delta_source=delta)
                for pivot in pivots
            ]
        batches = []
        for pivot, rows in zip(pivots, merged):
            plan = crule.pivot_plans[pivot]
            if crule.negation and negation_reference is not None and rows:
                rows = crule._filter_negation_rows(rows, plan, negation_reference)
            if rows:
                batches.append((plan, rows))
        return batches

    def close(self) -> None:
        """Release the workers' replica memory (the pool itself survives)."""
        pool = self._pool
        if pool is not None and pool.current_session is self:
            pool.broadcast(("clear",))
            pool.current_session = None
        if self._sealer is not None:
            self._sealer.release()
            self._sealer = None
        self._pool = None


def maybe_session(instance: Instance, compiled: Sequence) -> Optional[ParallelSession]:
    """A session when parallel mode is on, else None (engine entry point)."""
    if not parallel_enabled() or not compiled:
        return None
    return ParallelSession(instance, compiled, get_worker_count())
