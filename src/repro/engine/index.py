"""Hash-indexed fact storage, dictionary-encoded on dense integer term IDs.

The seed implementation kept per-``(predicate, position, term)`` *sets* of
atoms and copied the chosen bucket into a fresh list on every lookup.  PR 1
replaced that with append-only per-predicate rows plus row-id postings; this
revision **dictionary-encodes** the whole structure on the engine's
:mod:`~repro.engine.interning` term IDs:

* ``rows[predicate]`` still holds the decoded :class:`Atom` objects — they
  *are* the result boundary (instance iteration, provenance, snapshots), so
  keeping them costs nothing extra and decoding is free.
* ``cols[predicate]`` holds the **ID rows** packed into a flat
  :class:`~repro.engine.colbuf.ColumnBuffer`: one int64 buffer per
  position plus an arity column and a gid column, aligned row-for-row with
  ``rows``.  Every executor — the row-at-a-time backtracker, the
  column-at-a-time batch steps, the sharded workers — probes and verifies
  on these flat buffers (``arities[row] != arity`` is the single check that
  rejects both tombstones and wrong-arity rows); the batch kernels
  (:mod:`repro.engine.kernels`) take zero-copy numpy views of the same
  memory, and the parallel executor can promote whole buffers into shared
  memory without changing a single consumer.
* ``postings`` keys are ``(predicate, position, tid)`` — int-keyed plain
  ``list`` buckets of ascending row ids, probed with IDs the plans compiled
  in at plan time.  Lists, not ``array('q')``: buckets are appended to on
  every fact and iterated in every row-mode probe, and CPython lists beat
  typed arrays ~3x on append and ~30% on iteration (no re-boxing); the
  numpy kernels convert a bucket once per bulk probe, which the vectorised
  pass still amortises.

Because rows are append-only, row ids within a postings list are strictly
increasing, and a lookup is made stable under concurrent insertion simply by
capturing the candidate count once — no copying.  The same mechanism yields
frozen prefix views (:class:`InstanceSnapshot`).  Deletion — the DRed
retraction path of :meth:`DeltaSession.retract
<repro.engine.incremental.DeltaSession.retract>` — tombstones both the row
and the ID row in place, eagerly unlinks the row id from its postings
buckets (buckets stay ascending; an emptied bucket is deleted so viability
pre-checks treat the vanished value like a never-seen one), records the
deletion in
:attr:`PredicateIndex.tombstone_log` for the parallel replicas, and never
renumbers surviving rows, so postings, snapshots taken *after* the deletion,
and replica row alignment all stay valid.  Snapshots taken *before* a
deletion observe it (the prefix view shares the live storage); holders that
need to detect this compare :attr:`InstanceSnapshot.stale`.

Worker replicas of the parallel executor ingest facts through
:meth:`PredicateIndex.add_encoded`, which stores the ID row **without**
materialising the Atom (a ``None`` placeholder keeps the lists aligned);
workers only match on ``cols``, so the decoded view is never consulted
there.
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_left
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.datalog.atoms import Atom
from repro.datalog.terms import Variable
from repro.engine import kernels
from repro.engine.colbuf import ColumnBuffer, SharedIntSegment
from repro.engine.interning import TERMS

#: Floor of the distinct-value summary budget: the per-round pivot-viability
#: probe walks the summary value by value, so an unbounded summary would turn
#: a cheap skip test into a scan.  The effective cap adapts to predicate
#: cardinality (see :func:`_summary_cap`) — a fixed 128 left skips on the
#: table for wide deltas whose joins dwarf a slightly longer summary walk.
_SUMMARY_CAP = 128


def _summary_cap(n_rows: int) -> int:
    """The distinct-value budget for a predicate column of ``n_rows`` rows.

    A quarter of the row count, floored at :data:`_SUMMARY_CAP`: the summary
    walk stays a small fraction of the scan it might save, and the cap is a
    pure function of the (mode-identical) row count, so every execution mode
    materialises — and skips on — the same summaries.
    """
    return max(_SUMMARY_CAP, n_rows >> 2)


#: Predicates below this many rows never compact: at small scale the rebuild
#: overhead dwarfs the reclaimed bytes, and the retract-parity suites rely on
#: small fixtures keeping their row numbering stable.
_COMPACT_MIN_ROWS = 256

#: A predicate whose sealed CSR lane accumulates this many delta chunks is
#: re-emitted as a single merged chunk at the next seal — bounding per-probe
#: chunk fan-out without paying a full rebuild on every sync.
_MAX_CSR_CHUNKS = 8

# None = not resolved yet; resolved lazily at first use so test harnesses can
# set the env var after import (matching repro.engine.mode).
_compact_ratio: Optional[float] = None


def compact_ratio() -> float:
    """The tombstone ratio above which a predicate's lanes are compacted.

    ``REPRO_COMPACT_RATIO`` (default 0.5): once more than this fraction of a
    predicate's rows are tombstones — and the predicate has at least
    :data:`_COMPACT_MIN_ROWS` rows — the DRed maintenance path packs the
    live rows and renumbers (:meth:`PredicateIndex.compact`).  A ratio of
    1.0 or higher effectively disables compaction (the dead fraction never
    exceeds 1).  Resolved lazily on first use; :func:`set_compact_ratio`
    pins it for the process.
    """
    global _compact_ratio
    if _compact_ratio is None:
        raw = os.environ.get("REPRO_COMPACT_RATIO")
        try:
            _compact_ratio = float(raw) if raw is not None else 0.5
        except ValueError:
            _compact_ratio = 0.5
    return _compact_ratio


def set_compact_ratio(ratio: float) -> None:
    """Pin the compaction trigger ratio for this process (tests, EngineConfig)."""
    if ratio <= 0:
        raise ValueError(f"compact ratio must be positive, got {ratio!r}")
    global _compact_ratio
    _compact_ratio = float(ratio)


class PredicateIndex:
    """Append-only decoded rows + aligned ID rows + int-keyed postings."""

    __slots__ = (
        "rows",
        "cols",
        "postings",
        "live",
        "tombstoned",
        "tombstone_log",
        "_summaries",
        "csr",
    )

    def __init__(self) -> None:
        # predicate -> list of facts in insertion order (None = tombstone,
        # or an encoded-only row in worker replicas).
        self.rows: Dict[str, List[Optional[Atom]]] = {}
        # predicate -> flat column buffer (arities + gids + one int64 buffer
        # per position), aligned row-for-row with ``rows``.
        self.cols: Dict[str, ColumnBuffer] = {}
        # (predicate, position, tid) -> ascending row ids.
        self.postings: Dict[Tuple[str, int, int], List[int]] = {}
        # predicate -> number of non-tombstoned rows.
        self.live: Dict[str, int] = {}
        # Total tombstones ever created (lets snapshots detect deletions).
        self.tombstoned = 0
        # Append-only (predicate, row_id, gid, arity) deletion records, in
        # deletion order — the retraction half of the parallel executor's
        # wire protocol (each worker replays the suffix it has not seen
        # yet).  The arity travels because tombstoning keeps the position
        # values but clears the width, and the shared-memory deletion
        # replay needs both to unlink worker-local postings.
        self.tombstone_log: List[Tuple[str, int, Optional[int], int]] = []
        # (predicate, position) -> (row count, distinct tids | None) — the
        # per-round bound-value summaries behind extended pivot skipping.
        self._summaries: Dict[Tuple[str, int], Tuple[int, Optional[frozenset]]] = {}
        # Sealed CSR postings (worker replicas only): a CsrStore holding the
        # parent's shared lane chunks.  None on the parent and on every
        # non-CSR path — probes then use the mutable list buckets above.
        self.csr: Optional["CsrStore"] = None

    def add(self, atom: Atom, gid: int = -1) -> int:
        """Append a (caller-deduplicated) fact; returns its row id.

        ``gid`` is the fact's global insertion ordinal, stored in the
        buffer's gid column so shared-memory workers can rebuild shard
        ordering without per-fact wire traffic (``-1`` = caller has none).
        """
        return self._append(atom.predicate, atom, TERMS.atom_key(atom)[1:], gid)

    def add_encoded(self, predicate: str, ids: Tuple[int, ...], gid: int = -1) -> int:
        """Append an ID row without materialising its Atom (worker replicas)."""
        return self._append(predicate, None, ids, gid)

    def _append(
        self, predicate: str, atom: Optional[Atom], ids: Tuple[int, ...], gid: int
    ) -> int:
        rows = self.rows.get(predicate)
        if rows is None:
            rows = self.rows[predicate] = []
            self.cols[predicate] = ColumnBuffer()
            self.live[predicate] = 0
        rows.append(atom)
        cols = self.cols[predicate]
        buffers = cols.buffers
        arity = len(ids)
        if cols._shm is None and len(buffers) == arity:
            # Inlined ColumnBuffer.append fast path (fixed-arity heap row):
            # this is the per-derived-fact hot spot of every fixpoint, so
            # the dominant arities unpack the lanes instead of zipping.
            row_id = cols.n_rows
            if arity == 2:
                first, second = buffers
                first.append(ids[0])
                second.append(ids[1])
            elif arity == 3:
                first, second, third = buffers
                first.append(ids[0])
                second.append(ids[1])
                third.append(ids[2])
            else:
                for buffer, value in zip(buffers, ids):
                    buffer.append(value)
            cols.arities.append(arity)
            cols.gids.append(gid)
            cols.n_rows = row_id + 1
        else:
            row_id = cols.append(ids, gid)
        self.live[predicate] += 1
        postings = self.postings
        for position, tid in enumerate(ids):
            key = (predicate, position, tid)
            bucket = postings.get(key)
            if bucket is None:
                postings[key] = [row_id]
            else:
                bucket.append(row_id)
        return row_id

    def add_bulk(self, predicate: str, atoms, id_rows, gids) -> int:
        """Append many (caller-deduplicated) facts of one predicate at once.

        Returns the first row id.  The columns extend lane-wise
        (:meth:`ColumnBuffer.extend_rows`) instead of row-wise, which is
        what keeps cold rebuilds and bulk loads off the per-fact append
        cost; the postings update is necessarily per fact (one bucket per
        position value) but runs with locals hoisted.  Row ids are
        assigned sequentially, so per-bucket ascending order is preserved
        exactly as by repeated :meth:`add`.
        """
        rows = self.rows.get(predicate)
        if rows is None:
            rows = self.rows[predicate] = []
            self.cols[predicate] = ColumnBuffer()
            self.live[predicate] = 0
        row_id = self.cols[predicate].extend_rows(id_rows, gids)
        rows.extend(atoms)
        self.live[predicate] += len(id_rows)
        postings = self.postings
        for ids in id_rows:
            for position, tid in enumerate(ids):
                key = (predicate, position, tid)
                bucket = postings.get(key)
                if bucket is None:
                    postings[key] = [row_id]
                else:
                    bucket.append(row_id)
            row_id += 1
        return row_id - len(id_rows)

    def tombstone(self, atom: Atom, gid: Optional[int] = None) -> Optional[int]:
        """Mark a fact deleted and unlink its row id from every postings bucket.

        Returns the tombstoned row id (None if the fact was absent) and logs
        ``(predicate, row_id, gid)`` so parallel replicas can replay the
        deletion; ``gid`` is the fact's global insertion ordinal, which the
        sharded stores are keyed by.

        The eager postings unlink is what keeps probe cost proportional to
        the *live* bucket: leaving dead ids behind made every later probe of
        a churned value wade through the predicate's whole deletion history,
        which turned long push/retract streams quadratic (each removal
        instead pays one bisect per position, against buckets that deletions
        keep small).
        """
        predicate = atom.predicate
        cols = self.cols.get(predicate)
        if not cols:
            return None
        key = TERMS.atom_key(atom)
        ids = key[1:]
        arity = len(ids)
        bucket = self.postings.get((predicate, 0, ids[0])) if ids else None
        candidates = bucket if bucket is not None else range(len(cols))
        arities = cols.arities
        buffers = cols.buffers
        for row_id in candidates:
            if arities[row_id] != arity:
                continue
            for position in range(arity):
                if buffers[position][row_id] != ids[position]:
                    break
            else:
                cols.kill(row_id)
                self.rows[predicate][row_id] = None
                self.live[predicate] -= 1
                self.tombstoned += 1
                self.tombstone_log.append((predicate, row_id, gid, arity))
                self._unlink(predicate, row_id, ids)
                return row_id
        return None

    def tombstone_row(self, predicate: str, row_id: int) -> None:
        """Replay a parent-side deletion by row id (worker replicas).

        Idempotent: a row that is already dead (an appended-and-deleted
        placeholder, or a deletion replayed twice after a pool re-arm) is
        left alone, which is what makes full-log replay after a replica
        reset safe.  No log entry is written — replicas are leaves.
        """
        cols = self.cols.get(predicate)
        if cols is None or row_id >= len(cols):
            return
        ids = cols.kill(row_id)
        if ids is None:
            return
        self.rows[predicate][row_id] = None
        self.live[predicate] -= 1
        self.tombstoned += 1
        self._unlink(predicate, row_id, ids)

    def _unlink(self, predicate: str, row_id: int, ids: Tuple[int, ...]) -> None:
        """Drop ``row_id`` from each of its postings buckets (which stay
        ascending), deleting buckets that empty so viability pre-checks see
        the vanished value as cheaply as a never-seen one."""
        postings = self.postings
        for position, tid in enumerate(ids):
            bucket_key = (predicate, position, tid)
            bucket = postings.get(bucket_key)
            if bucket is None:
                continue
            i = bisect_left(bucket, row_id)
            if i < len(bucket) and bucket[i] == row_id:
                del bucket[i]
            if not bucket:
                del postings[bucket_key]

    def add_dead(self, predicate: str) -> int:
        """Append an already-tombstoned placeholder row (worker replicas).

        A fact appended *and* deleted between two replica syncs is shipped as
        a dead placeholder: its content is gone on the parent side, but the
        replica must still burn the row id so later rows of the predicate
        keep their parent-aligned positions.  No postings, no live count.
        """
        rows = self.rows.get(predicate)
        if rows is None:
            rows = self.rows[predicate] = []
            self.cols[predicate] = ColumnBuffer()
            self.live[predicate] = 0
        rows.append(None)
        row_id = self.cols[predicate].append_dead()
        self.tombstoned += 1
        return row_id

    def index_attached(self, predicate: str, cols: ColumnBuffer, start: int) -> None:
        """Install an attached column buffer and post its new rows.

        The shared-memory worker path: ``cols`` is a read-only view over the
        parent's segment, and this index contributes only the *postings*
        (and live counts) for the rows in ``[start, n_rows)`` — the fact
        payload itself is never copied.  Tombstoned rows are skipped, which
        is what makes full reindexing after a replica reset equivalent to
        replaying the whole append+deletion history.
        """
        self.cols[predicate] = cols
        if predicate not in self.rows:
            self.rows[predicate] = []
            self.live[predicate] = 0
        postings = self.postings
        arities = cols.arities
        buffers = cols.buffers
        live = 0
        for row_id in range(start, cols.n_rows):
            arity = arities[row_id]
            if arity < 0:
                continue
            live += 1
            for position in range(arity):
                key = (predicate, position, buffers[position][row_id])
                bucket = postings.get(key)
                if bucket is None:
                    postings[key] = [row_id]
                else:
                    bucket.append(row_id)
        self.live[predicate] += live

    def attach_cols(self, predicate: str, cols: ColumnBuffer) -> None:
        """Install an attached column buffer **without** posting its rows.

        The CSR worker path: probes resolve against the parent's sealed
        lane chunks (:attr:`csr`), so the per-sync reindex pass of
        :meth:`index_attached` is skipped entirely — the whole point of the
        seal protocol.  Live counts stay untouched; nothing on the worker
        match path consults them (probes and extension filtering run on the
        flat columns).
        """
        self.cols[predicate] = cols
        if predicate not in self.rows:
            self.rows[predicate] = []
            self.live[predicate] = 0

    def unlink_dead(self, predicate: str, row_id: int, arity: int) -> None:
        """Unlink postings for a row the parent already tombstoned.

        Shared-memory deletion replay: the parent flipped the row's arity in
        the shared buffer before this message arrived, but the position
        values are still readable (:meth:`ColumnBuffer.values_at
        <repro.engine.colbuf.ColumnBuffer.values_at>`), so the worker can
        drop the row id from its locally built buckets.  The caller
        guarantees the row was previously indexed (deletions of rows that
        died inside one sync window are filtered out by the watermark).
        """
        cols = self.cols.get(predicate)
        if cols is None or row_id >= len(cols):
            return
        ids = cols.values_at(row_id, arity)
        self.live[predicate] -= 1
        self.tombstoned += 1
        self._unlink(predicate, row_id, ids)

    def compact(self, predicate: str) -> int:
        """Pack the predicate's live rows and renumber; returns rows reclaimed.

        The tombstone-compaction half of the DRed maintenance path: the live
        rows are rewritten in their existing relative order (gids preserved)
        into a fresh heap :class:`ColumnBuffer` through the bulk rebuild path
        (:meth:`add_bulk`), so lane bytes shrink to the live set instead of
        carrying the predicate's whole deletion history.  Renumbering
        invalidates every row-id-bearing structure for this predicate, so the
        method also

        * drops the predicate's postings buckets (rebuilt by ``add_bulk``),
        * drops its :attr:`tombstone_log` entries (a full-log replay after a
          replica reset would otherwise kill renumbered survivors), and
        * drops its memoised distinct-value summaries (a stale summary is no
          longer a superset once new appends land on the shrunken count).

        :attr:`tombstoned` stays monotone — snapshots taken before the
        triggering retraction are already flagged stale by the tombstoning
        that preceded this call, and callers must re-arm any parallel
        session (the replicas' row alignment is gone).  Parent-side only:
        worker replicas never compact.
        """
        cols = self.cols.get(predicate)
        if cols is None:
            return 0
        rows = self.rows[predicate]
        arities = cols.arities
        buffers = cols.buffers
        gid_column = cols.gids
        atoms: List[Optional[Atom]] = []
        id_rows: List[Tuple[int, ...]] = []
        gids: List[int] = []
        for row_id in range(cols.n_rows):
            arity = arities[row_id]
            if arity < 0:
                continue
            atoms.append(rows[row_id])
            id_rows.append(tuple(buffers[p][row_id] for p in range(arity)))
            gids.append(gid_column[row_id])
        reclaimed = len(rows) - len(atoms)
        if cols.shared:
            cols.demote()
        self.rows[predicate] = []
        self.cols[predicate] = ColumnBuffer()
        self.live[predicate] = 0
        postings = self.postings
        for key in [key for key in postings if key[0] == predicate]:
            del postings[key]
        summaries = self._summaries
        for key in [key for key in summaries if key[0] == predicate]:
            del summaries[key]
        self.tombstone_log = [
            entry for entry in self.tombstone_log if entry[0] != predicate
        ]
        self.add_bulk(predicate, atoms, id_rows, gids)
        return reclaimed

    def probe_ids(
        self,
        predicate: str,
        pairs: Sequence[Tuple[int, int]],
        cap: int,
    ) -> Sequence[int]:
        """Row ids (< ``cap``, ascending) whose ID row equals every
        ``(position, tid)`` pair — the bulk probe of the column-at-a-time
        executor.

        With one bound pair this is a capped postings slice; with several it
        is a posting-list intersection anchored on the shortest bucket, which
        is walked in order so the result stays ascending.  The intersection
        strategy is selectivity-adaptive: when the anchor is short, the other
        bound positions are verified directly on the candidate ID rows; when
        the anchor is long relative to the other buckets, those buckets are
        hashed once and probed instead.  An empty ``pairs`` means a full scan
        of the ``cap`` prefix.  Ids of tombstoned or wrong-arity rows may be
        included; callers skip them exactly as the row-at-a-time executor
        does.
        """
        if not pairs:
            return range(cap)
        if self.csr is not None:
            return self._probe_ids_csr(self.csr, predicate, pairs, cap)
        postings = self.postings
        if len(pairs) == 1:
            position, value = pairs[0]
            bucket = postings.get((predicate, position, value))
            if not bucket:
                return ()
            end = bisect_left(bucket, cap)
            return bucket if end == len(bucket) else bucket[:end]
        buckets: List[Tuple[int, List[int], int, int]] = []
        for position, value in pairs:
            bucket = postings.get((predicate, position, value))
            if not bucket:
                return ()
            buckets.append((len(bucket), bucket, position, value))
        buckets.sort(key=lambda item: item[0])
        smallest = buckets[0][1]
        end = bisect_left(smallest, cap)
        rest = buckets[1:]
        out: List[int] = []
        if end * len(rest) <= sum(item[0] for item in rest):
            # Short anchor: verifying the remaining positions on the flat
            # columns is cheaper than hashing the other postings lists.
            cols = self.cols[predicate]
            arities = cols.arities
            buffers = cols.buffers
            for k in range(end):
                row_id = smallest[k]
                row_arity = arities[row_id]
                if row_arity < 0:
                    continue
                for _, _, position, value in rest:
                    if position >= row_arity or buffers[position][row_id] != value:
                        break
                else:
                    out.append(row_id)
        else:
            others = [set(item[1]) for item in rest]
            for k in range(end):
                row_id = smallest[k]
                for other in others:
                    if row_id not in other:
                        break
                else:
                    out.append(row_id)
        return out

    @staticmethod
    def _probe_ids_csr(
        csr: "CsrStore",
        predicate: str,
        pairs: Sequence[Tuple[int, int]],
        cap: int,
    ) -> Sequence[int]:
        """The CSR half of :meth:`probe_ids` (sealed worker replicas).

        Buckets come out of the shared lane chunks instead of the mutable
        list postings; they hold the same ascending live row ids (the seal
        rebuilds dirtied lanes before any match runs against them), so the
        capped single-bucket slice and the shortest-anchor intersection
        reproduce the list-bucket results exactly — which the three-way
        differential fuzz suite pins.
        """
        if len(pairs) == 1:
            position, value = pairs[0]
            bucket = csr.bucket(predicate, position, value)
            if bucket is None or not len(bucket):
                return ()
            end = bisect_left(bucket, cap)
            return bucket if end == len(bucket) else bucket[:end]
        buckets = []
        for position, value in pairs:
            bucket = csr.bucket(predicate, position, value)
            if bucket is None or not len(bucket):
                return ()
            buckets.append((len(bucket), bucket))
        buckets.sort(key=lambda item: item[0])
        smallest = buckets[0][1]
        end = bisect_left(smallest, cap)
        anchor = smallest if end == len(smallest) else smallest[:end]
        return kernels.csr_intersect(anchor, [item[1] for item in buckets[1:]])

    def scan_ids(
        self,
        predicate: str,
        arity: int,
        pairs: Sequence[Tuple[int, int]],
        row_limits: Optional[Dict[str, int]] = None,
    ) -> Iterator[Tuple[int, ...]]:
        """ID rows of ``predicate`` whose value at each ``(position, tid)``
        pair matches — the ID-level sibling of :meth:`scan`.

        Yields the flat ``(tid1, ..., tidn)`` tuples directly (no Atom is
        touched), skipping tombstoned and wrong-arity rows.  ``row_limits``
        restricts the scan to a frozen prefix (snapshot isolation); without
        it the prefix is captured at call time, like :meth:`scan`.  The
        SPARQL evaluator's BGP matching and the query service's read path
        run on this.
        """
        cols = self.cols.get(predicate)
        if not cols:
            return iter(())
        cap = len(cols) if row_limits is None else min(len(cols), row_limits.get(predicate, 0))
        if cap <= 0:
            return iter(())
        return self._iterate_ids(cols, self.probe_ids(predicate, pairs, cap), cap, arity)

    @staticmethod
    def _iterate_ids(
        cols: ColumnBuffer,
        row_ids: Sequence[int],
        cap: int,
        arity: int,
    ) -> Iterator[Tuple[int, ...]]:
        # Row ids ascend in every probe_ids branch, so the cap re-check can
        # break instead of continue; it guards the single-pair branch, which
        # returns the live postings bucket when the whole bucket fits the cap
        # — appends racing the iteration would otherwise leak past the
        # snapshot prefix.
        arities = cols.arities
        buffers = cols.buffers[:arity]
        for row_id in row_ids:
            if row_id >= cap:
                break
            if arities[row_id] == arity:
                yield tuple(buffer[row_id] for buffer in buffers)

    def distinct_values(self, predicate: str, position: int) -> Optional[frozenset]:
        """The distinct term IDs at ``predicate[position]``, or None.

        ``None`` means "no usable summary" — either more distinct values
        than the cardinality-adaptive budget (:func:`_summary_cap`; walking
        them would cost more than the join it guards) or an out-of-range
        position.  The summary is memoised per (predicate, position) and
        invalidated by appends, so a frozen delta pays the scan once per
        round however many pivot plans consult it.  In-place tombstoning
        does not invalidate the memo: a stale summary is a superset of the
        live values, which only ever keeps a pivot the viability test might
        have skipped — conservative in the safe direction.
        """
        cols = self.cols.get(predicate)
        if not cols:
            return frozenset()
        key = (predicate, position)
        cached = self._summaries.get(key)
        if cached is not None and cached[0] == len(cols):
            return cached[1]
        summary = kernels.distinct_values(cols, position, _summary_cap(len(cols)))
        self._summaries[key] = (len(cols), summary)
        return summary

    def row_count(self, predicate: str) -> int:
        """The number of rows stored for ``predicate`` (tombstones included)."""
        rows = self.rows.get(predicate)
        return len(rows) if rows else 0

    def row_limits(self) -> Dict[str, int]:
        """Current per-predicate row counts (the state an InstanceSnapshot captures)."""
        return {predicate: len(rows) for predicate, rows in self.rows.items()}

    def scan(
        self,
        pattern: Atom,
        row_limits: Optional[Dict[str, int]] = None,
    ) -> Iterator[Atom]:
        """Candidate facts for ``pattern``, matching the legacy ``Instance.matching``.

        The most selective available postings bucket is probed; remaining
        constant positions and repeated variables are left to the caller's
        unifier (exactly the seed contract).  Bound pattern terms are looked
        up in the term table without interning, so scans over unseen
        vocabulary allocate nothing.  ``row_limits`` restricts the scan to a
        frozen prefix; without it the prefix is captured **now**, at call
        time (not at first consumption), preserving the seed's
        snapshot-per-call semantics even when the iterator is consumed after
        later insertions.
        """
        predicate = pattern.predicate
        rows = self.rows.get(predicate)
        if not rows:
            return iter(())
        best: Optional[List[int]] = None
        for position, term in enumerate(pattern.terms):
            if isinstance(term, Variable):
                continue
            tid = TERMS.find_term(term)
            bucket = (
                self.postings.get((predicate, position, tid))
                if tid is not None
                else None
            )
            if bucket is None:
                return iter(())
            if best is None or len(bucket) < len(best):
                best = bucket
        cap = len(rows) if row_limits is None else min(len(rows), row_limits.get(predicate, 0))
        bucket_end = len(best) if best is not None else cap
        return self._iterate(rows, best, cap, bucket_end, len(pattern.terms))

    @staticmethod
    def _iterate(
        rows: List[Optional[Atom]],
        bucket: Optional[List[int]],
        cap: int,
        bucket_end: int,
        arity: int,
    ) -> Iterator[Atom]:
        if bucket is None:
            for row_id in range(cap):
                fact = rows[row_id]
                if fact is not None and len(fact.terms) == arity:
                    yield fact
        else:
            for k in range(bucket_end):
                row_id = bucket[k]
                if row_id >= cap:
                    break
                fact = rows[row_id]
                if fact is not None and len(fact.terms) == arity:
                    yield fact


class CsrStore:
    """Worker-side sealed postings: zero-copy CSR chunks per lane.

    Each applied seal contributes *chunks* to ``(predicate, position)``
    lanes: a chunk is ``(tids, offsets, rows, segment_name)`` where the
    three views are ``memoryview`` slices of one attached
    :class:`~repro.engine.colbuf.SharedIntSegment` — ``tids`` the sorted
    term-ID directory, ``offsets`` its ``len + 1`` prefix sums, ``rows``
    the flat ascending row ids.  Delta chunks accumulate in seal order
    (their row windows are disjoint and ascending, so concatenation stays
    sorted); a ``replace`` record drops a lane's accumulated chunks first
    (full rebuild after a deletion dirtied the sealed region, or a merge).

    Segments are refcounted by the chunks that slice into them and closed
    as soon as the last chunk is dropped — the parent owns every unlink.
    """

    __slots__ = ("lanes", "_segments")

    def __init__(self) -> None:
        # (predicate, position) -> chunk list in seal order.
        self.lanes: Dict[Tuple[str, int], List[tuple]] = {}
        # segment name -> [SharedIntSegment, chunk refcount].
        self._segments: Dict[str, list] = {}

    def apply(self, name: str, n_values: int, preds, directory) -> None:
        """Attach one seal segment and install its directory records.

        ``directory`` is the flat six-int records the parent shipped:
        ``(pred_idx, position, replace, off, n_tids, n_rows)`` with
        ``pred_idx`` indexing the sync message's shared predicate table.
        """
        segment = SharedIntSegment.attach(name, n_values)
        entry = self._segments[name] = [segment, 0]
        data = segment.data
        for k in range(0, len(directory), 6):
            pred_idx, position, replace, off, n_tids, n_rows = directory[k : k + 6]
            key = (preds[pred_idx], position)
            if replace:
                self._drop_lane(key)
            tids = data[off : off + n_tids]
            offsets = data[off + n_tids : off + 2 * n_tids + 1]
            rows = data[off + 2 * n_tids + 1 : off + 2 * n_tids + 1 + n_rows]
            chunks = self.lanes.get(key)
            if chunks is None:
                chunks = self.lanes[key] = []
            chunks.append((tids, offsets, rows, name))
            entry[1] += 1
        if entry[1] == 0:  # pragma: no cover - parent never ships empty seals
            segment.release()
            del self._segments[name]

    def bucket(self, predicate: str, position: int, tid: int):
        """The ascending row ids sealed for ``tid`` in one lane, or None.

        Single-chunk lanes (the common case between rebuilds) return the
        zero-copy memoryview slice straight out of the segment; multi-chunk
        lanes concatenate in seal order, which preserves ascending ids.
        """
        chunks = self.lanes.get((predicate, position))
        if not chunks:
            return None
        if len(chunks) == 1:
            tids, offsets, rows, _ = chunks[0]
            return kernels.csr_find(tids, offsets, rows, tid)
        parts = []
        for tids, offsets, rows, _ in chunks:
            part = kernels.csr_find(tids, offsets, rows, tid)
            if part is not None and len(part):
                parts.append(part)
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        out: List[int] = []
        for part in parts:
            out.extend(part)
        return out

    def _drop_lane(self, key: Tuple[str, int]) -> None:
        chunks = self.lanes.pop(key, None)
        if not chunks:
            return
        for tids, offsets, rows, name in chunks:
            for view in (tids, offsets, rows):
                try:
                    view.release()
                except Exception:  # pragma: no cover - teardown best effort
                    pass
            entry = self._segments.get(name)
            if entry is not None:
                entry[1] -= 1
                if entry[1] <= 0:
                    entry[0].release()
                    del self._segments[name]

    def release_all(self) -> None:
        """Drop every lane and close every attached segment (reset/stop)."""
        for key in list(self.lanes):
            self._drop_lane(key)
        # _drop_lane closes segments as their refcounts hit zero; anything
        # left is an attach that never gained a chunk (defensive).
        for entry in self._segments.values():  # pragma: no cover
            entry[0].release()
        self._segments.clear()


class CsrSealer:
    """Parent-side incremental CSR seal state for one parallel session.

    Tracks, per predicate, how many rows the last seal covered and how many
    delta chunks are outstanding; each :meth:`seal` call emits exactly the
    lanes that changed since the sync watermark:

    * **delta** — new rows ``[sealed, n_rows)`` only (dead rows skipped),
      appended as one chunk per touched lane;
    * **replace** — a full lane rebuild, forced when a deletion landed in
      the already-sealed region (the sealed chunks would carry a dead row)
      or when the predicate's chunk count reaches
      :data:`_MAX_CSR_CHUNKS` (merge).

    All chunks of one seal pack into a single
    :class:`~repro.engine.colbuf.SharedIntSegment`.  The previous seal's
    segment is released at the next seal: every sync is followed by a match
    whose results the parent collects, so by the time seal *N+1* runs,
    every worker has attached seal *N* — the name is no longer needed.
    """

    __slots__ = ("_sealed_rows", "_chunk_counts", "_sealed_log", "_segments")

    def __init__(self) -> None:
        self._sealed_rows: Dict[str, int] = {}
        self._chunk_counts: Dict[str, int] = {}
        self._sealed_log = 0
        self._segments: List[SharedIntSegment] = []

    def seal(
        self, index: PredicateIndex
    ) -> Optional[Tuple[Optional[str], int, List[Tuple[str, int, int, int, int, int]]]]:
        """Seal the index's postings delta; returns the payload descriptor.

        ``(segment_name, n_values, entries)`` where each entry is
        ``(predicate, position, replace, off, n_tids, n_rows)`` —
        the caller interns the predicate into the sync message's shared
        table and flattens.  ``(None, 0, [])`` when nothing changed since
        the last seal; ``None`` when shared memory gave out (the session
        falls back to the non-CSR protocol).
        """
        log = index.tombstone_log
        sealed_rows = self._sealed_rows
        dirty = set()
        for predicate, row_id, _gid, _arity in log[self._sealed_log :]:
            if row_id < sealed_rows.get(predicate, 0):
                dirty.add(predicate)
        self._sealed_log = len(log)
        values = array("q")
        entries: List[Tuple[str, int, int, int, int, int]] = []
        chunk_counts = self._chunk_counts
        for predicate, cols in index.cols.items():
            start = sealed_rows.get(predicate, 0)
            n_rows = cols.n_rows
            if predicate in dirty or (
                n_rows > start and chunk_counts.get(predicate, 0) >= _MAX_CSR_CHUNKS
            ):
                self._emit(values, entries, predicate, cols, 0, n_rows, replace=True)
                chunk_counts[predicate] = 1
            elif n_rows > start:
                self._emit(values, entries, predicate, cols, start, n_rows, replace=False)
                chunk_counts[predicate] = chunk_counts.get(predicate, 0) + 1
            else:
                continue
            sealed_rows[predicate] = n_rows
        if not entries:
            return (None, 0, [])
        segment = SharedIntSegment.create(values)
        if segment is None:  # pragma: no cover - /dev/shm unavailable or full
            return None
        for previous in self._segments:
            previous.release()
        self._segments = [segment]
        return (segment.name, len(values), entries)

    @staticmethod
    def _emit(
        values,
        entries: List[Tuple[str, int, int, int, int, int]],
        predicate: str,
        cols: ColumnBuffer,
        start: int,
        n_rows: int,
        replace: bool,
    ) -> None:
        """Append one chunk per touched lane of ``[start, n_rows)`` to the seal.

        Dead rows are skipped, so a replace chunk holds exactly the live
        postings; a delta chunk skips lanes no new row touched (untouched
        lanes keep their accumulated chunks).  A replace chunk is emitted
        even for an emptied lane — the directory record's ``replace`` flag
        is what drops the worker's stale chunks.
        """
        arities = cols.arities
        buffers = cols.buffers
        n_positions = len(buffers)
        lanes: List[Dict[int, List[int]]] = [{} for _ in range(n_positions)]
        for row_id in range(start, n_rows):
            arity = arities[row_id]
            if arity < 0:
                continue
            for position in range(arity):
                tid = buffers[position][row_id]
                bucket = lanes[position].get(tid)
                if bucket is None:
                    lanes[position][tid] = [row_id]
                else:
                    bucket.append(row_id)
        flag = 1 if replace else 0
        for position in range(n_positions):
            lane = lanes[position]
            if not lane and not replace:
                continue
            off = len(values)
            tids = sorted(lane)
            values.extend(tids)
            offsets = [0] * (len(tids) + 1)
            total = 0
            for slot, tid in enumerate(tids):
                total += len(lane[tid])
                offsets[slot + 1] = total
            values.extend(offsets)
            for tid in tids:
                values.extend(lane[tid])
            entries.append((predicate, position, flag, off, len(tids), total))

    def release(self) -> None:
        """Unlink the retained seal segment and forget all watermarks."""
        for segment in self._segments:
            segment.release()
        self._segments = []
        self._sealed_rows.clear()
        self._chunk_counts.clear()
        self._sealed_log = 0


class InstanceSnapshot:
    """A frozen prefix view of an :class:`~repro.datalog.database.Instance`.

    Captures the per-predicate row counts and the global insertion cut of the
    underlying instance at construction time; facts added to the instance
    afterwards are invisible through the view.  This is the negation
    reference the stratified engines need — "the facts of the strictly lower
    strata" — without the full re-index that ``Instance.copy()`` performed
    per stratum.  Deletions *do* propagate (the view shares the live
    storage): a holder that must not observe them checks :attr:`stale`,
    which is how the service layer turns a retraction under a pinned
    :class:`~repro.service.view.ViewSnapshot` into a loud error instead of
    silently missing rows.  Membership is answered both at the Atom level
    (``in``) and at the encoded-key level (:meth:`has_key`), the latter
    being the executors' hot path.
    """

    __slots__ = ("_ordinals", "_keys", "_index", "_cut", "_limits", "_size", "_tombstoned")

    def __init__(
        self,
        ordinals: Dict[Atom, int],
        keys: Dict[Tuple[int, ...], int],
        index: PredicateIndex,
        cut: int,
        limits: Dict[str, int],
        size: int,
    ):
        self._ordinals = ordinals
        self._keys = keys
        self._index = index
        self._cut = cut
        self._limits = limits
        self._size = size
        self._tombstoned = index.tombstoned

    def __contains__(self, atom: Atom) -> bool:
        ordinal = self._ordinals.get(atom)
        return ordinal is not None and ordinal < self._cut

    def has_key(self, key: Tuple[int, ...]) -> bool:
        """Encoded-fact membership inside the frozen prefix."""
        ordinal = self._keys.get(key)
        return ordinal is not None and ordinal < self._cut

    def __iter__(self) -> Iterator[Atom]:
        cut = self._cut
        for atom, ordinal in self._ordinals.items():
            if ordinal >= cut:
                break
            yield atom

    def __len__(self) -> int:
        # The captured size is exact unless the base instance deleted facts
        # after the snapshot; in that (rare, diagnostic-only) case, recount so
        # len() stays consistent with iteration and membership.
        if self._index.tombstoned != self._tombstoned:
            return sum(1 for _ in self)
        return self._size

    def __repr__(self) -> str:
        return f"InstanceSnapshot({self._size} atoms)"

    @property
    def stale(self) -> bool:
        """True once the base instance has deleted facts since the snapshot.

        The prefix view shares the live storage, so a deletion silently
        removes rows from under the snapshot; holders that promised their
        readers an immutable state (the service's published snapshots) check
        this and fail loudly instead.
        """
        return self._index.tombstoned != self._tombstoned

    @property
    def cut(self) -> int:
        """The global insertion ordinal this view is frozen at.

        Monotone over the lifetime of the base instance — the query
        service publishes it as the reader-visible high-water mark.
        """
        return self._cut

    def matching(self, pattern: Atom) -> Iterator[Atom]:
        """As ``Instance.matching``, restricted to the frozen prefix."""
        return self._index.scan(pattern, self._limits)

    def matching_ids(
        self,
        predicate: str,
        arity: int,
        pairs: Sequence[Tuple[int, int]] = (),
    ) -> Iterator[Tuple[int, ...]]:
        """As ``Instance.matching_ids``, restricted to the frozen prefix.

        This is the query service's snapshot-isolated read path: the captured
        per-predicate row counts are the ordinal high-water mark, so a reader
        holding this snapshot never observes rows a concurrent writer appends.
        """
        return self._index.scan_ids(predicate, arity, pairs, self._limits)

    def with_predicate(self, predicate: str) -> FrozenSet[Atom]:
        """The snapshot's facts over ``predicate`` (prefix rows only)."""
        rows = self._index.rows.get(predicate)
        if not rows:
            return frozenset()
        limit = min(len(rows), self._limits.get(predicate, 0))
        return frozenset(fact for fact in rows[:limit] if fact is not None)

    @property
    def predicates(self) -> FrozenSet[str]:
        """Predicates with at least one live fact inside the snapshot."""
        return frozenset(
            predicate
            for predicate, limit in self._limits.items()
            if any(fact is not None for fact in self._index.rows.get(predicate, ())[:limit])
        )

    def _plan_source(self) -> Tuple[PredicateIndex, Optional[Dict[str, int]]]:
        """(index, row limits) pair the join-plan executor runs against."""
        return self._index, self._limits
