"""Persisted compiled-plan bundles: skip rule compilation for fixed programs.

Plan compilation (:mod:`repro.engine.plan`) is cached per process, but a
fresh process — a CI bench-smoke run, a cold harness invocation, a worker
container — pays the greedy selectivity search and op construction for
every rule again before the first fact matches.  For the fixed programs of
this library (``tau_owl2ql_core``, the workload rulesets) that cost is pure
re-derivation of a deterministic result, so this module persists it:

* :func:`save_plan_cache` serialises every compiled rule bundle currently
  in the plan cache into a **structural, process-independent** form: atom
  orders, per-step op/probe lists, and slot layouts, with every interned
  constant written back as a ``(kind, spelling)`` token.  Term IDs are
  deliberately *not* persisted — they are process-history dependent — and
  no ``Rule`` / ``Atom`` / ``Term`` objects are pickled, so the file is
  immune to hash-seed and interning-order differences.
* :func:`load_plan_cache` stages the entries by rule digest (SHA-256 over
  the rule's canonical text plus a format version) and installs a lookup
  hook into :func:`repro.engine.plan.compile_rule`: a cache miss first
  tries to **rebuild** the plans from the staged structure — re-interning
  the constant tokens against this process's term table — and only falls
  back to full compilation for unknown rules.  Stale or corrupt files are
  ignored wholesale.

``benchmarks/harness.py --plan-cache PATH`` wires this into the benchmark
cold-start path: the harness stages the file before running scenarios and
rewrites it afterwards, so fixed programs stop paying compile cost from the
second invocation on.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Dict, Optional, Tuple

from repro.datalog.rules import Rule
from repro.datalog.terms import Variable
from repro.engine import plan as _plan
from repro.engine.interning import TERMS
from repro.engine.plan import (
    CHECK_CONST,
    PROBE_CONST,
    CompiledRule,
    JoinPlan,
    _Step,
)

#: Bump whenever the persisted structure or plan semantics change; loaders
#: ignore files (and entries) from other versions.
FORMAT_VERSION = 1

#: rule digest -> structural bundle, staged by :func:`load_plan_cache`.
_STAGED: Dict[str, dict] = {}

#: Rebuilds served from the staged file since it was loaded (telemetry for
#: the harness JSON).
_HITS = 0


def rule_digest(rule: Rule) -> str:
    """A content digest of ``rule`` (canonical text + format version)."""
    payload = f"{FORMAT_VERSION}\n{rule}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def program_digest(rules) -> str:
    """A digest over a whole rule sequence (the bundle's file-level key)."""
    digest = hashlib.sha256(str(FORMAT_VERSION).encode("utf-8"))
    for rule in rules:
        digest.update(str(rule).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


# -- serialisation -----------------------------------------------------------


def _token(tid: int) -> Tuple[str, str]:
    """A process-independent spelling of an interned constant payload."""
    term = TERMS.term(tid)
    return ("n", term.label) if tid & 1 else ("c", term.value)


def _untoken(token: Tuple[str, str]) -> int:
    """Re-intern a persisted payload token in this process's table."""
    kind, spelling = token
    if kind == "n":
        return TERMS.intern_null(spelling)
    return TERMS.intern_constant(spelling)


def _export_plan(plan: JoinPlan) -> dict:
    """The structural form of one compiled plan (no objects, no IDs).

    Steps reference atoms by index into ``plan.atoms`` — the plan's own
    canonical tuple (plans are value-cached, so their atom objects need not
    be identical to any particular rule's); rebuild resolves the indices
    against the loading rule's value-equal atoms.
    """
    index_of = {id(atom): i for i, atom in enumerate(plan.atoms)}
    steps = []
    for step in plan.steps:
        steps.append(
            {
                "atom": index_of[id(step.atom)],
                "ops": [
                    (code, position, _token(payload) if code == CHECK_CONST else payload)
                    for code, position, payload in step.ops
                ],
                "probes": [
                    (position, kind, _token(payload) if kind == PROBE_CONST else payload)
                    for position, kind, payload in step.probes
                ],
            }
        )
    return {
        "slots": [variable.name for variable in plan.slot_of],
        "prebound": sorted(variable.name for variable in plan.prebound),
        "steps": steps,
    }


def _rebuild_plan(structure: dict, atoms) -> JoinPlan:
    """Rebuild a :class:`JoinPlan` from its structural form.

    Constants are re-interned here, so the rebuilt ops carry IDs valid for
    *this* process regardless of who wrote the file.
    """
    slot_of = {Variable(name): slot for slot, name in enumerate(structure["slots"])}
    prebound = frozenset(Variable(name) for name in structure["prebound"])
    steps = []
    for step in structure["steps"]:
        atom = atoms[step["atom"]]
        ops = tuple(
            (code, position, _untoken(payload) if code == CHECK_CONST else payload)
            for code, position, payload in step["ops"]
        )
        probes = tuple(
            (position, kind, _untoken(payload) if kind == PROBE_CONST else payload)
            for position, kind, payload in step["probes"]
        )
        steps.append(_Step(atom, ops, probes))
    return JoinPlan(tuple(atoms), tuple(steps), slot_of, prebound)


def _export_rule(crule: CompiledRule) -> dict:
    """The structural bundle of one compiled rule."""
    rule = crule.rule
    return {
        "sig": str(rule),
        "plan": _export_plan(crule.plan),
        "pivots": [_export_plan(p) for p in crule.pivot_plans],
        "head_plan": (
            _export_plan(crule.head_plan)
            if crule.head_plan is not None
            else None
        ),
    }


def _rebuild_rule(rule: Rule, bundle: dict) -> Optional[CompiledRule]:
    """Rebuild a :class:`CompiledRule` for ``rule`` from a staged bundle."""
    if bundle.get("sig") != str(rule):  # digest collision or stale entry
        return None
    body = rule.body_positive
    try:
        plan = _rebuild_plan(bundle["plan"], body)
        pivots = tuple(_rebuild_plan(p, body) for p in bundle["pivots"])
        head_structure = bundle["head_plan"]
        head_plan = (
            _rebuild_plan(head_structure, rule.head)
            if head_structure is not None
            else None
        )
    except (KeyError, IndexError, TypeError, ValueError):
        # A malformed entry must never poison evaluation; recompile instead.
        return None
    if len(pivots) != len(body):
        return None
    return CompiledRule._restore(rule, plan, pivots, head_plan)


# -- public API --------------------------------------------------------------


def save_plan_cache(path: str, rules=None) -> int:
    """Persist compiled-plan bundles to ``path``; returns the entry count.

    ``rules`` restricts the export (compiling any that are missing);
    ``None`` exports every rule currently in the process plan cache —
    the harness's "whatever this run compiled" snapshot.  Bundles still
    staged from a previously loaded file are carried over, so partial runs
    extend the cache instead of truncating it — the deliberate trade-off is
    that entries for rules whose text has since changed stay in the file
    (their digests are simply never looked up); delete the file to reset.
    """
    if rules is None:
        compiled = list(_plan._RULE_CACHE.values())
    else:
        compiled = [_plan.compile_rule(rule) for rule in rules]
    # Start from the still-staged bundles (the previously persisted file), so
    # a filtered run rewriting the cache cannot silently drop entries for
    # rules it never compiled; freshly compiled exports win on collision.
    entries = dict(_STAGED)
    entries.update({rule_digest(c.rule): _export_rule(c) for c in compiled})
    document = {
        "format": FORMAT_VERSION,
        "digest": program_digest(sorted(entry["sig"] for entry in entries.values())),
        "entries": entries,
    }
    with open(path, "wb") as handle:
        pickle.dump(document, handle, pickle.HIGHEST_PROTOCOL)
    return len(entries)


def load_plan_cache(path: str) -> int:
    """Stage a persisted plan-cache file; returns the staged entry count.

    Unknown versions and unreadable files stage nothing (returning 0); the
    staging hook stays installed across calls, and later loads merge into
    the same staging area.
    """
    try:
        with open(path, "rb") as handle:
            document = pickle.load(handle)
    except Exception:
        # Unpickling arbitrary on-disk garbage raises a zoo of exception
        # types (ValueError for bad protocols, ImportError for renamed
        # classes, EOFError for truncation, ...); a stale or corrupt cache
        # must never fail the run it was meant to speed up.
        return 0
    if not isinstance(document, dict) or document.get("format") != FORMAT_VERSION:
        return 0
    entries = document.get("entries")
    if not isinstance(entries, dict):
        return 0
    try:
        expected = program_digest(sorted(entry["sig"] for entry in entries.values()))
    except Exception:
        return 0
    if document.get("digest") != expected:
        # File-level integrity: a partially written or hand-edited bundle
        # stages nothing rather than mixing suspect entries in.
        return 0
    _STAGED.update(entries)
    _plan.set_staged_lookup(_staged_lookup)
    return len(entries)


def _staged_lookup(rule: Rule) -> Optional[CompiledRule]:
    """The :func:`compile_rule` hook: rebuild from staging, if present."""
    bundle = _STAGED.get(rule_digest(rule))
    if bundle is None:
        return None
    rebuilt = _rebuild_rule(rule, bundle)
    if rebuilt is not None:
        global _HITS
        _HITS += 1
    return rebuilt


def staged_count() -> int:
    """Number of bundles currently staged."""
    return len(_STAGED)


def cache_hits() -> int:
    """Rebuilds served from staged bundles since this process started."""
    return _HITS


def clear_staging() -> None:
    """Drop the staged bundles and uninstall the lookup hook (tests)."""
    _STAGED.clear()
    _plan.set_staged_lookup(None)
