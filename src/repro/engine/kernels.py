"""Batch kernels over flat column buffers: numpy fast path, pure fallback.

The column-at-a-time executor spends almost all of its time in two loops:
extracting the *extension tuples* of one probe group (gather the bound
positions of every candidate row that survives the arity and intra-atom
checks) and materialising the per-round *distinct-value summaries* behind
pivot skipping.  Both are flat passes over the int64 columns of
:class:`~repro.engine.colbuf.ColumnBuffer`, which makes them exactly the
shape ``numpy`` vectorises well — *when* numpy exists and the pass is long
enough to amortise the array round-trip.

This module is the single dispatch point:

* :func:`extensions` / :func:`distinct_values` pick the numpy kernel when it
  is available **and** the candidate count crosses a small threshold, else
  run the pure-Python loop.  Both paths produce byte-identical results —
  same values (int64 round-trips through ``tolist()`` as exact Python ints),
  same order (masking preserves the ascending candidate order), same
  tombstone/arity filtering — which
  ``tests/test_engine_kernel_fuzz.py`` pins differentially.
* The pure path is **always kept and always reachable**: ``REPRO_NUMPY=0``
  forces it process-wide (the CI matrix runs a forced-pure leg), platforms
  without numpy never notice, and :func:`set_numpy_enabled` toggles it
  in-process for the differential tests.

Nothing here may influence *what* is computed — only how fast.  Every
caller treats these as drop-in replacements for the loops they had inline.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less platforms
    _np = None

# None = not resolved yet; resolved lazily so the env var can be set by test
# harnesses after import (matching repro.engine.mode).
_enabled: Optional[bool] = None

#: Candidate counts below this run the pure loop even with numpy on: the
#: candidate list reaches numpy through an O(n) ``np.asarray`` copy
#: (postings buckets are plain lists), so the crossover sits far higher
#: than the lane views' — measured break-even is ~200-700 candidates with
#: a ~1.2x ceiling above it.
_MIN_BULK = 256

#: Row counts below this run :func:`distinct_values` in pure Python.  The
#: scan reads whole lanes through zero-copy ``np.frombuffer`` views (no
#: per-call conversion), so its numpy path pays off much earlier than the
#: candidate-gather kernels'.
_MIN_BULK_SCAN = 48

#: CSR directory sizes below this resolve a :func:`csr_find` lookup with a
#: pure ``bisect`` — one binary search beats a ``searchsorted`` round-trip
#: until the directory is long enough to amortise the array wrap.
_MIN_BULK_CSR = 128

#: Anchor lengths below this run :func:`csr_intersect` with plain set
#: membership; ``np.isin`` sorts its operands, which only pays off once the
#: anchor (and the buckets hashed against it) are bulk-sized.
_MIN_BULK_INTERSECT = 256


def numpy_available() -> bool:
    """True iff the numpy module imported (regardless of the enable switch)."""
    return _np is not None


def numpy_enabled() -> bool:
    """True iff the numpy fast path is active for this process."""
    global _enabled
    if _enabled is None:
        raw = os.environ.get("REPRO_NUMPY")
        _enabled = _np is not None and raw != "0"
    return _enabled


def set_numpy_enabled(flag: bool) -> None:
    """Force the dispatch for this process (differential tests; idempotent).

    Enabling without numpy installed raises — a test asking for the fast
    path on a pure-python leg is a configuration error, not a silent skip.
    """
    global _enabled
    if flag and _np is None:
        raise RuntimeError("cannot enable numpy kernels: numpy is not importable")
    _enabled = bool(flag)


def _candidate_array(candidate_ids):
    """``candidate_ids`` as an int64 numpy array (zero-copy when flat)."""
    if isinstance(candidate_ids, range):
        return _np.arange(
            candidate_ids.start, candidate_ids.stop, dtype=_np.int64
        )
    if isinstance(candidate_ids, (bytearray, memoryview)):  # pragma: no cover
        return _np.frombuffer(candidate_ids, dtype=_np.int64)
    try:
        # array('q') postings buckets expose the buffer protocol: zero-copy.
        return _np.frombuffer(candidate_ids, dtype=_np.int64)
    except (TypeError, ValueError, BufferError):
        return _np.asarray(candidate_ids, dtype=_np.int64)


def _np_view(column, n_rows: int):
    """A transient int64 view of one column region, clipped to ``n_rows``."""
    view = _np.frombuffer(column, dtype=_np.int64)
    return view[:n_rows] if len(view) != n_rows else view


def extensions(
    colbuf,
    candidate_ids,
    arity: int,
    bind_positions: Tuple[int, ...],
    intra_pairs: Tuple[Tuple[int, int], ...],
) -> List[Tuple[int, ...]]:
    """The verified extension tuples for one probe group, ids ascending.

    For each candidate row id (ascending), keep the row iff it is live with
    the step's arity and every intra-atom repeated-variable pair agrees,
    then emit the tuple of its values at ``bind_positions``.  This is the
    single hottest loop of batch mode; semantics are pinned against the
    tuple-era implementation by the parity and fuzz suites.
    """
    if (
        len(candidate_ids) >= _MIN_BULK
        and numpy_enabled()
    ):
        return _extensions_np(colbuf, candidate_ids, arity, bind_positions, intra_pairs)
    arities = colbuf.arities
    buffers = colbuf.buffers
    exts: List[Tuple[int, ...]] = []
    append = exts.append
    n_bind = len(bind_positions)
    if not intra_pairs and n_bind <= 2:
        # The dominant shapes (0-2 fresh variables, no repeated variable
        # inside the atom) get allocation-minimal loops over the flat
        # columns.
        if n_bind == 0:
            for row_id in candidate_ids:
                if arities[row_id] == arity:
                    append(())
        elif n_bind == 1:
            column = buffers[bind_positions[0]]
            for row_id in candidate_ids:
                if arities[row_id] == arity:
                    append((column[row_id],))
        else:
            first = buffers[bind_positions[0]]
            second = buffers[bind_positions[1]]
            for row_id in candidate_ids:
                if arities[row_id] == arity:
                    append((first[row_id], second[row_id]))
        return exts
    for row_id in candidate_ids:
        if arities[row_id] != arity:
            continue
        for position, bound_position in intra_pairs:
            if buffers[position][row_id] != buffers[bound_position][row_id]:
                break
        else:
            append(tuple(buffers[position][row_id] for position in bind_positions))
    return exts


def _extensions_np(
    colbuf, candidate_ids, arity, bind_positions, intra_pairs
) -> List[Tuple[int, ...]]:
    n_rows = colbuf.n_rows
    ids = _candidate_array(candidate_ids)
    arities = _np_view(colbuf.arities, n_rows)
    mask = arities[ids] == arity
    if intra_pairs:
        buffers = colbuf.buffers
        for position, bound_position in intra_pairs:
            left = _np_view(buffers[position], n_rows)
            right = _np_view(buffers[bound_position], n_rows)
            mask &= left[ids] == right[ids]
    keep = ids[mask]
    n_keep = len(keep)
    if n_keep == 0:
        return []
    n_bind = len(bind_positions)
    if n_bind == 0:
        return [()] * n_keep
    buffers = colbuf.buffers
    if n_bind == 1:
        column = _np_view(buffers[bind_positions[0]], n_rows)
        return [(value,) for value in column[keep].tolist()]
    gathered = [
        _np_view(buffers[position], n_rows)[keep].tolist()
        for position in bind_positions
    ]
    return list(zip(*gathered))


def distinct_values(colbuf, position: int, cap: int) -> Optional[frozenset]:
    """The distinct live values at ``position``, or None past the budget.

    Mirrors the tuple-era semantics exactly: tombstoned rows and rows whose
    arity does not reach ``position`` are skipped; exceeding ``cap`` distinct
    values yields None (no usable summary).  The numpy path may count all
    distinct values before comparing against the budget — the *verdict* is
    identical, which is all the (gated) ``pivots_skipped`` counter sees.
    """
    n_rows = colbuf.n_rows
    if position >= len(colbuf.buffers):
        return frozenset()
    if n_rows >= _MIN_BULK_SCAN and numpy_enabled():
        arities = _np_view(colbuf.arities, n_rows)
        column = _np_view(colbuf.buffers[position], n_rows)
        values = _np.unique(column[arities > position])
        if len(values) > cap:
            return None
        return frozenset(values.tolist())
    arities = colbuf.arities
    column = colbuf.buffers[position]
    values = set()
    add = values.add
    for row_id in range(n_rows):
        if arities[row_id] > position:
            add(column[row_id])
            if len(values) > cap:
                return None
    return frozenset(values)


def csr_find(tids, offsets, rows, tid: int):
    """The row-id bucket for ``tid`` in one sealed CSR chunk, or None.

    ``tids`` is the chunk's sorted term-ID directory, ``offsets`` its
    ``len(tids) + 1`` prefix-sum array, ``rows`` the flat ascending row-id
    payload; all three are int64 sequences (shared-memory ``memoryview``
    slices on the worker path, plain arrays in tests).  The returned bucket
    is a zero-copy slice of ``rows`` — a memoryview slice stays a
    memoryview, so no row id is materialised until a consumer iterates.

    The numpy ``searchsorted`` fast path and the pure ``bisect`` fallback
    locate the same directory slot, so the result is representation- and
    dispatch-identical (``REPRO_NUMPY=0`` honoured like every kernel here).
    """
    n_tids = len(tids)
    if not n_tids:
        return None
    if n_tids >= _MIN_BULK_CSR and numpy_enabled():
        slot = int(_np.searchsorted(_candidate_array(tids), tid))
    else:
        slot = bisect_left(tids, tid)
    if slot >= n_tids or tids[slot] != tid:
        return None
    return rows[offsets[slot] : offsets[slot + 1]]


def csr_intersect(anchor, others) -> List[int]:
    """Ids of ``anchor`` present in every bucket of ``others``, ascending.

    The multi-bound CSR probe: ``anchor`` is the shortest (already capped)
    bucket, ``others`` the remaining buckets — all ascending, duplicate-free
    row-id sequences.  The numpy path masks the anchor with ``np.isin``
    (``assume_unique`` holds by construction); the pure path hashes each
    other bucket once.  Both preserve the anchor's ascending order, so the
    outputs are byte-identical.
    """
    if len(anchor) >= _MIN_BULK_INTERSECT and numpy_enabled():
        kept = _candidate_array(anchor)
        for other in others:
            if not len(kept):
                break
            mask = _np.isin(
                kept, _candidate_array(other), assume_unique=True
            )
            kept = kept[mask]
        return kept.tolist()
    out: List[int] = []
    sets = [set(other) for other in others]
    for row_id in anchor:
        for other in sets:
            if row_id not in other:
                break
        else:
            out.append(row_id)
    return out
