"""The shared join-plan evaluation core.

Every engine in the library — the restricted/oblivious chase
(:mod:`repro.datalog.chase`), the semi-naive Datalog¬s evaluator
(:mod:`repro.datalog.seminaive`), and the warded materialisation engine
(:mod:`repro.core.warded_engine`) — evaluates rule bodies through this
package instead of re-deriving join strategy per call:

* :mod:`repro.engine.interning` dictionary-encodes every ground term (and
  predicate name) into a dense int ID via the process-global
  :data:`~repro.engine.interning.TERMS` table — constants even, nulls odd —
  and the whole stack below runs on those IDs; decoding happens only at
  result boundaries.
* :class:`~repro.engine.index.PredicateIndex` stores facts in append-only
  per-predicate rows (the decoded view) plus aligned **ID rows** with hash
  postings of row ids per ``(predicate, position, term-ID)``, so candidate
  buckets are iterated under a captured length instead of being copied per
  lookup, and frozen prefix views
  (:class:`~repro.engine.index.InstanceSnapshot` via ``Instance.snapshot()``)
  come for free.  ``probe_ids`` is the bulk probe: a capped postings slice,
  or a posting-list intersection over several bound positions.
* :func:`~repro.engine.plan.compile_body` / :func:`~repro.engine.plan.compile_rule`
  turn a rule body into a :class:`~repro.engine.plan.JoinPlan` exactly once:
  atoms are selectivity-ordered, every position is resolved at plan time into
  a constant check, a bound-slot check, or a slot binding (this covers
  repeated variables), negated atoms become precompiled membership probes,
  and semi-naive pivots get one dedicated plan per body atom.
* Each plan has **three executors** selected by :mod:`repro.engine.mode`
  (``REPRO_ENGINE_MODE`` / ``REPRO_ENGINE_PARALLEL`` env vars, or
  :func:`set_execution_mode`): the row-at-a-time depth-first backtracker
  (``JoinPlan.execute``); the column-at-a-time batch executor
  (:mod:`repro.engine.batch`, ``JoinPlan.run_batch``, the default) that
  extends a whole batch of partial matches per step, sharing one bulk index
  probe per distinct probe key and filtering negation in bulk against frozen
  snapshot views; and the sharded parallel executor
  (:mod:`repro.engine.shard` + :mod:`repro.engine.parallel`) that
  hash-partitions step-0 candidates across a pool of worker processes and
  merges the per-shard streams back into batch order by global insertion
  ordinal.  All three produce the same matches in the same order, so results
  and counters are mode-independent.
* :mod:`repro.engine.stats` exposes the counters (facts added, triggers
  fired, nulls invented, pivots skipped, batch probe groups) that
  ``benchmarks/harness.py`` samples per scenario and per execution mode.
* :mod:`repro.engine.reference` keeps the original interpretive backtracker
  as the executable specification that the differential tests in
  ``tests/test_engine_parity.py`` and the fuzz suite in
  ``tests/test_engine_batch_parity.py`` compare both compiled paths against.
"""

from repro.engine.index import InstanceSnapshot, PredicateIndex
from repro.engine.interning import TERMS, TermTable, is_null_id
from repro.engine.mode import (
    batch_enabled,
    execution_mode,
    get_execution_mode,
    get_worker_count,
    parallel_enabled,
    set_execution_mode,
    set_worker_count,
)
from repro.engine.parallel import (
    ParallelSession,
    maybe_session,
    parallel_threshold,
    parallel_threshold_override,
    set_parallel_threshold,
    shutdown_pool,
)
from repro.engine.plan import CompiledRule, JoinPlan, compile_body, compile_rule
from repro.engine.plancache import load_plan_cache, save_plan_cache
from repro.engine.shard import ShardedInstance, merge_sharded, run_batch_sharded, shard_of
from repro.engine.stats import STATS, EngineStats

# The incremental streaming subsystem builds *on top of* the datalog layer
# (which itself imports this package), so it is re-exported lazily: an eager
# import here would run mid-way through repro.datalog's initialisation.
_INCREMENTAL_EXPORTS = ("DeltaSession", "PushResult", "cold_equivalent")


def __getattr__(name: str):
    """PEP 562 lazy re-export of :mod:`repro.engine.incremental`."""
    if name in _INCREMENTAL_EXPORTS:
        from repro.engine import incremental

        return getattr(incremental, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CompiledRule",
    "DeltaSession",
    "PushResult",
    "cold_equivalent",
    "EngineStats",
    "InstanceSnapshot",
    "JoinPlan",
    "ParallelSession",
    "PredicateIndex",
    "STATS",
    "ShardedInstance",
    "TERMS",
    "TermTable",
    "batch_enabled",
    "compile_body",
    "compile_rule",
    "execution_mode",
    "get_execution_mode",
    "get_worker_count",
    "is_null_id",
    "load_plan_cache",
    "maybe_session",
    "merge_sharded",
    "parallel_enabled",
    "parallel_threshold",
    "parallel_threshold_override",
    "run_batch_sharded",
    "save_plan_cache",
    "set_execution_mode",
    "set_parallel_threshold",
    "set_worker_count",
    "shard_of",
    "shutdown_pool",
]
