"""The seed's interpretive matcher, kept as an executable specification.

This is, verbatim in behaviour, the backtracking homomorphism matcher that
``repro.datalog.chase.match_atoms`` implemented before the compiled join-plan
core existed: selectivity reordering by constant count, substitution
application per step, and per-fact unification.  It is deliberately simple
and obviously correct, which makes it the reference oracle for the
differential tests in ``tests/test_engine_parity.py`` — every compiled plan
must produce exactly this set of substitutions.

Production code must not import this module; it is quadratic-ish in all the
ways the compiled core exists to avoid.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence

from repro.datalog.atoms import Atom, unify_with_fact
from repro.datalog.terms import Term, Variable


def reference_match_atoms(
    atoms: Sequence[Atom],
    instance,
    initial: Optional[Dict[Variable, Term]] = None,
) -> Iterator[Dict[Variable, Term]]:
    """All homomorphisms mapping every atom of ``atoms`` into ``instance``."""
    substitution: Dict[Variable, Term] = dict(initial or {})
    ordered = sorted(
        atoms,
        key=lambda a: -sum(1 for t in a.terms if not isinstance(t, Variable)),
    )

    def backtrack(position: int) -> Iterator[Dict[Variable, Term]]:
        """Depth-first extension of ``substitution`` over atoms[index:]."""
        if position == len(ordered):
            yield dict(substitution)
            return
        pattern = ordered[position].apply(substitution)
        for fact in instance.matching(pattern):
            binding = unify_with_fact(pattern, fact)
            if binding is None:
                continue
            for variable, value in binding.items():
                substitution[variable] = value
            yield from backtrack(position + 1)
            for variable in binding:
                del substitution[variable]

    return backtrack(0)


def reference_satisfies_some(
    atoms: Sequence[Atom], instance, substitution: Dict[Variable, Term]
) -> bool:
    """True iff at least one of ``atoms`` (under ``substitution``) holds in ``instance``."""
    for atom in atoms:
        grounded = atom.apply(substitution)
        for fact in instance.matching(grounded):
            if unify_with_fact(grounded, fact) is not None:
                return True
    return False
