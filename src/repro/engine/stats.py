"""Global engine counters sampled by the benchmark harness.

The harness (``benchmarks/harness.py``) needs per-scenario throughput
numbers — facts materialised, triggers fired, nulls invented — without every
benchmark having to thread a result object out of whatever engine it happens
to exercise.  The engines therefore increment one process-global
:class:`EngineStats` instance (:data:`STATS`); the harness resets it before a
measured run and snapshots it afterwards.

Two classes of counter coexist:

* **Mode-independent** (``facts_added``, ``triggers_fired``,
  ``nulls_invented``, ``pivots_skipped``, and the retraction trio
  ``retractions`` / ``rederived`` / ``nulls_collected``) — identical whether
  plans run row-at-a-time, column-at-a-time, or sharded across the parallel
  worker pool, because every executor produces the same matches in the same
  order, the pivot-skip test is shared (and evaluated in the parent in
  parallel mode), and firing always happens in the parent process.  The
  retraction counters are defined on *sets* (the over-deleted closure, the
  restored survivors, the unreachable nulls), which makes them
  match-order-independent by construction.  These are the counters the
  bench-smoke gate diffs against the committed baseline;
  ``tests/test_engine_stats_determinism.py`` pins both the repeatability and
  the cross-mode equality.
* **Batch instrumentation** (``batch_probe_groups``) — only advances in
  batch/parallel mode; it counts distinct probe-key groups per step and is
  reported in the benchmark JSON but never gated.  In parallel mode the
  worker-side groups are aggregated back into the parent's counter per match
  task (sharded probing changes the grouping, so the value is comparable
  within a mode but not across modes — another reason it is never gated).
* **Parallel instrumentation** (``parallel_tasks``, ``parallel_fallbacks``)
  — only advances in parallel mode: match dispatches actually fanned out to
  the worker pool, and dispatches that fell back to the in-process batch
  executor because the estimated candidate count was below the cost
  threshold.  Reported, never gated.

The counters are advisory instrumentation: they are not thread-safe and must
never influence evaluation results.

**Thread scoping.**  The blob's single-writer assumption holds for the
harness and the service's writer thread, but the query service also runs
engine code on concurrent *reader* threads.  Those threads must not mutate
the global blob (lost updates would silently corrupt the writer's gated
counters), so the shared counter sites consult :func:`active_stats` — the
thread's scratch :class:`EngineStats` bound by :func:`local_stats`, or
:data:`STATS` when none is bound.  The service's read path binds a scratch
blob around every query (:meth:`repro.service.view.MaterializedView.read`);
single-threaded callers never bind one and keep the exact historical
behaviour.  Only the sites reachable from reader threads pay the lookup —
the per-trigger hot counters of the chase and semi-naive loops run on the
writer thread (or in worker processes with their own module globals) and
keep writing :data:`STATS` directly.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass


@dataclass
class EngineStats:
    """Monotonic counters incremented by the evaluation engines."""

    facts_added: int = 0
    triggers_fired: int = 0
    nulls_invented: int = 0
    #: Semi-naive pivots skipped because the delta's postings bucket for a
    #: bound (constant) term of the pivot atom was empty — the cost-based
    #: pivot selection of the ROADMAP, identical in both execution modes.
    pivots_skipped: int = 0
    #: Facts physically removed by DRed retraction: the retracted EDB seeds
    #: plus the over-deleted downward closure that was tombstoned before
    #: re-derivation ran.  Defined on the marked *set*, so mode-independent.
    retractions: int = 0
    #: Over-deleted facts restored by the re-derivation phase because they
    #: still had alternative support in the surviving instance.
    rederived: int = 0
    #: Invented nulls dropped by the post-retraction garbage collector
    #: because no surviving fact references them (odd-ID reachability scan).
    nulls_collected: int = 0
    #: Distinct probe-key groups evaluated by the batch executor (0 in row
    #: mode); the ratio to batch rows shows how much probe work was shared.
    #: In parallel mode, worker-side groups are folded in per match task.
    batch_probe_groups: int = 0
    #: Match dispatches fanned out to the parallel worker pool (0 outside
    #: parallel mode).
    parallel_tasks: int = 0
    #: Parallel-mode dispatches that ran in-process instead because the
    #: estimated candidate count was below the cost threshold.
    parallel_fallbacks: int = 0
    #: Total bytes of parallel IPC payload shipped (sync broadcasts, counted
    #: once per worker, plus worker match-result payloads).  0 outside
    #: parallel mode.  The dictionary-encoded columnar wire format exists to
    #: drive this down; the bench-smoke gate fails if it regresses.
    parallel_bytes_shipped: int = 0
    #: Bytes of parallel match results transferred through worker-created
    #: shared-memory segments instead of the result pipe (0 outside the
    #: shared-memory protocol).  Reported, never gated: together with
    #: ``parallel_bytes_shipped`` it shows how much of the old pipe volume
    #: the zero-copy attach protocol eliminated versus merely relocated.
    parallel_shm_bytes: int = 0
    #: Rows (re)posted into worker-local postings dicts during parallel
    #: syncs, folded back from the workers per match task.  The CSR sealing
    #: protocol exists to drive this to 0: workers attach the parent's
    #: sealed postings read-only instead of rebuilding their own.  Reported,
    #: never gated (it legitimately differs across protocol legs).
    postings_rebuilt: int = 0
    #: Predicate lane compactions performed by the DRed maintenance path
    #: (tombstone ratio crossed the threshold and the live rows were packed
    #: and renumbered).  Reported, never gated — the forced-compaction CI
    #: leg runs with a deliberately different trigger threshold.
    compactions: int = 0
    #: Nanoseconds the parent spent inside parallel sync shipments (segment
    #: promotion, CSR sealing, payload pickling, broadcast) — the slice of
    #: dispatch latency the zero-copy protocol targets.  Wall-clock, so
    #: reported but never gated.
    parallel_sync_ns: int = 0

    def reset(self) -> None:
        """Zero every counter (the harness calls this before a measured run)."""
        self.facts_added = 0
        self.triggers_fired = 0
        self.nulls_invented = 0
        self.pivots_skipped = 0
        self.retractions = 0
        self.rederived = 0
        self.nulls_collected = 0
        self.batch_probe_groups = 0
        self.parallel_tasks = 0
        self.parallel_fallbacks = 0
        self.parallel_bytes_shipped = 0
        self.parallel_shm_bytes = 0
        self.postings_rebuilt = 0
        self.compactions = 0
        self.parallel_sync_ns = 0

    def snapshot(self) -> dict:
        """A plain-dict copy, in the key order the harness JSON uses."""
        return {
            "facts_added": self.facts_added,
            "triggers_fired": self.triggers_fired,
            "nulls_invented": self.nulls_invented,
            "pivots_skipped": self.pivots_skipped,
            "retractions": self.retractions,
            "rederived": self.rederived,
            "nulls_collected": self.nulls_collected,
            "batch_probe_groups": self.batch_probe_groups,
            "parallel_tasks": self.parallel_tasks,
            "parallel_fallbacks": self.parallel_fallbacks,
            "parallel_bytes_shipped": self.parallel_bytes_shipped,
            "parallel_shm_bytes": self.parallel_shm_bytes,
            "postings_rebuilt": self.postings_rebuilt,
            "compactions": self.compactions,
            "parallel_sync_ns": self.parallel_sync_ns,
        }

    def gated(self) -> dict:
        """The mode-independent counters the bench-smoke gate compares."""
        return {
            "facts_added": self.facts_added,
            "triggers_fired": self.triggers_fired,
            "nulls_invented": self.nulls_invented,
            "pivots_skipped": self.pivots_skipped,
            "retractions": self.retractions,
            "rederived": self.rederived,
            "nulls_collected": self.nulls_collected,
        }


STATS = EngineStats()

_LOCAL = threading.local()


def active_stats() -> EngineStats:
    """The stats blob for this thread: the bound scratch one, else :data:`STATS`."""
    local = getattr(_LOCAL, "stats", None)
    return STATS if local is None else local


@contextmanager
def local_stats(stats: EngineStats = None):
    """Bind a scratch :class:`EngineStats` for this thread's counter sites.

    While bound, every counter site that goes through :func:`active_stats`
    lands in the scratch blob instead of the process-global one — the
    isolation the service's concurrent readers rely on.  Bindings nest;
    the previous binding (or none) is restored on exit.  Yields the bound
    blob so callers can inspect what their scope accumulated.
    """
    if stats is None:
        stats = EngineStats()
    previous = getattr(_LOCAL, "stats", None)
    _LOCAL.stats = stats
    try:
        yield stats
    finally:
        _LOCAL.stats = previous
