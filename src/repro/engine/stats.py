"""Global engine counters sampled by the benchmark harness.

The harness (``benchmarks/harness.py``) needs per-scenario throughput
numbers — facts materialised, triggers fired, nulls invented — without every
benchmark having to thread a result object out of whatever engine it happens
to exercise.  The engines therefore increment one process-global
:class:`EngineStats` instance (:data:`STATS`); the harness resets it before a
measured run and snapshots it afterwards.

The counters are advisory instrumentation: they are not thread-safe and must
never influence evaluation results.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EngineStats:
    """Monotonic counters incremented by the evaluation engines."""

    facts_added: int = 0
    triggers_fired: int = 0
    nulls_invented: int = 0

    def reset(self) -> None:
        self.facts_added = 0
        self.triggers_fired = 0
        self.nulls_invented = 0

    def snapshot(self) -> dict:
        """A plain-dict copy, in the key order the harness JSON uses."""
        return {
            "facts_added": self.facts_added,
            "triggers_fired": self.triggers_fired,
            "nulls_invented": self.nulls_invented,
        }


STATS = EngineStats()
