"""Column-at-a-time execution of compiled join plans.

The row-at-a-time executor (``JoinPlan._run``) walks the join depth-first,
re-probing the index once per outer binding: for every partial match it picks
a postings bucket, iterates candidate row ids, and verifies ops one fact at a
time.  On large relations that means the Python interpreter re-executes the
same probe machinery thousands of times with different-but-often-equal probe
keys.

This module executes the same plan **step by step over a whole batch**: each
:class:`_BatchStep` consumes a list of partial slot tuples and produces the
list extended through one body atom.  Since the dictionary-encoding refactor
(:mod:`repro.engine.interning`), slot tuples carry **term IDs**: probes,
probe-key grouping, and intra-atom equality checks are all flat int
operations over the index's packed column buffers
(:attr:`~repro.engine.index.PredicateIndex.cols`, one
:class:`~repro.engine.colbuf.ColumnBuffer` per predicate) — no term-object
hashing anywhere in the loop, and the extension kernel itself lives in
:mod:`repro.engine.kernels` (numpy fast path + pure fallback).

* **Bulk probes** — the batch is grouped by the tuple of probed slot values;
  one :meth:`~repro.engine.index.PredicateIndex.probe_ids` call (a capped
  postings slice, or a posting-list intersection when several positions are
  bound) serves every row with the same key, and the verified *extensions*
  (the terms bound by the step) are computed once per key and reused.
* **Per-step dedup for repeated variables** — a repeated variable inside one
  atom compiles to a fact-internal equality (``terms[i] == terms[j]``)
  checked once per candidate fact per group, not once per (row, fact) pair;
  a variable repeated across atoms becomes part of the probe key, so its
  equality is enforced by the grouped probe itself.
* **Snapshot isolation** — the per-predicate row caps of the source
  (``Instance`` → live row counts captured at run start,
  ``InstanceSnapshot`` → the frozen limits) bound every probe, so a batch
  run never sees rows appended after its caps were captured.

**Order guarantee**: extensions are emitted row-major with candidate row ids
ascending — exactly the depth-first order of the row-at-a-time executor.
Both executors therefore produce the *same matches in the same order*, which
keeps engine results, invented-null sequences, and the stats counters
bit-identical across modes (``tests/test_engine_batch_parity.py`` enforces
this differentially against ``engine/reference.py`` as well).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.engine import kernels
from repro.engine.stats import active_stats
from repro.obs.profile import PROFILER

#: A (partial) match: one term ID per bound slot, in slot order.
SlotRow = Tuple[int, ...]


class _BatchStep:
    """One join step, recompiled for batched execution.

    Derived from the row executor's ``_Step``: every verification op is
    reclassified by *when* it can be evaluated under grouping —

    * constant probes / bound-slot probes → the probe key (enforced by
      ``probe_ids``, shared per group),
    * ``BIND_SLOT`` ops → ``bind_positions`` (the extension tuple), and
    * within-atom repeated-variable checks → ``intra_pairs``
      (fact-internal, verified once per candidate).
    """

    __slots__ = (
        "predicate",
        "arity",
        "const_pairs",
        "slot_probes",
        "bind_positions",
        "intra_pairs",
    )

    def __init__(self, step) -> None:
        from repro.engine.plan import BIND_SLOT, CHECK_CONST, CHECK_SLOT, PROBE_CONST

        self.predicate: str = step.predicate
        self.arity: int = step.arity
        self.const_pairs: Tuple[Tuple[int, int], ...] = tuple(
            (position, payload)
            for position, kind, payload in step.probes
            if kind == PROBE_CONST
        )
        self.slot_probes: Tuple[Tuple[int, int], ...] = tuple(
            (position, payload)
            for position, kind, payload in step.probes
            if kind != PROBE_CONST
        )
        bind_positions: List[int] = []
        intra_pairs: List[Tuple[int, int]] = []
        bound_here: Dict[int, int] = {}  # slot -> position that binds it
        for code, position, payload in step.ops:
            if code == BIND_SLOT:
                bound_here[payload] = position
                bind_positions.append(position)
            elif code == CHECK_SLOT and payload in bound_here:
                # Repeated variable within this atom: the check compares two
                # positions of the same fact, so it is row-independent.
                intra_pairs.append((position, bound_here[payload]))
            elif code == CHECK_CONST or code == CHECK_SLOT:
                # Hoisted checks always carry a probe; the grouped probe key
                # enforces them, so nothing remains to verify per row.
                pass
        self.bind_positions = tuple(bind_positions)
        self.intra_pairs = tuple(intra_pairs)

    # -- execution -----------------------------------------------------------

    def apply(self, index, limits, rows_in: List[SlotRow]) -> List[SlotRow]:
        """Extend every partial row in ``rows_in`` through this atom.

        Deliberately duplicated by :meth:`apply_tracked` (the gid-carrying
        variant) rather than wrapped: this loop is the hottest path of the
        default executor and a tag stream would cost every batch-mode row.
        Change the probe/extension logic in BOTH methods — the shard parity
        suite (``tests/test_engine_shard_parity.py``) fails on divergence.
        """
        predicate = self.predicate
        rows = index.cols.get(predicate)
        if not rows:
            return []
        cap = len(rows) if limits is None else min(len(rows), limits.get(predicate, 0))
        if cap <= 0:
            return []
        out: List[SlotRow] = []
        append = out.append
        extend = out.extend
        slot_probes = self.slot_probes
        if not slot_probes:
            # Every row shares one probe key: compute the extensions once and
            # take the cross product.
            exts = self._extensions(
                rows, index.probe_ids(predicate, self.const_pairs, cap)
            )
            active_stats().batch_probe_groups += 1
            if exts:
                for row in rows_in:
                    extend([row + ext for ext in exts])
            return out
        const_pairs = self.const_pairs
        probe_ids = index.probe_ids
        cache: Dict[object, List[SlotRow]] = {}
        cache_get = cache.get
        if len(slot_probes) == 1:
            position, slot = slot_probes[0]
            for row in rows_in:
                key = row[slot]
                exts = cache_get(key)
                if exts is None:
                    pairs = const_pairs + ((position, key),)
                    exts = self._extensions(rows, probe_ids(predicate, pairs, cap))
                    cache[key] = exts
                if exts:
                    if len(exts) == 1:
                        append(row + exts[0])
                    else:
                        extend([row + ext for ext in exts])
        else:
            for row in rows_in:
                key = tuple(row[slot] for _, slot in slot_probes)
                exts = cache_get(key)
                if exts is None:
                    pairs = const_pairs + tuple(
                        (position, value)
                        for (position, _), value in zip(slot_probes, key)
                    )
                    exts = self._extensions(rows, probe_ids(predicate, pairs, cap))
                    cache[key] = exts
                if exts:
                    if len(exts) == 1:
                        append(row + exts[0])
                    else:
                        extend([row + ext for ext in exts])
        active_stats().batch_probe_groups += len(cache)
        return out

    def apply_tracked(
        self, index, limits, gids_in: List[int], rows_in: List[SlotRow]
    ) -> Tuple[List[int], List[SlotRow]]:
        """:meth:`apply`, carrying a per-row tag through the step.

        The sharded executor (:mod:`repro.engine.shard`) tags every partial
        row with the global insertion ordinal of its step-0 candidate; the
        tag is what lets the parent process merge the per-shard result
        streams back into the exact single-process match order.  Extensions
        inherit their input row's tag, and output order is row-major with
        candidates ascending — identical to :meth:`apply`.
        """
        predicate = self.predicate
        rows = index.cols.get(predicate)
        if not rows:
            return [], []
        cap = len(rows) if limits is None else min(len(rows), limits.get(predicate, 0))
        if cap <= 0:
            return [], []
        out_gids: List[int] = []
        out_rows: List[SlotRow] = []
        append_gid = out_gids.append
        append_row = out_rows.append
        slot_probes = self.slot_probes
        if not slot_probes:
            exts = self._extensions(
                rows, index.probe_ids(predicate, self.const_pairs, cap)
            )
            active_stats().batch_probe_groups += 1
            if exts:
                for gid, row in zip(gids_in, rows_in):
                    for ext in exts:
                        append_gid(gid)
                        append_row(row + ext)
            return out_gids, out_rows
        const_pairs = self.const_pairs
        probe_ids = index.probe_ids
        cache: Dict[object, List[SlotRow]] = {}
        cache_get = cache.get
        if len(slot_probes) == 1:
            position, slot = slot_probes[0]
            for gid, row in zip(gids_in, rows_in):
                key = row[slot]
                exts = cache_get(key)
                if exts is None:
                    pairs = const_pairs + ((position, key),)
                    exts = self._extensions(rows, probe_ids(predicate, pairs, cap))
                    cache[key] = exts
                for ext in exts:
                    append_gid(gid)
                    append_row(row + ext)
        else:
            for gid, row in zip(gids_in, rows_in):
                key = tuple(row[slot] for _, slot in slot_probes)
                exts = cache_get(key)
                if exts is None:
                    pairs = const_pairs + tuple(
                        (position, value)
                        for (position, _), value in zip(slot_probes, key)
                    )
                    exts = self._extensions(rows, probe_ids(predicate, pairs, cap))
                    cache[key] = exts
                for ext in exts:
                    append_gid(gid)
                    append_row(row + ext)
        active_stats().batch_probe_groups += len(cache)
        return out_gids, out_rows

    def _extensions(self, cols, candidate_ids) -> List[SlotRow]:
        """The verified extension tuples for one probe key, ids ascending.

        Delegates to :func:`repro.engine.kernels.extensions`, which scans the
        predicate's flat :class:`~repro.engine.colbuf.ColumnBuffer` columns —
        via numpy when available and worthwhile, via the pure loop otherwise.
        """
        return kernels.extensions(
            cols, candidate_ids, self.arity, self.bind_positions, self.intra_pairs
        )


class BatchPlan:
    """The column-at-a-time executor for one compiled :class:`JoinPlan`.

    Built lazily on first batch execution and cached on the plan, so the
    recompilation cost is paid once per (cached) plan per process.
    """

    __slots__ = ("plan", "steps", "n_prebound")

    def __init__(self, plan) -> None:
        self.plan = plan
        self.steps = tuple(_BatchStep(step) for step in plan.steps)
        self.n_prebound = len(plan.prebound)
        # The batch representation relies on slots being assigned in
        # first-binding order (prebound first, then step by step), so a
        # partial row is always a prefix of the full slot tuple.
        from repro.engine.plan import BIND_SLOT

        prefix = self.n_prebound
        for plan_step in plan.steps:
            for code, _position, payload in plan_step.ops:
                if code == BIND_SLOT:
                    if payload != prefix:
                        raise AssertionError(
                            f"non-prefix slot assignment in {plan.atoms}: "
                            f"slot {payload} bound at prefix {prefix}"
                        )
                    prefix += 1

    def run(
        self,
        source,
        initial: Optional[Dict] = None,
        delta_source=None,
    ) -> List[SlotRow]:
        """All matches as full slot tuples, in depth-first (row-mode) order."""
        index, limits = source._plan_source()
        if delta_source is not None:
            delta_index, delta_limits = delta_source._plan_source()
        else:
            delta_index, delta_limits = index, limits
        base: List[Optional[int]] = [None] * self.n_prebound
        if initial:
            from repro.engine.plan import _seed_id

            slot_of = self.plan.slot_of
            n_prebound = self.n_prebound
            for variable, value in initial.items():
                slot = slot_of.get(variable)
                if slot is not None and slot < n_prebound:
                    base[slot] = _seed_id(value)
        rows_batch: List[SlotRow] = [tuple(base)]
        if PROFILER.enabled:
            return self._run_profiled(
                index, limits, delta_index, delta_limits, delta_source, rows_batch
            )
        for depth, step in enumerate(self.steps):
            if depth == 0 and delta_source is not None:
                rows_batch = step.apply(delta_index, delta_limits, rows_batch)
            else:
                rows_batch = step.apply(index, limits, rows_batch)
            if not rows_batch:
                break
        return rows_batch

    def _run_profiled(
        self, index, limits, delta_index, delta_limits, delta_source, rows_batch
    ) -> List[SlotRow]:
        """The :meth:`run` step loop with per-step accounting around it.

        The steps themselves are untouched (``apply`` stays the single hot
        loop); this wrapper counts the batch sizes entering and leaving
        each step, attributes the probe-group delta of the thread's stats
        blob to the step, and times each ``apply`` call — the numbers
        :meth:`repro.engine.plan.CompiledRule.explain` and the harness
        ``--profile`` artifact report.
        """
        profile = PROFILER.plan_profile(self.plan)
        stats = active_stats()
        run_start = time.perf_counter_ns()
        for depth, step in enumerate(self.steps):
            step_profile = profile.steps[depth]
            step_profile.rows_in += len(rows_batch)
            probes_before = stats.batch_probe_groups
            step_start = time.perf_counter_ns()
            if depth == 0 and delta_source is not None:
                rows_batch = step.apply(delta_index, delta_limits, rows_batch)
            else:
                rows_batch = step.apply(index, limits, rows_batch)
            step_profile.time_ns += time.perf_counter_ns() - step_start
            step_profile.probes += stats.batch_probe_groups - probes_before
            step_profile.rows_out += len(rows_batch)
            if not rows_batch:
                break
        profile.executions += 1
        profile.rows_out += len(rows_batch)
        profile.time_ns += time.perf_counter_ns() - run_start
        return rows_batch
