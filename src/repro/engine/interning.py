"""Dictionary-encoded term storage: the :class:`TermTable` interning layer.

Every layer built since PR 1 — postings probes, batch columns, shard
pickling, incremental delta windows — manipulated boxed
:class:`~repro.datalog.terms.Constant` / :class:`~repro.datalog.terms.Null`
objects, paying Python-level ``__hash__`` / ``__eq__`` dispatch on every
probe and shipping full object graphs on every parallel dispatch.  This
module is the classic Datalog-engine answer: **dictionary-encode** every
ground term into a dense ``int`` ID once, and run the whole storage and
execution stack on those IDs.

* :data:`TERMS` is the process-global table.  IDs are dense and append-only:
  a constant interned as the *k*-th distinct constant gets ID ``k << 1``, a
  null interned as the *k*-th distinct null gets ``k << 1 | 1``.  The low
  bit therefore answers "is this a labelled null?" without touching the
  table — the chase's null-depth bookkeeping and ``ground_part`` checks
  become single bit tests.
* Decoding (``term(tid)``) returns the **canonical** term object held by the
  table, so repeated decodes share objects and re-encoding a decoded term is
  a cached attribute read (terms memoise their ID in a ``_tid`` slot).
* Predicate names are interned through the same constant space
  (:func:`TermTable.intern_constant`), which makes a whole fact a flat
  ``(pid, tid1, ..., tidn)`` int tuple — the membership key of
  :class:`~repro.datalog.database.Instance` and the wire format of the
  parallel executor.

**The dictionary-delta protocol.**  The table is append-only and IDs are
assigned in interning order, so a replica that replays the same entries in
the same order assigns the same IDs.  The parallel executor exploits this:
the parent ships each worker the table *suffix* it has not seen yet
(:meth:`TermTable.delta_since` → :meth:`TermTable.apply_delta`) together
with facts as flat int arrays; each constant string crosses the process
boundary **once per pool lifetime** instead of once per fact occurrence.
Workers must never intern a term the parent has not shipped — worker-side
plan compilation only touches rule constants, which the parent interned when
it compiled the same rules — and :meth:`apply_delta` asserts the alignment.

Decoding back to terms happens only at result boundaries (``Instance``
iteration, provenance records, SPARQL answers); the chase, semi-naive, and
warded engines plus all three execution modes run ID-native in between.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant, Null, Term


def is_null_id(tid: int) -> bool:
    """True iff ``tid`` encodes a labelled null (the tag bit is set)."""
    return bool(tid & 1)


#: Callbacks invoked by :meth:`TermTable.begin_epoch` *before* the null space
#: is dropped.  The engine layers register the invalidation work they own:
#: :mod:`repro.engine.plan` drops its compiled-plan caches (plans embed
#: constant IDs only and would survive, but a clean slate is cheap and makes
#: the contract trivially auditable) and :mod:`repro.engine.parallel` shuts
#: down the worker pool (replicas have replayed the null suffix, and the
#: dictionary-delta protocol cannot express a shrinking table).
_EPOCH_HOOKS: List[Callable[[], None]] = []


def register_epoch_hook(hook: Callable[[], None]) -> Callable[[], None]:
    """Register a callback to run at every :meth:`TermTable.begin_epoch`.

    Returns the hook so it can be used as a decorator.  Duplicate
    registrations are ignored (module reloads under pytest would otherwise
    stack them).
    """
    if hook not in _EPOCH_HOOKS:
        _EPOCH_HOOKS.append(hook)
    return hook


class TermTable:
    """Append-only dictionary encoding of ground terms to dense int IDs.

    Constants and nulls live in disjoint ID spaces distinguished by the low
    bit (constants even, nulls odd); both spaces are dense and append-only,
    which is what makes the worker dictionary-delta protocol a plain suffix
    ship.  Constant vocabularies are small and repeat across runs, so the
    constant space never shrinks.  Invented-null labels are unique per
    invention (~200 bytes each; the whole benchmark suite invents ~25k), so a
    long-lived process that materializes forever accrues a slow monotone
    cost.  :meth:`begin_epoch` is the reclamation valve: it drops the **null
    space only** and bumps :meth:`epoch`.  Compiled plans embed constant IDs
    exclusively (rule bodies contain variables and constants, never nulls),
    so constants surviving the reset is exactly what keeps the rest of the
    process coherent; everything null-bearing — encoded instances, snapshots,
    delta sessions, decoded atoms carrying ``_key`` memos — belongs to the
    discarded materialization and must be dropped by the caller *before* the
    reset (the service layer enforces this by fencing reads).  Hooks
    registered via :func:`register_epoch_hook` run first and take care of the
    engine-internal invalidation (plan caches, worker pool).
    """

    __slots__ = (
        "_constants",
        "_constant_ids",
        "_nulls",
        "_null_ids",
        "_memoise",
        "_epoch",
        "_orphaned_nulls",
    )

    def __init__(self, _memoise: bool = False) -> None:
        # Index k holds the canonical term of ID (k << 1) / (k << 1 | 1).
        self._constants: List[Constant] = []
        self._constant_ids: Dict[str, int] = {}
        self._nulls: List[Null] = []
        self._null_ids: Dict[str, int] = {}
        self._epoch = 0
        self._orphaned_nulls = 0
        # Only the process-global :data:`TERMS` may write the ``_tid`` /
        # ``_key`` caches on term and atom objects: a secondary table (the
        # worker-protocol tests, ad-hoc tooling) caching ITS ids onto shared
        # objects would silently corrupt every lookup against the global
        # encoding.  Secondary tables always go through their dicts.
        self._memoise = _memoise

    # -- interning ----------------------------------------------------------

    def intern_constant(self, value: str) -> int:
        """The ID of the constant ``value``, interning it if new."""
        tid = self._constant_ids.get(value)
        if tid is None:
            tid = len(self._constants) << 1
            self._constant_ids[value] = tid
            term = Constant(value)
            if self._memoise:
                term._tid = tid
            self._constants.append(term)
        return tid

    def intern_null(self, label: str) -> int:
        """The ID of the null labelled ``label``, interning it if new."""
        tid = self._null_ids.get(label)
        if tid is None:
            tid = (len(self._nulls) << 1) | 1
            self._null_ids[label] = tid
            term = Null(label)
            if self._memoise:
                term._tid = tid
            self._nulls.append(term)
        return tid

    def intern_term(self, term: Term) -> int:
        """The ID of a ground term (memoised on the term object by :data:`TERMS`)."""
        if self._memoise:
            try:
                tid = term._tid
            except AttributeError:  # Variables carry no ID slot
                raise TypeError(f"cannot intern non-ground term {term!r}") from None
            if tid is not None:
                return tid
        if type(term) is Constant:
            tid = self.intern_constant(term.value)
        elif type(term) is Null:
            tid = self.intern_null(term.label)
        else:
            raise TypeError(f"cannot intern non-ground term {term!r}")
        if self._memoise:
            term._tid = tid
        return tid

    def find_term(self, term: Term) -> "int | None":
        """The ID of ``term`` if already interned, else None (never interns).

        The membership/scan paths use this so probing for facts over unseen
        vocabulary does not grow the table.
        """
        if self._memoise:
            try:
                tid = term._tid
            except AttributeError:  # Variables carry no ID slot
                return None
            if tid is not None:
                return tid
        if type(term) is Constant:
            tid = self._constant_ids.get(term.value)
        elif type(term) is Null:
            tid = self._null_ids.get(term.label)
        else:
            return None
        if tid is not None and self._memoise:
            term._tid = tid
        return tid

    def find_null(self, label: str) -> "int | None":
        """The ID of the null labelled ``label`` if interned, else None.

        The retraction over-delete phase uses this to reconstruct
        content-addressed null labels *without* interning: an absent label
        proves the corresponding chase trigger never fired, so there is
        nothing to over-delete for it (and interning it here would desync
        replica dictionaries that replay the parent's suffix in order).
        """
        return self._null_ids.get(label)

    def retire_nulls(self, count: int) -> None:
        """Record ``count`` invented nulls orphaned by retraction.

        The dictionary stays append-only within an epoch (the worker delta
        protocol cannot express a shrinking table, and ``_tid`` memos on
        canonical objects must never dangle), so retirement only *counts*
        the garbage; the physical reclaim point remains
        :meth:`begin_epoch`, which drops the whole null space.
        """
        self._orphaned_nulls += count

    @property
    def orphaned_nulls(self) -> int:
        """Nulls known dead since the last epoch reset (reclaimable space)."""
        return self._orphaned_nulls

    # -- decoding -----------------------------------------------------------

    def term(self, tid: int) -> Term:
        """The canonical term object for ``tid``."""
        return (self._nulls if tid & 1 else self._constants)[tid >> 1]

    def decode(self, ids: Iterable[int]) -> Tuple[Term, ...]:
        """Decode a tuple of IDs into canonical term objects."""
        nulls = self._nulls
        constants = self._constants
        return tuple(
            (nulls if tid & 1 else constants)[tid >> 1] for tid in ids
        )

    def decode_atom(self, key: Sequence[int]) -> Atom:
        """Rebuild the :class:`Atom` of an encoded fact key ``(pid, *tids)``.

        The returned atom carries the key in its ``_key`` cache, so adding it
        to further instances (delta sinks, rebuild loads) re-encodes nothing.
        """
        atom = Atom(self._constants[key[0] >> 1].value, self.decode(key[1:]))
        if self._memoise:
            atom._key = tuple(key)
        return atom

    def atom_key(self, atom: Atom) -> Tuple[int, ...]:
        """The encoded fact key ``(pid, tid1, ..., tidn)`` of ``atom``.

        Memoised on the atom; raises :class:`TypeError` for non-fact atoms
        (variables cannot be interned).
        """
        if not self._memoise:
            intern = self.intern_term
            return (
                self.intern_constant(atom.predicate),
                *(intern(term) for term in atom.terms),
            )
        key = atom._key
        if key is None:
            intern = self.intern_term
            key = atom._key = (
                self.intern_constant(atom.predicate),
                *(intern(term) for term in atom.terms),
            )
        return key

    # -- worker dictionary deltas -------------------------------------------

    def counts(self) -> Tuple[int, int]:
        """(#constants, #nulls) — the replica-sync high-water mark."""
        return len(self._constants), len(self._nulls)

    def delta_since(self, n_constants: int, n_nulls: int) -> Tuple[List[str], List[str]]:
        """The table suffix beyond the given per-kind counts (parent side)."""
        return (
            [term.value for term in self._constants[n_constants:]],
            [term.label for term in self._nulls[n_nulls:]],
        )

    def apply_delta(
        self,
        n_constants: int,
        n_nulls: int,
        constants: Sequence[str],
        nulls: Sequence[str],
    ) -> None:
        """Replay a parent table suffix (worker side).

        ``n_constants`` / ``n_nulls`` are the parent-side counts the delta
        starts at.  Entries this table already holds are verified to be a
        prefix of the parent's (the worker must never have interned a term
        the parent did not ship — that would fork the ID spaces and silently
        corrupt every subsequent match).
        """
        if len(self._constants) < n_constants or len(self._nulls) < n_nulls:
            raise RuntimeError(
                "term-table delta out of order: replica is behind the delta start"
            )
        for offset, value in enumerate(constants):
            index = n_constants + offset
            if index < len(self._constants):
                if self._constants[index].value != value:
                    raise RuntimeError(
                        f"term-table divergence: constant slot {index} holds "
                        f"{self._constants[index].value!r}, parent shipped {value!r}"
                    )
            elif self.intern_constant(value) != index << 1:
                raise RuntimeError(
                    f"term-table divergence: constant {value!r} already "
                    "interned out of parent order"
                )
        for offset, label in enumerate(nulls):
            index = n_nulls + offset
            if index < len(self._nulls):
                if self._nulls[index].label != label:
                    raise RuntimeError(
                        f"term-table divergence: null slot {index} holds "
                        f"{self._nulls[index].label!r}, parent shipped {label!r}"
                    )
            elif self.intern_null(label) != (index << 1) | 1:
                raise RuntimeError(
                    f"term-table divergence: null {label!r} already "
                    "interned out of parent order"
                )

    # -- epoch lifecycle ----------------------------------------------------

    def epoch(self) -> int:
        """The current epoch ordinal (0 at process start, +1 per reset).

        Snapshot holders record the epoch they were built under; a holder
        whose recorded epoch no longer matches must not decode through this
        table (its null IDs may have been reassigned).
        """
        return self._epoch

    def begin_epoch(self) -> int:
        """Reclaim the invented-null dictionary space and start a new epoch.

        Drops every null entry (constants are kept — compiled plans and rule
        ``_key`` memos embed constant IDs only and stay valid), clears the
        ``_tid`` memo on each canonical null object so a stale null that
        leaks back in cannot resurrect a reassigned ID, runs the registered
        epoch hooks (plan caches, worker pool), and returns the new epoch
        ordinal.  The caller owns discarding every null-bearing structure
        built in the previous epoch first.
        """
        for hook in _EPOCH_HOOKS:
            hook()
        if self._memoise:
            for null in self._nulls:
                null._tid = None
        self._nulls.clear()
        self._null_ids.clear()
        self._orphaned_nulls = 0
        self._epoch += 1
        return self._epoch

    def __len__(self) -> int:
        """Total interned entries (both kinds)."""
        return len(self._constants) + len(self._nulls)

    def __repr__(self) -> str:
        return (
            f"TermTable({len(self._constants)} constants, "
            f"{len(self._nulls)} nulls, epoch {self._epoch})"
        )


#: The process-global table every engine layer encodes through — the only
#: table allowed to memoise IDs on term/atom objects.
TERMS = TermTable(_memoise=True)
