"""Compile-once join plans for rule-body evaluation.

The seed matcher (`repro.engine.reference.reference_match_atoms`, formerly
``chase.match_atoms``) re-derived its entire strategy on every call: it
re-``sorted()`` the body atoms, re-applied the running substitution to build
a fresh pattern ``Atom`` per candidate, and delegated per-fact verification
to a generic unifier.  All of that is static for a fixed body, so this module
resolves it **once** at plan time:

* **Atom order** — a greedy selectivity order (most bound positions first,
  then most constants, then fewest fresh variables) computed over the
  statically known set of bound variables at each join step.
* **Positions** — every term position compiles to one of three ops:
  ``CHECK_CONST`` (the position must equal a constant), ``CHECK_SLOT`` (the
  position must equal an already-bound variable slot — this is also how
  repeated variables are enforced), or ``BIND_SLOT`` (the position binds a
  fresh slot).  Verification of a candidate fact is a flat loop over these
  ops on the fact's term tuple; no substitution dicts, no pattern atoms.
* **Probes** — the positions usable for index lookup (constants and bound
  slots) are precomputed; at run time the executor picks the shortest
  postings bucket among them.
* **Negation** — each negated atom (ground under any full body match, by
  rule safety) compiles to a membership template evaluated directly against
  the negation reference.
* **Pivots** — for semi-naive delta joins, :func:`compile_rule` prepares one
  plan per body atom with that atom forced first; the executor reads the
  first step's candidates from the delta and the rest from the full instance.

Plans are cached (bodies and rules are hashable), so constraint checks and
repeated engine runs over the same program compile nothing after the first
call.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.datalog.atoms import Atom
from repro.datalog.rules import Rule
from repro.datalog.terms import Term, Variable
from repro.engine.stats import STATS

CHECK_CONST = 0
CHECK_SLOT = 1
BIND_SLOT = 2

# Probe kinds: position equals a constant / the value of a bound slot.
PROBE_CONST = 0
PROBE_SLOT = 1


class _Step:
    """One join step: candidate probes plus verification ops for a body atom."""

    __slots__ = ("atom", "predicate", "arity", "ops", "probes")

    def __init__(
        self,
        atom: Atom,
        ops: Tuple[Tuple[int, int, object], ...],
        probes: Tuple[Tuple[int, int, object], ...],
    ):
        self.atom = atom
        self.predicate = atom.predicate
        self.arity = atom.arity
        self.ops = ops
        self.probes = probes


class JoinPlan:
    """A compiled join over a fixed atom sequence.

    ``execute`` yields one substitution dict per homomorphism of the body
    into the instance, exactly as the legacy matcher did; ``exists`` is the
    allocation-free boolean variant used for head-satisfaction and
    constraint checks.
    """

    __slots__ = ("atoms", "steps", "slot_of", "n_slots", "emit", "prebound", "batch_plan")

    def __init__(
        self,
        atoms: Tuple[Atom, ...],
        steps: Tuple[_Step, ...],
        slot_of: Dict[Variable, int],
        prebound: FrozenSet[Variable],
    ):
        self.atoms = atoms
        self.steps = steps
        self.slot_of = slot_of
        self.n_slots = len(slot_of)
        # Slot ids are assigned in insertion order of ``slot_of``, so the
        # variable tuple is index-aligned with the runtime slots list and a
        # substitution dict is one C-level dict(zip(...)).
        self.emit = tuple(slot_of)
        self.prebound = prebound
        # Lazily-built column-at-a-time executor (repro.engine.batch).
        self.batch_plan = None

    # -- execution ----------------------------------------------------------

    def execute(
        self,
        source,
        initial: Optional[Dict[Variable, Term]] = None,
        delta_source=None,
    ) -> Iterator[Dict[Variable, Term]]:
        """All homomorphisms as variable→term dicts (including seeded bindings).

        ``source`` is anything exposing ``_plan_source()`` (an ``Instance``
        or an ``InstanceSnapshot``).  With ``delta_source``, the first step's
        candidates are read from it instead — the semi-naive pivot join.
        """
        emit = self.emit
        for slots in self._run(source, initial, delta_source):
            yield dict(zip(emit, slots))

    def run_batch(
        self,
        source,
        initial: Optional[Dict[Variable, Term]] = None,
        delta_source=None,
    ) -> List[Tuple[Term, ...]]:
        """All homomorphisms as full slot tuples, column-at-a-time.

        Same multiset *and order* as :meth:`execute` (each tuple is
        index-aligned with :attr:`emit`), but computed by the batch executor
        of :mod:`repro.engine.batch`: one probe per distinct probe key per
        step instead of one probe per outer binding.
        """
        batch = self.batch_plan
        if batch is None:
            from repro.engine.batch import BatchPlan

            batch = self.batch_plan = BatchPlan(self)
        return batch.run(source, initial, delta_source)

    def execute_batch(
        self,
        source,
        initial: Optional[Dict[Variable, Term]] = None,
        delta_source=None,
    ) -> List[Dict[Variable, Term]]:
        """Batched :meth:`execute`: the matches as a list of substitution dicts."""
        emit = self.emit
        return [dict(zip(emit, row)) for row in self.run_batch(source, initial, delta_source)]

    def pivot_viable(self, index) -> bool:
        """False iff a constant probe of the first step has an empty postings
        bucket in ``index`` — the cheap pre-check behind semi-naive pivot
        skipping (``index`` is the delta; a pivot whose bound terms never
        occur in the delta cannot produce a match and is skipped wholesale).
        """
        step = self.steps[0]
        predicate = step.predicate
        postings = index.postings
        for position, kind, payload in step.probes:
            if kind == PROBE_CONST and not postings.get((predicate, position, payload)):
                return False
        return True

    def exists(
        self,
        source,
        initial: Optional[Dict[Variable, Term]] = None,
    ) -> bool:
        """True iff at least one homomorphism exists (no dict per result)."""
        for _ in self._run(source, initial, None):
            return True
        return False

    def _run(self, source, initial, delta_source) -> Iterator[List[Term]]:
        index, limits = source._plan_source()
        slots: List[Term] = [None] * self.n_slots
        if initial:
            slot_of = self.slot_of
            for variable, value in initial.items():
                slot = slot_of.get(variable)
                if slot is not None:
                    slots[slot] = value
        steps = self.steps
        n_steps = len(steps)
        if n_steps == 0:
            yield slots
            return
        if delta_source is not None:
            delta_index, delta_limits = delta_source._plan_source()
        else:
            delta_index, delta_limits = index, limits

        # Per-depth candidate state: the rows list, the postings bucket (or
        # None for a full scan), the cursor, the iteration bound, and the
        # row-id cap capturing the prefix visible to this lookup.
        rows_s: List[Optional[List[Optional[Atom]]]] = [None] * n_steps
        ids_s: List[Optional[List[int]]] = [None] * n_steps
        pos_s = [0] * n_steps
        end_s = [0] * n_steps
        cap_s = [0] * n_steps

        def start(depth: int) -> None:
            """Position the candidate cursor for the join step at ``depth``."""
            step = steps[depth]
            idx = delta_index if depth == 0 and delta_source is not None else index
            lim = delta_limits if depth == 0 and delta_source is not None else limits
            rows = idx.rows.get(step.predicate)
            pos_s[depth] = 0
            if not rows:
                rows_s[depth] = None
                end_s[depth] = 0
                return
            best: Optional[List[int]] = None
            for position, kind, payload in step.probes:
                value = payload if kind == PROBE_CONST else slots[payload]
                bucket = idx.postings.get((step.predicate, position, value))
                if bucket is None:
                    rows_s[depth] = None
                    end_s[depth] = 0
                    return
                if best is None or len(bucket) < len(best):
                    best = bucket
            cap = len(rows) if lim is None else min(len(rows), lim.get(step.predicate, 0))
            rows_s[depth] = rows
            ids_s[depth] = best
            cap_s[depth] = cap
            end_s[depth] = len(best) if best is not None else cap

        depth = 0
        start(0)
        last = n_steps - 1
        while depth >= 0:
            step = steps[depth]
            rows = rows_s[depth]
            ids = ids_s[depth]
            k = pos_s[depth]
            end = end_s[depth]
            cap = cap_s[depth]
            ops = step.ops
            arity = step.arity
            advanced = False
            while k < end:
                if ids is None:
                    row_id = k
                else:
                    row_id = ids[k]
                    if row_id >= cap:
                        k = end
                        break
                k += 1
                fact = rows[row_id]
                if fact is None:
                    continue
                terms = fact.terms
                if len(terms) != arity:
                    continue
                ok = True
                for code, position, payload in ops:
                    term = terms[position]
                    if code == CHECK_CONST:
                        if term == payload:
                            continue
                        ok = False
                        break
                    if code == CHECK_SLOT:
                        if term == slots[payload]:
                            continue
                        ok = False
                        break
                    slots[payload] = term
                if ok:
                    advanced = True
                    break
            pos_s[depth] = k
            if not advanced:
                depth -= 1
                continue
            if depth == last:
                yield slots
            else:
                depth += 1
                start(depth)


class _NegationProbe:
    """A negated body atom compiled to a ground membership template."""

    __slots__ = ("atom", "predicate", "template")

    def __init__(self, atom: Atom):
        self.atom = atom
        self.predicate = atom.predicate
        # (is_variable, payload) per position; rule safety guarantees every
        # variable is bound by any full positive-body match, so the built
        # atom is a fact and satisfaction is plain membership.
        self.template = tuple(
            (isinstance(term, Variable), term) for term in atom.terms
        )

    def satisfied(self, substitution: Dict[Variable, Term], reference) -> bool:
        """True iff the instantiated negated atom is a fact of ``reference``."""
        fact = Atom(
            self.predicate,
            tuple(
                substitution[payload] if is_var else payload
                for is_var, payload in self.template
            ),
        )
        return fact in reference


class RowOps:
    """Row-level firing helpers for one (rule, plan) pair.

    The batch executor represents matches as slot tuples; this object is the
    precompiled bridge from those rows to everything an engine does with a
    match — building head facts, body instantiations (provenance), frontier
    and full binding keys, and negation membership probes — without ever
    materialising a substitution dict.  Existential head variables map to
    *extended* slot ids ``n_slots + j`` (``j`` over the rule's sorted
    existentials): engines append the invented nulls to the row and feed the
    extended tuple to :meth:`head_facts_row`.
    """

    __slots__ = (
        "emit",
        "n_slots",
        "head_templates",
        "body_templates",
        "frontier_slots",
        "binding_order",
        "neg_templates",
    )

    def __init__(self, crule: "CompiledRule", plan: JoinPlan):
        slot_of = plan.slot_of
        rule = crule.rule
        n_slots = plan.n_slots
        existential_slot = {
            variable: n_slots + j
            for j, variable in enumerate(crule.sorted_existentials)
        }

        def template(atom: Atom):
            """Compile one atom into a (predicate, slot-or-constant parts) pair."""
            parts = []
            for term in atom.terms:
                if isinstance(term, Variable):
                    slot = slot_of.get(term)
                    if slot is None:
                        slot = existential_slot[term]
                    parts.append((True, slot))
                else:
                    parts.append((False, term))
            return (atom.predicate, tuple(parts))

        self.emit = plan.emit
        self.n_slots = n_slots
        self.head_templates = tuple(template(atom) for atom in rule.head)
        self.body_templates = tuple(template(atom) for atom in rule.body_positive)
        self.frontier_slots = tuple(
            (variable, slot_of[variable]) for variable in crule.sorted_frontier
        )
        # All (variable, slot) pairs ordered by variable name — the chase's
        # canonical trigger-identity key, equal in content to sorting the
        # substitution dict's items.
        self.binding_order = tuple(
            sorted(slot_of.items(), key=lambda item: item[0].name)
        )
        self.neg_templates = crule._negation_slots(plan)[1]

    def head_facts_row(self, extended_row) -> List[Atom]:
        """The head atoms instantiated from an (extended) slot row."""
        return [
            Atom(
                predicate,
                tuple(
                    extended_row[payload] if is_slot else payload
                    for is_slot, payload in template
                ),
            )
            for predicate, template in self.head_templates
        ]

    def body_facts_row(self, row) -> Tuple[Atom, ...]:
        """The positive body instantiated from a row (provenance records)."""
        return tuple(
            Atom(
                predicate,
                tuple(
                    row[payload] if is_slot else payload
                    for is_slot, payload in template
                ),
            )
            for predicate, template in self.body_templates
        )

    def binding_key(self, row) -> Tuple:
        """The name-sorted (variable, value) tuple identifying this trigger."""
        return tuple((variable, row[slot]) for variable, slot in self.binding_order)

    def negation_blocked_row(self, row, reference) -> bool:
        """Unmemoised per-row negation check (for mutable references)."""
        for predicate, template in self.neg_templates:
            fact = Atom(
                predicate,
                tuple(
                    row[payload] if is_slot else payload
                    for is_slot, payload in template
                ),
            )
            if fact in reference:
                return True
        return False


class CompiledRule:
    """Everything static about one rule, resolved at plan time.

    * ``plan`` — the full positive-body join.
    * ``pivot_plans[i]`` — the same join with body atom ``i`` first, for
      semi-naive rounds where atom ``i`` ranges over the delta.
    * ``negation`` — membership probes for the negated atoms.
    * ``head_plan`` — join over the head atoms with the frontier prebound,
      used by the restricted chase to test whether a trigger's head is
      already satisfiable (the existential case); ``None`` for rules without
      existential variables, where the check is plain membership.
    """

    __slots__ = (
        "rule",
        "plan",
        "pivot_plans",
        "negation",
        "head_plan",
        "sorted_frontier",
        "sorted_existentials",
        "head_templates",
        "_neg_slot_cache",
        "_row_ops_cache",
    )

    def __init__(self, rule: Rule):
        self.rule = rule
        self.sorted_frontier = tuple(sorted(rule.frontier))
        self.sorted_existentials = tuple(sorted(rule.existential_variables))
        # (predicate, ((is_variable, payload), ...)) per head atom: building a
        # head fact is then direct dict indexing, no Atom.apply fallbacks.
        self.head_templates = tuple(
            (atom.predicate, tuple((isinstance(t, Variable), t) for t in atom.terms))
            for atom in rule.head
        )
        body = rule.body_positive
        self.plan = compile_body(body, ())
        self.pivot_plans = tuple(
            compile_pivot(body, pivot) for pivot in range(len(body))
        )
        self.negation = tuple(_NegationProbe(atom) for atom in rule.body_negative)
        if rule.existential_variables:
            self.head_plan = compile_body(rule.head, rule.frontier)
        else:
            self.head_plan = None
        # Per-plan slot templates for batched negation and row-level firing
        # (plan id -> compiled forms); pivot plans assign different slot
        # numberings, hence the keying.
        self._neg_slot_cache: Dict[int, Tuple] = {}
        self._row_ops_cache: Dict[int, RowOps] = {}

    # -- matching -----------------------------------------------------------

    def substitutions(self, instance) -> Iterator[Dict[Variable, Term]]:
        """All matches of the positive body (negation not yet applied)."""
        return self.plan.execute(instance)

    def delta_substitutions(self, instance, delta) -> Iterator[Dict[Variable, Term]]:
        """Semi-naive matches: at least one body atom maps into ``delta``.

        One pivot plan runs per body atom whose predicate occurs in the
        delta; as in the legacy evaluators, a match reachable through
        several pivots is yielded once per pivot and deduplicated by the
        caller's ``Instance.add``.
        """
        delta_index = delta._plan_source()[0]
        delta_live = delta_index.live
        for pivot, atom in enumerate(self.rule.body_positive):
            if not delta_live.get(atom.predicate):
                continue
            plan = self.pivot_plans[pivot]
            if not plan.pivot_viable(delta_index):
                STATS.pivots_skipped += 1
                continue
            yield from plan.execute(instance, None, delta_source=delta)

    # -- batched matching ----------------------------------------------------

    def row_ops(self, plan: JoinPlan) -> RowOps:
        """The (cached) row-level firing helpers for ``plan``'s slot layout."""
        ops = self._row_ops_cache.get(id(plan))
        if ops is None:
            ops = self._row_ops_cache[id(plan)] = RowOps(self, plan)
        return ops

    def trigger_row_batches(
        self, instance, delta=None, negation_reference=None
    ) -> List[Tuple[JoinPlan, List[Tuple[Term, ...]]]]:
        """Batched body matches as (plan, slot-row list) pairs.

        The engine-facing batch entry point: one batch for the full join, or
        one per viable pivot when ``delta`` is given (same pivot order and
        empty-bucket skips as :meth:`delta_substitutions`).  The list is
        computed **eagerly** — every pivot is matched against the same
        instance state before the caller fires a single trigger — mirroring
        the row path's ``list(...)`` materialisation; a lazy variant would
        let earlier pivots' head facts leak into later pivots' matches.

        When a *frozen* ``negation_reference`` is supplied (an
        :class:`~repro.engine.index.InstanceSnapshot`, or an instance that is
        not mutated while triggers are processed), negated atoms are
        pre-filtered in bulk; pre-filtering is only equivalent to the row
        path's per-trigger check under that frozenness assumption.  Rows
        arrive in row-at-a-time order; feed them to :meth:`row_ops` helpers
        to fire heads without building substitution dicts.
        """
        batches: List[Tuple[JoinPlan, List[Tuple[Term, ...]]]] = []
        if delta is None:
            plan = self.plan
            rows = plan.run_batch(instance)
            if self.negation and negation_reference is not None:
                rows = self._filter_negation_rows(rows, plan, negation_reference)
            if rows:
                batches.append((plan, rows))
            return batches
        delta_index = delta._plan_source()[0]
        delta_live = delta_index.live
        for pivot, atom in enumerate(self.rule.body_positive):
            if not delta_live.get(atom.predicate):
                continue
            plan = self.pivot_plans[pivot]
            if not plan.pivot_viable(delta_index):
                STATS.pivots_skipped += 1
                continue
            rows = plan.run_batch(instance, None, delta_source=delta)
            if self.negation and negation_reference is not None:
                rows = self._filter_negation_rows(rows, plan, negation_reference)
            if rows:
                batches.append((plan, rows))
        return batches

    def _negation_slots(self, plan: JoinPlan) -> Tuple:
        """(referenced slots, per-probe slot templates) for ``plan``'s layout."""
        cached = self._neg_slot_cache.get(id(plan))
        if cached is None:
            slot_of = plan.slot_of
            templates = tuple(
                (
                    probe.predicate,
                    tuple(
                        (True, slot_of[payload]) if is_var else (False, payload)
                        for is_var, payload in probe.template
                    ),
                )
                for probe in self.negation
            )
            slots = tuple(
                sorted(
                    {
                        payload
                        for _, template in templates
                        for is_slot, payload in template
                        if is_slot
                    }
                )
            )
            cached = (slots, templates)
            self._neg_slot_cache[id(plan)] = cached
        return cached

    def _filter_negation_rows(self, rows, plan: JoinPlan, reference):
        """Drop slot rows whose negated atoms hold in ``reference``.

        The membership probes are batched: rows agreeing on every slot the
        negated atoms read share one memoised verdict, so the ground atoms
        are built once per distinct key instead of once per match.
        """
        if not rows:
            return rows
        neg_slots, templates = self._negation_slots(plan)
        memo: Dict[Tuple, bool] = {}
        memo_get = memo.get
        kept = []
        append = kept.append
        for row in rows:
            key = tuple(row[slot] for slot in neg_slots)
            blocked = memo_get(key)
            if blocked is None:
                blocked = False
                for predicate, template in templates:
                    fact = Atom(
                        predicate,
                        tuple(
                            row[payload] if is_slot else payload
                            for is_slot, payload in template
                        ),
                    )
                    if fact in reference:
                        blocked = True
                        break
                memo[key] = blocked
            if not blocked:
                append(row)
        return kept

    def negation_blocked(self, substitution: Dict[Variable, Term], reference) -> bool:
        """True iff some negated atom holds in ``reference`` under ``substitution``."""
        for probe in self.negation:
            if probe.satisfied(substitution, reference):
                return True
        return False

    def head_facts(self, substitution: Dict[Variable, Term]) -> List[Atom]:
        """The head atoms instantiated under ``substitution``.

        ``substitution`` must bind every head variable (frontier plus, for
        existential rules, the freshly invented nulls), which every engine
        guarantees at fire time.
        """
        return [
            Atom(
                predicate,
                tuple(
                    substitution[payload] if is_var else payload
                    for is_var, payload in template
                ),
            )
            for predicate, template in self.head_templates
        ]

    def head_satisfied(self, substitution: Dict[Variable, Term], instance) -> bool:
        """Restricted-chase check: does an extension satisfying the head exist?"""
        if self.head_plan is None:
            return all(
                atom.apply(substitution) in instance for atom in self.rule.head
            )
        return self.head_plan.exists(instance, substitution)


# -- compilation ---------------------------------------------------------------


def _selectivity_order(
    atoms: Sequence[Atom], prebound: FrozenSet[Variable], first: Optional[int]
) -> List[int]:
    """Greedy join order: most bound positions, then most constants, then
    fewest fresh variables; ties keep the original order.  ``first`` pins a
    pivot atom to the front."""
    order: List[int] = []
    bound = set(prebound)
    remaining = list(range(len(atoms)))
    if first is not None:
        order.append(first)
        remaining.remove(first)
        bound.update(atoms[first].variables)
    while remaining:
        best_index = None
        best_score = None
        for i in remaining:
            atom = atoms[i]
            n_bound = 0
            n_const = 0
            fresh = set()
            for term in atom.terms:
                if isinstance(term, Variable):
                    if term in bound:
                        n_bound += 1
                    else:
                        fresh.add(term)
                else:
                    n_bound += 1
                    n_const += 1
            score = (n_bound, n_const, -len(fresh), -i)
            if best_score is None or score > best_score:
                best_score = score
                best_index = i
        order.append(best_index)
        remaining.remove(best_index)
        bound.update(atoms[best_index].variables)
    return order


def _compile_ordered(
    atoms: Sequence[Atom], first: Optional[int], prebound: FrozenSet[Variable]
) -> JoinPlan:
    atoms = tuple(atoms)
    order = _selectivity_order(atoms, prebound, first)
    slot_of: Dict[Variable, int] = {}
    for variable in sorted(prebound):
        slot_of[variable] = len(slot_of)
    bound_slots = set(slot_of.values())
    steps: List[_Step] = []
    for i in order:
        atom = atoms[i]
        probes: List[Tuple[int, int, object]] = []
        hoisted: List[Tuple[int, int, object]] = []
        trailing: List[Tuple[int, int, object]] = []
        for position, term in enumerate(atom.terms):
            if not isinstance(term, Variable):
                hoisted.append((CHECK_CONST, position, term))
                probes.append((position, PROBE_CONST, term))
                continue
            slot = slot_of.get(term)
            if slot is None:
                slot = slot_of[term] = len(slot_of)
            if slot in bound_slots:
                # Bound before this atom: probe-able and hoistable.  Bound
                # within this atom (repeated variable): the check must stay
                # after its BIND_SLOT, and the slot value is not yet known
                # at probe time.
                if any(op[0] == BIND_SLOT and op[2] == slot for op in trailing):
                    trailing.append((CHECK_SLOT, position, slot))
                else:
                    hoisted.append((CHECK_SLOT, position, slot))
                    probes.append((position, PROBE_SLOT, slot))
            else:
                bound_slots.add(slot)
                trailing.append((BIND_SLOT, position, slot))
        steps.append(_Step(atom, tuple(hoisted + trailing), tuple(probes)))
    return JoinPlan(atoms, tuple(steps), slot_of, prebound)


_BODY_CACHE: Dict[Tuple[Tuple[Atom, ...], FrozenSet[Variable]], JoinPlan] = {}
_PIVOT_CACHE: Dict[Tuple[Tuple[Atom, ...], int], JoinPlan] = {}
_RULE_CACHE: Dict[Rule, CompiledRule] = {}
_CACHE_LIMIT = 4096


def compile_body(
    atoms: Iterable[Atom], prebound: Iterable[Variable] = ()
) -> JoinPlan:
    """Compile (and cache) a join plan for an atom sequence.

    ``prebound`` names the variables that will arrive already bound in the
    seed substitution; they receive dedicated slots so the executor treats
    them as bound from step one.
    """
    atoms = tuple(atoms)
    prebound_set = frozenset(prebound)
    key = (atoms, prebound_set)
    plan = _BODY_CACHE.get(key)
    if plan is None:
        if len(_BODY_CACHE) >= _CACHE_LIMIT:
            _BODY_CACHE.clear()
        plan = _compile_ordered(atoms, None, prebound_set)
        _BODY_CACHE[key] = plan
    return plan


def compile_pivot(atoms: Iterable[Atom], pivot: int) -> JoinPlan:
    """Compile (and cache) a join plan with atom ``pivot`` forced first.

    Executed with ``delta_source``, the pivot atom's candidates come from the
    delta and the remaining atoms join against the full instance — the
    semi-naive step.
    """
    atoms = tuple(atoms)
    key = (atoms, pivot)
    plan = _PIVOT_CACHE.get(key)
    if plan is None:
        if len(_PIVOT_CACHE) >= _CACHE_LIMIT:
            _PIVOT_CACHE.clear()
        plan = _compile_ordered(atoms, pivot, frozenset())
        _PIVOT_CACHE[key] = plan
    return plan


def compile_rule(rule: Rule) -> CompiledRule:
    """Compile (and cache) the full per-rule plan bundle."""
    compiled = _RULE_CACHE.get(rule)
    if compiled is None:
        if len(_RULE_CACHE) >= _CACHE_LIMIT:
            _RULE_CACHE.clear()
        compiled = CompiledRule(rule)
        _RULE_CACHE[rule] = compiled
    return compiled
