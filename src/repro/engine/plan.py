"""Compile-once join plans for rule-body evaluation, executed on term IDs.

The seed matcher (`repro.engine.reference.reference_match_atoms`, formerly
``chase.match_atoms``) re-derived its entire strategy on every call: it
re-``sorted()`` the body atoms, re-applied the running substitution to build
a fresh pattern ``Atom`` per candidate, and delegated per-fact verification
to a generic unifier.  All of that is static for a fixed body, so this module
resolves it **once** at plan time:

* **Atom order** — a greedy selectivity order (most bound positions first,
  then most constants, then fewest fresh variables) computed over the
  statically known set of bound variables at each join step.
* **Positions** — every term position compiles to one of three ops:
  ``CHECK_CONST`` (the position must equal a constant — whose **dictionary
  ID** is resolved here, at plan time, so the runtime comparison is a plain
  int equality), ``CHECK_SLOT`` (the position must equal an already-bound
  variable slot — this is also how repeated variables are enforced), or
  ``BIND_SLOT`` (the position binds a fresh slot).  Verification of a
  candidate fact is a flat loop over these ops on the fact's **ID row**
  (:attr:`~repro.engine.index.PredicateIndex.cols`); no substitution dicts,
  no pattern atoms, no term-object dispatch.
* **Probes** — the positions usable for index lookup (constant IDs and bound
  slots) are precomputed; at run time the executor picks the shortest
  postings bucket among them.
* **Negation** — each negated atom (ground under any full body match, by
  rule safety) compiles to a membership template evaluated directly against
  the negation reference — at the encoded-key level on the batch paths.
* **Pivots** — for semi-naive delta joins, :func:`compile_rule` prepares one
  plan per body atom with that atom forced first; the executor reads the
  first step's candidates from the delta and the rest from the full
  instance.  :meth:`JoinPlan.pivot_viable` is the cost-based pre-check: a
  pivot is skipped when a bound constant of the pivot atom has an empty
  delta postings bucket, **or** when every value the delta can bind into a
  slot probed by a later step is absent from the full instance's postings at
  that probed position (the per-round bound-value summaries of
  :meth:`~repro.engine.index.PredicateIndex.distinct_values`).

Slot values are integers (term IDs) throughout execution; decoding back to
:class:`~repro.datalog.terms.Term` objects happens only when substitution
dicts leave the executor (:meth:`JoinPlan.execute`, the row-mode engine
surface) or when head facts are genuinely new (the result boundary).

Plans are cached (bodies and rules are hashable), so constraint checks and
repeated engine runs over the same program compile nothing after the first
call.  :mod:`repro.engine.plancache` can pre-stage serialised plan bundles
for fixed programs; :func:`compile_rule` consults the staging area before
compiling from scratch.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.datalog.atoms import Atom
from repro.datalog.rules import Rule
from repro.datalog.terms import Term, Variable
from repro.engine import interning
from repro.engine.interning import TERMS
from repro.engine.stats import active_stats
from repro.obs.profile import PROFILER

CHECK_CONST = 0
CHECK_SLOT = 1
BIND_SLOT = 2

# Probe kinds: position equals a constant ID / the value of a bound slot.
PROBE_CONST = 0
PROBE_SLOT = 1


def _seed_id(value):
    """Normalise a seed binding to a term ID (engine rows carry raw ints).

    A seed term the table has never interned is kept as the term object
    itself rather than interned: an absent term can never equal any stored
    ID (so joins on it correctly find nothing), a foreign prebound variable
    still round-trips through :meth:`JoinPlan.execute` unchanged, and
    ad-hoc query vocabulary does not grow the process-global table.
    """
    if type(value) is int:
        return value
    tid = TERMS.find_term(value)
    return value if tid is None else tid


class _Step:
    """One join step: candidate probes plus verification ops for a body atom."""

    __slots__ = ("atom", "predicate", "arity", "ops", "probes")

    def __init__(
        self,
        atom: Atom,
        ops: Tuple[Tuple[int, int, int], ...],
        probes: Tuple[Tuple[int, int, int], ...],
    ):
        self.atom = atom
        self.predicate = atom.predicate
        self.arity = atom.arity
        self.ops = ops
        self.probes = probes


class JoinPlan:
    """A compiled join over a fixed atom sequence.

    ``execute`` yields one substitution dict per homomorphism of the body
    into the instance, exactly as the legacy matcher did (term objects are
    decoded at that boundary); ``run_batch`` returns the raw ID rows the
    batch engines fire from; ``exists`` is the allocation-free boolean
    variant used for head-satisfaction and constraint checks.
    """

    __slots__ = (
        "atoms",
        "steps",
        "slot_of",
        "n_slots",
        "emit",
        "prebound",
        "batch_plan",
        "pivot_flow",
        "profile",
    )

    def __init__(
        self,
        atoms: Tuple[Atom, ...],
        steps: Tuple[_Step, ...],
        slot_of: Dict[Variable, int],
        prebound: FrozenSet[Variable],
    ):
        self.atoms = atoms
        self.steps = steps
        self.slot_of = slot_of
        self.n_slots = len(slot_of)
        # Slot ids are assigned in insertion order of ``slot_of``, so the
        # variable tuple is index-aligned with the runtime slots list and a
        # substitution dict is one C-level dict(zip(...)).
        self.emit = tuple(slot_of)
        self.prebound = prebound
        # Lazily-built column-at-a-time executor (repro.engine.batch).
        self.batch_plan = None
        # Lazily-built (step0 position, later predicate, later position)
        # triples for the slot-bound pivot-viability test.
        self.pivot_flow: Optional[Tuple[Tuple[int, str, int], ...]] = None
        # Per-step profiling accumulator, attached by repro.obs.profile on
        # the first execution with profiling enabled; None costs the
        # executors exactly one flag branch per run.
        self.profile = None

    # -- execution ----------------------------------------------------------

    def execute(
        self,
        source,
        initial: Optional[Dict[Variable, Term]] = None,
        delta_source=None,
    ) -> Iterator[Dict[Variable, Term]]:
        """All homomorphisms as variable→term dicts (including seeded bindings).

        ``source`` is anything exposing ``_plan_source()`` (an ``Instance``
        or an ``InstanceSnapshot``).  With ``delta_source``, the first step's
        candidates are read from it instead — the semi-naive pivot join.
        """
        emit = self.emit
        nulls = TERMS._nulls
        constants = TERMS._constants
        for slots in self._run(source, initial, delta_source):
            try:
                yield dict(
                    zip(emit, [(nulls if t & 1 else constants)[t >> 1] for t in slots])
                )
            except TypeError:
                # Non-int slots pass through undecoded: None for a prebound
                # variable never seeded nor bound (the legacy contract), or
                # the original term object for a seed the table never
                # interned (see :func:`_seed_id`).
                yield dict(
                    zip(
                        emit,
                        [
                            (nulls if t & 1 else constants)[t >> 1]
                            if type(t) is int
                            else t
                            for t in slots
                        ],
                    )
                )

    def run_batch(
        self,
        source,
        initial: Optional[Dict[Variable, Term]] = None,
        delta_source=None,
    ) -> List[Tuple[int, ...]]:
        """All homomorphisms as full slot-ID tuples, column-at-a-time.

        Same multiset *and order* as :meth:`execute` (each tuple is
        index-aligned with :attr:`emit`, values are term IDs), but computed
        by the batch executor of :mod:`repro.engine.batch`: one probe per
        distinct probe key per step instead of one probe per outer binding.
        """
        batch = self.batch_plan
        if batch is None:
            from repro.engine.batch import BatchPlan

            batch = self.batch_plan = BatchPlan(self)
        return batch.run(source, initial, delta_source)

    def execute_batch(
        self,
        source,
        initial: Optional[Dict[Variable, Term]] = None,
        delta_source=None,
    ) -> List[Dict[Variable, Term]]:
        """Batched :meth:`execute`: the matches as a list of substitution dicts."""
        emit = self.emit
        term = TERMS.term
        return [
            dict(
                zip(emit, (term(tid) if type(tid) is int else tid for tid in row))
            )
            for row in self.run_batch(source, initial, delta_source)
        ]

    def _pivot_flow(self) -> Tuple[Tuple[int, str, int], ...]:
        """(step0 bind position, later predicate, later probed position) triples.

        For each later step that probes a slot **bound by step 0**, the
        triple records where in the pivot atom the value comes from and
        which postings bucket of the full instance it will be probed
        against.  If, for every distinct value the delta holds at that
        pivot position, the probed bucket is empty, the whole pivot join
        cannot produce a match — the slot-bound half of pivot skipping.
        """
        flow = self.pivot_flow
        if flow is None:
            steps = self.steps
            if not steps:
                flow = ()
            else:
                bound_at: Dict[int, int] = {}
                for code, position, payload in steps[0].ops:
                    if code == BIND_SLOT:
                        bound_at[payload] = position
                triples: List[Tuple[int, str, int]] = []
                for step in steps[1:]:
                    for position, kind, payload in step.probes:
                        if kind == PROBE_SLOT and payload in bound_at:
                            triples.append(
                                (bound_at[payload], step.predicate, position)
                            )
                flow = tuple(triples)
            self.pivot_flow = flow
        return flow

    def pivot_viable(self, index, full_index=None) -> bool:
        """False iff this pivot join provably has no match in the delta.

        Two cheap pre-checks, both evaluated identically in every execution
        mode (parallel mode runs them in the parent):

        * a **constant** probe of the first step has an empty postings
          bucket in ``index`` (the delta) — the bound term never occurs in
          the delta; or
        * with ``full_index`` given, some later step probes a slot bound at
          step 0, and none of the delta's distinct values at that pivot
          position (:meth:`~repro.engine.index.PredicateIndex.distinct_values`,
          the per-round bound-value summary) has a postings bucket at the
          probed position of the full instance — every candidate binding
          dead-ends at that step.

        Both tests are conservative: postings buckets may contain tombstoned
        rows, which only ever yields "viable" for a pivot that finds nothing.
        """
        step = self.steps[0]
        predicate = step.predicate
        postings = index.postings
        for position, kind, payload in step.probes:
            if kind == PROBE_CONST and not postings.get((predicate, position, payload)):
                return False
        if full_index is not None:
            full_postings = full_index.postings
            for pivot_position, later_predicate, later_position in self._pivot_flow():
                values = index.distinct_values(predicate, pivot_position)
                if values is None:
                    continue
                for tid in values:
                    if full_postings.get((later_predicate, later_position, tid)):
                        break
                else:
                    return False
        return True

    def exists(
        self,
        source,
        initial: Optional[Dict[Variable, Term]] = None,
    ) -> bool:
        """True iff at least one homomorphism exists (no dict per result)."""
        for _ in self._run(source, initial, None):
            return True
        return False

    def _run(self, source, initial, delta_source) -> Iterator[List[int]]:
        if PROFILER.enabled:
            yield from self._run_profiled(source, initial, delta_source)
            return
        index, limits = source._plan_source()
        slots: List[Optional[int]] = [None] * self.n_slots
        if initial:
            slot_of = self.slot_of
            for variable, value in initial.items():
                slot = slot_of.get(variable)
                if slot is not None:
                    slots[slot] = _seed_id(value)
        steps = self.steps
        n_steps = len(steps)
        if n_steps == 0:
            yield slots
            return
        if delta_source is not None:
            delta_index, delta_limits = delta_source._plan_source()
        else:
            delta_index, delta_limits = index, limits

        # Per-depth candidate state: the flat arity/position columns, the
        # postings bucket (or None for a full scan), the cursor, the
        # iteration bound, and the row-id cap capturing the prefix visible
        # to this lookup.
        ar_s: List = [None] * n_steps
        bufs_s: List = [None] * n_steps
        ids_s: List[Optional[Sequence[int]]] = [None] * n_steps
        pos_s = [0] * n_steps
        end_s = [0] * n_steps
        cap_s = [0] * n_steps

        def start(depth: int) -> None:
            """Position the candidate cursor for the join step at ``depth``."""
            step = steps[depth]
            idx = delta_index if depth == 0 and delta_source is not None else index
            lim = delta_limits if depth == 0 and delta_source is not None else limits
            cols = idx.cols.get(step.predicate)
            pos_s[depth] = 0
            if not cols:
                ar_s[depth] = None
                end_s[depth] = 0
                return
            best = None
            for position, kind, payload in step.probes:
                value = payload if kind == PROBE_CONST else slots[payload]
                bucket = idx.postings.get((step.predicate, position, value))
                if bucket is None:
                    ar_s[depth] = None
                    end_s[depth] = 0
                    return
                if best is None or len(bucket) < len(best):
                    best = bucket
            cap = len(cols) if lim is None else min(len(cols), lim.get(step.predicate, 0))
            ar_s[depth] = cols.arities
            bufs_s[depth] = cols.buffers
            ids_s[depth] = best
            cap_s[depth] = cap
            end_s[depth] = len(best) if best is not None else cap

        depth = 0
        start(0)
        last = n_steps - 1
        while depth >= 0:
            step = steps[depth]
            arities = ar_s[depth]
            buffers = bufs_s[depth]
            ids = ids_s[depth]
            k = pos_s[depth]
            end = end_s[depth]
            cap = cap_s[depth]
            ops = step.ops
            arity = step.arity
            advanced = False
            while k < end:
                if ids is None:
                    row_id = k
                else:
                    row_id = ids[k]
                    if row_id >= cap:
                        k = end
                        break
                k += 1
                if arities[row_id] != arity:
                    continue
                ok = True
                for code, position, payload in ops:
                    term = buffers[position][row_id]
                    if code == CHECK_CONST:
                        if term == payload:
                            continue
                        ok = False
                        break
                    if code == CHECK_SLOT:
                        if term == slots[payload]:
                            continue
                        ok = False
                        break
                    slots[payload] = term
                if ok:
                    advanced = True
                    break
            pos_s[depth] = k
            if not advanced:
                depth -= 1
                continue
            if depth == last:
                yield slots
            else:
                depth += 1
                start(depth)

    def _run_profiled(self, source, initial, delta_source) -> Iterator[List[int]]:
        """Profiled twin of :meth:`_run` — same matches, same order.

        Deliberately duplicated rather than parameterised: the backtracker
        is the row-mode hot loop and a per-candidate counter branch would
        cost every unprofiled run.  Change the join logic in BOTH methods —
        the parity suites fail on divergence.  Per-step counters here are
        exact (candidates entering each depth, probe lookups, survivors);
        the plan-level time is generator wall time and therefore includes
        consumer time between yields (see ``docs/observability.md``).
        """
        profile = PROFILER.plan_profile(self)
        step_profiles = profile.steps
        run_start = time.perf_counter_ns()
        emitted = 0
        try:
            index, limits = source._plan_source()
            slots: List[Optional[int]] = [None] * self.n_slots
            if initial:
                slot_of = self.slot_of
                for variable, value in initial.items():
                    slot = slot_of.get(variable)
                    if slot is not None:
                        slots[slot] = _seed_id(value)
            steps = self.steps
            n_steps = len(steps)
            if n_steps == 0:
                emitted += 1
                yield slots
                return
            if delta_source is not None:
                delta_index, delta_limits = delta_source._plan_source()
            else:
                delta_index, delta_limits = index, limits

            ar_s: List = [None] * n_steps
            bufs_s: List = [None] * n_steps
            ids_s: List[Optional[Sequence[int]]] = [None] * n_steps
            pos_s = [0] * n_steps
            end_s = [0] * n_steps
            cap_s = [0] * n_steps

            def start(depth: int) -> None:
                """Position the candidate cursor (counting rows in / probes)."""
                step_profile = step_profiles[depth]
                step_profile.rows_in += 1
                step = steps[depth]
                idx = delta_index if depth == 0 and delta_source is not None else index
                lim = delta_limits if depth == 0 and delta_source is not None else limits
                cols = idx.cols.get(step.predicate)
                pos_s[depth] = 0
                if not cols:
                    ar_s[depth] = None
                    end_s[depth] = 0
                    return
                best = None
                for position, kind, payload in step.probes:
                    value = payload if kind == PROBE_CONST else slots[payload]
                    step_profile.probes += 1
                    bucket = idx.postings.get((step.predicate, position, value))
                    if bucket is None:
                        ar_s[depth] = None
                        end_s[depth] = 0
                        return
                    if best is None or len(bucket) < len(best):
                        best = bucket
                cap = (
                    len(cols)
                    if lim is None
                    else min(len(cols), lim.get(step.predicate, 0))
                )
                ar_s[depth] = cols.arities
                bufs_s[depth] = cols.buffers
                ids_s[depth] = best
                cap_s[depth] = cap
                end_s[depth] = len(best) if best is not None else cap

            depth = 0
            start(0)
            last = n_steps - 1
            while depth >= 0:
                step = steps[depth]
                arities = ar_s[depth]
                buffers = bufs_s[depth]
                ids = ids_s[depth]
                k = pos_s[depth]
                end = end_s[depth]
                cap = cap_s[depth]
                ops = step.ops
                arity = step.arity
                advanced = False
                while k < end:
                    if ids is None:
                        row_id = k
                    else:
                        row_id = ids[k]
                        if row_id >= cap:
                            k = end
                            break
                    k += 1
                    if arities[row_id] != arity:
                        continue
                    ok = True
                    for code, position, payload in ops:
                        term = buffers[position][row_id]
                        if code == CHECK_CONST:
                            if term == payload:
                                continue
                            ok = False
                            break
                        if code == CHECK_SLOT:
                            if term == slots[payload]:
                                continue
                            ok = False
                            break
                        slots[payload] = term
                    if ok:
                        advanced = True
                        break
                pos_s[depth] = k
                if not advanced:
                    depth -= 1
                    continue
                step_profiles[depth].rows_out += 1
                if depth == last:
                    emitted += 1
                    yield slots
                else:
                    depth += 1
                    start(depth)
        finally:
            profile.executions += 1
            profile.rows_out += emitted
            profile.time_ns += time.perf_counter_ns() - run_start

    # -- introspection -------------------------------------------------------

    def describe(self) -> List[str]:
        """The compiled step order as human-readable lines (EXPLAIN body).

        Constant IDs are decoded back to spellings, slot indices to the
        variable names that own them; each line shows what the step scans
        or probes and which variables it binds.
        """
        slot_names = {slot: variable.name for variable, slot in self.slot_of.items()}

        def term_text(tid) -> str:
            if type(tid) is not int:
                return repr(tid)
            try:
                return str(TERMS.term(tid))
            except (IndexError, KeyError):  # pragma: no cover - stale ID
                return f"<id {tid}>"

        lines: List[str] = []
        for i, step in enumerate(self.steps):
            probes = []
            for position, kind, payload in step.probes:
                value = (
                    term_text(payload)
                    if kind == PROBE_CONST
                    else f"?{slot_names.get(payload, payload)}"
                )
                probes.append(f"[{position}]={value}")
            binds = []
            checks = []
            for code, position, payload in step.ops:
                if code == BIND_SLOT:
                    binds.append(f"?{slot_names.get(payload, payload)}")
                elif code == CHECK_SLOT and not any(
                    kind == PROBE_SLOT and probe_payload == payload
                    for _, kind, probe_payload in step.probes
                ):
                    checks.append(f"[{position}]==?{slot_names.get(payload, payload)}")
            access = f"probe {{{', '.join(probes)}}}" if probes else "scan"
            line = f"step {i}: {step.atom}  {access}"
            if binds:
                line += f"  bind [{', '.join(binds)}]"
            if checks:
                line += f"  check [{', '.join(checks)}]"
            lines.append(line)
        return lines


class _NegationProbe:
    """A negated body atom compiled to a ground membership template.

    Term-level (the row-mode path): the instantiated atom is built with term
    objects and checked with ``in``.  The batch paths use the encoded-key
    templates of :meth:`CompiledRule._negation_slots` instead.
    """

    __slots__ = ("atom", "predicate", "template")

    def __init__(self, atom: Atom):
        self.atom = atom
        self.predicate = atom.predicate
        # (is_variable, payload) per position; rule safety guarantees every
        # variable is bound by any full positive-body match, so the built
        # atom is a fact and satisfaction is plain membership.
        self.template = tuple(
            (isinstance(term, Variable), term) for term in atom.terms
        )

    def satisfied(self, substitution: Dict[Variable, Term], reference) -> bool:
        """True iff the instantiated negated atom is a fact of ``reference``."""
        fact = Atom(
            self.predicate,
            tuple(
                substitution[payload] if is_var else payload
                for is_var, payload in self.template
            ),
        )
        return fact in reference


def _reference_has_key(reference) -> Optional[Callable]:
    """The encoded-membership probe of ``reference``, or None.

    Instances and snapshots answer membership at the key level; anything
    else (a plain set in a test, say) falls back to decoded-Atom ``in``.
    """
    return getattr(reference, "has_key", None)


def _negation_hit(templates, row, has_key, reference) -> bool:
    """True iff some encoded negation template matches ``reference`` at ``row``.

    The single definition both the per-row check and the memoised batch
    pre-filter go through, so the two paths cannot drift: keys are built
    from the slot templates and answered via ``has_key`` when the reference
    speaks encoded keys, else by decoded-Atom membership.
    """
    for _, pid, template in templates:
        key = (pid, *(
            row[payload] if is_slot else payload
            for is_slot, payload in template
        ))
        if (
            has_key(key)
            if has_key is not None
            else TERMS.decode_atom(key) in reference
        ):
            return True
    return False


class RowOps:
    """Row-level firing helpers for one (rule, plan) pair.

    The batch executor represents matches as slot-ID tuples; this object is
    the precompiled bridge from those rows to everything an engine does with
    a match — building encoded head-fact keys, body instantiations
    (provenance), frontier and full binding keys, and negation membership
    probes — without ever materialising a substitution dict (or, on the
    firing fast path, an Atom).  Existential head variables map to
    *extended* slot ids ``n_slots + j`` (``j`` over the rule's sorted
    existentials): engines append the invented nulls' IDs to the row and
    feed the extended tuple to :meth:`head_keys_row`.
    """

    __slots__ = (
        "emit",
        "n_slots",
        "head_templates",
        "body_templates",
        "frontier_slots",
        "binding_order",
        "neg_templates",
    )

    def __init__(self, crule: "CompiledRule", plan: JoinPlan):
        slot_of = plan.slot_of
        rule = crule.rule
        n_slots = plan.n_slots
        existential_slot = {
            variable: n_slots + j
            for j, variable in enumerate(crule.sorted_existentials)
        }

        def template(atom: Atom):
            """Compile one atom into (predicate, pid, slot-or-ID parts)."""
            parts = []
            for term in atom.terms:
                if isinstance(term, Variable):
                    slot = slot_of.get(term)
                    if slot is None:
                        slot = existential_slot[term]
                    parts.append((True, slot))
                else:
                    parts.append((False, TERMS.intern_term(term)))
            return (atom.predicate, TERMS.intern_constant(atom.predicate), tuple(parts))

        self.emit = plan.emit
        self.n_slots = n_slots
        self.head_templates = tuple(template(atom) for atom in rule.head)
        self.body_templates = tuple(template(atom) for atom in rule.body_positive)
        self.frontier_slots = tuple(
            (variable, slot_of[variable]) for variable in crule.sorted_frontier
        )
        # All (variable, slot) pairs ordered by variable name — the chase's
        # canonical trigger-identity key, equal in content to sorting the
        # substitution dict's items.
        self.binding_order = tuple(
            sorted(slot_of.items(), key=lambda item: item[0].name)
        )
        self.neg_templates = crule._negation_slots(plan)[1]

    def head_keys_row(self, extended_row) -> List[Tuple[int, ...]]:
        """The encoded head-fact keys instantiated from an (extended) slot row."""
        return [
            (pid, *(
                extended_row[payload] if is_slot else payload
                for is_slot, payload in template
            ))
            for _, pid, template in self.head_templates
        ]

    def head_facts_row(self, extended_row) -> List[Atom]:
        """The head atoms instantiated from an (extended) slot-ID row (decoded)."""
        decode_atom = TERMS.decode_atom
        return [decode_atom(key) for key in self.head_keys_row(extended_row)]

    def body_facts_row(self, row) -> Tuple[Atom, ...]:
        """The positive body instantiated from a row (provenance records)."""
        decode_atom = TERMS.decode_atom
        return tuple(
            decode_atom(
                (pid, *(
                    row[payload] if is_slot else payload
                    for is_slot, payload in template
                ))
            )
            for _, pid, template in self.body_templates
        )

    def binding_key(self, row) -> Tuple:
        """The name-sorted (variable, value-ID) tuple identifying this trigger."""
        return tuple((variable, row[slot]) for variable, slot in self.binding_order)

    def negation_blocked_row(self, row, reference) -> bool:
        """Unmemoised per-row negation check (for mutable references)."""
        return _negation_hit(
            self.neg_templates, row, _reference_has_key(reference), reference
        )


class CompiledRule:
    """Everything static about one rule, resolved at plan time.

    * ``plan`` — the full positive-body join.
    * ``pivot_plans[i]`` — the same join with body atom ``i`` first, for
      semi-naive rounds where atom ``i`` ranges over the delta.
    * ``negation`` — membership probes for the negated atoms.
    * ``head_plan`` — join over the head atoms with the frontier prebound,
      used by the restricted chase to test whether a trigger's head is
      already satisfiable (the existential case); ``None`` for rules without
      existential variables, where the check is plain membership.
    """

    __slots__ = (
        "rule",
        "plan",
        "pivot_plans",
        "negation",
        "head_plan",
        "sorted_frontier",
        "sorted_existentials",
        "head_templates",
        "_neg_slot_cache",
        "_row_ops_cache",
    )

    def __init__(self, rule: Rule):
        self.rule = rule
        self._finish_init(
            rule,
            compile_body(rule.body_positive, ()),
            tuple(
                compile_pivot(rule.body_positive, pivot)
                for pivot in range(len(rule.body_positive))
            ),
            compile_body(rule.head, rule.frontier)
            if rule.existential_variables
            else None,
        )

    @classmethod
    def _restore(
        cls,
        rule: Rule,
        plan: JoinPlan,
        pivot_plans: Tuple[JoinPlan, ...],
        head_plan: Optional[JoinPlan],
    ) -> "CompiledRule":
        """Rebuild a compiled rule from persisted plans (plan-cache load)."""
        self = cls.__new__(cls)
        self.rule = rule
        self._finish_init(rule, plan, pivot_plans, head_plan)
        return self

    def _finish_init(self, rule, plan, pivot_plans, head_plan) -> None:
        self.sorted_frontier = tuple(sorted(rule.frontier))
        self.sorted_existentials = tuple(sorted(rule.existential_variables))
        # (predicate, ((is_variable, payload), ...)) per head atom: building a
        # head fact is then direct dict indexing, no Atom.apply fallbacks
        # (term-level — the row-mode firing path).
        self.head_templates = tuple(
            (atom.predicate, tuple((isinstance(t, Variable), t) for t in atom.terms))
            for atom in rule.head
        )
        self.plan = plan
        self.pivot_plans = pivot_plans
        self.negation = tuple(_NegationProbe(atom) for atom in rule.body_negative)
        self.head_plan = head_plan
        # Per-plan slot templates for batched negation and row-level firing
        # (plan id -> compiled forms); pivot plans assign different slot
        # numberings, hence the keying.
        self._neg_slot_cache: Dict[int, Tuple] = {}
        self._row_ops_cache: Dict[int, RowOps] = {}

    # -- matching -----------------------------------------------------------

    def substitutions(self, instance) -> Iterator[Dict[Variable, Term]]:
        """All matches of the positive body (negation not yet applied)."""
        return self.plan.execute(instance)

    def delta_substitutions(self, instance, delta) -> Iterator[Dict[Variable, Term]]:
        """Semi-naive matches: at least one body atom maps into ``delta``.

        One pivot plan runs per body atom whose predicate occurs in the
        delta; as in the legacy evaluators, a match reachable through
        several pivots is yielded once per pivot and deduplicated by the
        caller's ``Instance.add``.
        """
        delta_index = delta._plan_source()[0]
        full_index = instance._plan_source()[0]
        delta_live = delta_index.live
        for pivot, atom in enumerate(self.rule.body_positive):
            if not delta_live.get(atom.predicate):
                continue
            plan = self.pivot_plans[pivot]
            if not plan.pivot_viable(delta_index, full_index):
                active_stats().pivots_skipped += 1
                continue
            yield from plan.execute(instance, None, delta_source=delta)

    # -- batched matching ----------------------------------------------------

    def row_ops(self, plan: JoinPlan) -> RowOps:
        """The (cached) row-level firing helpers for ``plan``'s slot layout."""
        ops = self._row_ops_cache.get(id(plan))
        if ops is None:
            ops = self._row_ops_cache[id(plan)] = RowOps(self, plan)
        return ops

    def trigger_row_batches(
        self, instance, delta=None, negation_reference=None
    ) -> List[Tuple[JoinPlan, List[Tuple[int, ...]]]]:
        """Batched body matches as (plan, slot-ID-row list) pairs.

        The engine-facing batch entry point: one batch for the full join, or
        one per viable pivot when ``delta`` is given (same pivot order and
        empty-bucket skips as :meth:`delta_substitutions`).  The list is
        computed **eagerly** — every pivot is matched against the same
        instance state before the caller fires a single trigger — mirroring
        the row path's ``list(...)`` materialisation; a lazy variant would
        let earlier pivots' head facts leak into later pivots' matches.

        When a *frozen* ``negation_reference`` is supplied (an
        :class:`~repro.engine.index.InstanceSnapshot`, or an instance that is
        not mutated while triggers are processed), negated atoms are
        pre-filtered in bulk; pre-filtering is only equivalent to the row
        path's per-trigger check under that frozenness assumption.  Rows
        arrive in row-at-a-time order; feed them to :meth:`row_ops` helpers
        to fire heads without building substitution dicts.
        """
        batches: List[Tuple[JoinPlan, List[Tuple[int, ...]]]] = []
        if delta is None:
            plan = self.plan
            rows = plan.run_batch(instance)
            if self.negation and negation_reference is not None:
                rows = self._filter_negation_rows(rows, plan, negation_reference)
            if rows:
                batches.append((plan, rows))
            return batches
        delta_index = delta._plan_source()[0]
        full_index = instance._plan_source()[0]
        delta_live = delta_index.live
        for pivot, atom in enumerate(self.rule.body_positive):
            if not delta_live.get(atom.predicate):
                continue
            plan = self.pivot_plans[pivot]
            if not plan.pivot_viable(delta_index, full_index):
                active_stats().pivots_skipped += 1
                continue
            rows = plan.run_batch(instance, None, delta_source=delta)
            if self.negation and negation_reference is not None:
                rows = self._filter_negation_rows(rows, plan, negation_reference)
            if rows:
                batches.append((plan, rows))
        return batches

    def _negation_slots(self, plan: JoinPlan) -> Tuple:
        """(referenced slots, per-probe key templates) for ``plan``'s layout.

        Template payloads are term IDs for constants and slot indices for
        variables, so instantiating a probe under a slot-ID row yields the
        encoded membership key directly.
        """
        cached = self._neg_slot_cache.get(id(plan))
        if cached is None:
            slot_of = plan.slot_of
            templates = tuple(
                (
                    probe.predicate,
                    TERMS.intern_constant(probe.predicate),
                    tuple(
                        (True, slot_of[payload])
                        if is_var
                        else (False, TERMS.intern_term(payload))
                        for is_var, payload in probe.template
                    ),
                )
                for probe in self.negation
            )
            slots = tuple(
                sorted(
                    {
                        payload
                        for _, _, template in templates
                        for is_slot, payload in template
                        if is_slot
                    }
                )
            )
            cached = (slots, templates)
            self._neg_slot_cache[id(plan)] = cached
        return cached

    def _filter_negation_rows(self, rows, plan: JoinPlan, reference):
        """Drop slot rows whose negated atoms hold in ``reference``.

        The membership probes are batched: rows agreeing on every slot the
        negated atoms read share one memoised verdict, so the encoded keys
        are built once per distinct key instead of once per match — and no
        Atom is ever constructed when the reference answers at the key
        level.
        """
        if not rows:
            return rows
        neg_slots, templates = self._negation_slots(plan)
        has_key = _reference_has_key(reference)
        memo: Dict[Tuple, bool] = {}
        memo_get = memo.get
        kept = []
        append = kept.append
        for row in rows:
            key = tuple(row[slot] for slot in neg_slots)
            blocked = memo_get(key)
            if blocked is None:
                blocked = memo[key] = _negation_hit(templates, row, has_key, reference)
            if not blocked:
                append(row)
        if PROFILER.enabled:
            profile = PROFILER.plan_profile(plan)
            profile.neg_in += len(rows)
            profile.neg_blocked += len(rows) - len(kept)
        return kept

    def negation_blocked(self, substitution: Dict[Variable, Term], reference) -> bool:
        """True iff some negated atom holds in ``reference`` under ``substitution``."""
        for probe in self.negation:
            if probe.satisfied(substitution, reference):
                return True
        return False

    def head_facts(self, substitution: Dict[Variable, Term]) -> List[Atom]:
        """The head atoms instantiated under ``substitution``.

        ``substitution`` must bind every head variable (frontier plus, for
        existential rules, the freshly invented nulls), which every engine
        guarantees at fire time.
        """
        return [
            Atom(
                predicate,
                tuple(
                    substitution[payload] if is_var else payload
                    for is_var, payload in template
                ),
            )
            for predicate, template in self.head_templates
        ]

    def head_satisfied(self, substitution: Dict[Variable, Term], instance) -> bool:
        """Restricted-chase check: does an extension satisfying the head exist?"""
        if self.head_plan is None:
            return all(
                atom.apply(substitution) in instance for atom in self.rule.head
            )
        return self.head_plan.exists(instance, substitution)

    # -- introspection -------------------------------------------------------

    def explain(self) -> str:
        """EXPLAIN text: the compiled plans, plus profile counters if any.

        Always renders the full-body plan's step order
        (:meth:`JoinPlan.describe`) and the negated atoms; when profiling
        has run (:data:`repro.obs.profile.PROFILER` enabled during some
        execution), each executed plan additionally reports its
        accumulated executions, per-step candidate/probe/survivor counts,
        and negation pre-filter hits.  Pivot plans appear only once they
        have executed — an un-run pivot carries no information.
        """
        lines = [f"rule: {self.rule}"]
        lines.append("plan:")
        for line in self.plan.describe():
            lines.append(f"  {line}")
        if self.negation:
            lines.append(
                "negation: "
                + ", ".join(f"not {probe.atom}" for probe in self.negation)
            )
        lines.extend(_profile_lines(self.plan.profile, indent="  "))
        for pivot, plan in enumerate(self.pivot_plans):
            profile = plan.profile
            if profile is None or not profile.executions:
                continue
            lines.append(
                f"pivot {pivot} ({self.rule.body_positive[pivot]} from delta):"
            )
            for line in plan.describe():
                lines.append(f"  {line}")
            lines.extend(_profile_lines(profile, indent="  "))
        return "\n".join(lines)


def _profile_lines(profile, indent: str) -> List[str]:
    """Render one plan's accumulated profile as EXPLAIN lines (or nothing)."""
    if profile is None or not profile.executions:
        return []
    lines = [
        f"{indent}profile: executions={profile.executions} "
        f"rows_out={profile.rows_out} time_us={profile.time_ns // 1000}"
    ]
    for i, step in enumerate(profile.steps):
        lines.append(
            f"{indent}  step {i}: rows_in={step.rows_in} probes={step.probes} "
            f"rows_out={step.rows_out} time_us={step.time_ns // 1000}"
        )
    if profile.neg_in:
        lines.append(
            f"{indent}  negation: rows_in={profile.neg_in} "
            f"blocked={profile.neg_blocked}"
        )
    return lines


# -- compilation ---------------------------------------------------------------


def _selectivity_order(
    atoms: Sequence[Atom], prebound: FrozenSet[Variable], first: Optional[int]
) -> List[int]:
    """Greedy join order: most bound positions, then most constants, then
    fewest fresh variables; ties keep the original order.  ``first`` pins a
    pivot atom to the front."""
    order: List[int] = []
    bound = set(prebound)
    remaining = list(range(len(atoms)))
    if first is not None:
        order.append(first)
        remaining.remove(first)
        bound.update(atoms[first].variables)
    while remaining:
        best_index = None
        best_score = None
        for i in remaining:
            atom = atoms[i]
            n_bound = 0
            n_const = 0
            fresh = set()
            for term in atom.terms:
                if isinstance(term, Variable):
                    if term in bound:
                        n_bound += 1
                    else:
                        fresh.add(term)
                else:
                    n_bound += 1
                    n_const += 1
            score = (n_bound, n_const, -len(fresh), -i)
            if best_score is None or score > best_score:
                best_score = score
                best_index = i
        order.append(best_index)
        remaining.remove(best_index)
        bound.update(atoms[best_index].variables)
    return order


def _build_ordered(
    atoms: Tuple[Atom, ...], order: Sequence[int], prebound: FrozenSet[Variable]
) -> JoinPlan:
    """Build the plan for a fixed atom order (the post-selectivity half).

    Split from :func:`_compile_ordered` so the plan cache
    (:mod:`repro.engine.plancache`) can rebuild persisted plans without
    re-running the greedy ordering.  Constant payloads are interned to term
    IDs **here** — at plan-build time — which is what makes every runtime
    comparison an int equality.
    """
    slot_of: Dict[Variable, int] = {}
    for variable in sorted(prebound):
        slot_of[variable] = len(slot_of)
    bound_slots = set(slot_of.values())
    steps: List[_Step] = []
    for i in order:
        atom = atoms[i]
        probes: List[Tuple[int, int, int]] = []
        hoisted: List[Tuple[int, int, int]] = []
        trailing: List[Tuple[int, int, int]] = []
        for position, term in enumerate(atom.terms):
            if not isinstance(term, Variable):
                tid = TERMS.intern_term(term)
                hoisted.append((CHECK_CONST, position, tid))
                probes.append((position, PROBE_CONST, tid))
                continue
            slot = slot_of.get(term)
            if slot is None:
                slot = slot_of[term] = len(slot_of)
            if slot in bound_slots:
                # Bound before this atom: probe-able and hoistable.  Bound
                # within this atom (repeated variable): the check must stay
                # after its BIND_SLOT, and the slot value is not yet known
                # at probe time.
                if any(op[0] == BIND_SLOT and op[2] == slot for op in trailing):
                    trailing.append((CHECK_SLOT, position, slot))
                else:
                    hoisted.append((CHECK_SLOT, position, slot))
                    probes.append((position, PROBE_SLOT, slot))
            else:
                bound_slots.add(slot)
                trailing.append((BIND_SLOT, position, slot))
        steps.append(_Step(atom, tuple(hoisted + trailing), tuple(probes)))
    return JoinPlan(atoms, tuple(steps), slot_of, prebound)


def _compile_ordered(
    atoms: Sequence[Atom], first: Optional[int], prebound: FrozenSet[Variable]
) -> JoinPlan:
    atoms = tuple(atoms)
    return _build_ordered(atoms, _selectivity_order(atoms, prebound, first), prebound)


_BODY_CACHE: Dict[Tuple[Tuple[Atom, ...], FrozenSet[Variable]], JoinPlan] = {}
_PIVOT_CACHE: Dict[Tuple[Tuple[Atom, ...], int], JoinPlan] = {}
_RULE_CACHE: Dict[Rule, CompiledRule] = {}
_CACHE_LIMIT = 4096


@interning.register_epoch_hook
def _drop_plan_caches() -> None:
    """Epoch hook: start every term-table epoch with empty plan caches.

    Compiled plans embed constant IDs only, so they would technically
    survive a null-space reset — but the epoch contract is "nothing compiled
    against the old materialization is consulted again," and an empty cache
    is the cheapest way to make that auditable.
    """
    _BODY_CACHE.clear()
    _PIVOT_CACHE.clear()
    _RULE_CACHE.clear()

#: Hook installed by :mod:`repro.engine.plancache`: rule -> CompiledRule or
#: None, consulted on a rule-cache miss before compiling from scratch.
_STAGED_LOOKUP: Optional[Callable[[Rule], Optional[CompiledRule]]] = None


def set_staged_lookup(lookup: Optional[Callable[[Rule], Optional[CompiledRule]]]) -> None:
    """Install (or clear) the plan-cache staging hook for this process."""
    global _STAGED_LOOKUP
    _STAGED_LOOKUP = lookup


def compile_body(
    atoms: Iterable[Atom], prebound: Iterable[Variable] = ()
) -> JoinPlan:
    """Compile (and cache) a join plan for an atom sequence.

    ``prebound`` names the variables that will arrive already bound in the
    seed substitution; they receive dedicated slots so the executor treats
    them as bound from step one.
    """
    atoms = tuple(atoms)
    prebound_set = frozenset(prebound)
    key = (atoms, prebound_set)
    plan = _BODY_CACHE.get(key)
    if plan is None:
        if len(_BODY_CACHE) >= _CACHE_LIMIT:
            _BODY_CACHE.clear()
        plan = _compile_ordered(atoms, None, prebound_set)
        _BODY_CACHE[key] = plan
    return plan


def compile_pivot(atoms: Iterable[Atom], pivot: int) -> JoinPlan:
    """Compile (and cache) a join plan with atom ``pivot`` forced first.

    Executed with ``delta_source``, the pivot atom's candidates come from the
    delta and the remaining atoms join against the full instance — the
    semi-naive step.
    """
    atoms = tuple(atoms)
    key = (atoms, pivot)
    plan = _PIVOT_CACHE.get(key)
    if plan is None:
        if len(_PIVOT_CACHE) >= _CACHE_LIMIT:
            _PIVOT_CACHE.clear()
        plan = _compile_ordered(atoms, pivot, frozenset())
        _PIVOT_CACHE[key] = plan
    return plan


def compile_rule(rule: Rule) -> CompiledRule:
    """Compile (and cache) the full per-rule plan bundle.

    A staged plan-cache entry (:mod:`repro.engine.plancache`) is consulted
    first on a miss: persisted bundles rebuild the plans structurally and
    re-intern their constants against this process's term table, skipping
    the selectivity search and op construction.
    """
    compiled = _RULE_CACHE.get(rule)
    if compiled is None:
        if len(_RULE_CACHE) >= _CACHE_LIMIT:
            _RULE_CACHE.clear()
        if _STAGED_LOOKUP is not None:
            compiled = _STAGED_LOOKUP(rule)
        if compiled is None:
            compiled = CompiledRule(rule)
        _RULE_CACHE[rule] = compiled
    return compiled
