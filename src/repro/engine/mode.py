"""Process-wide execution-mode switch: row-at-a-time vs column-at-a-time.

Every engine (chase, semi-naive, warded) evaluates rule bodies through the
compiled :class:`~repro.engine.plan.JoinPlan`; this module selects *how* those
plans are executed:

* ``"row"`` — the depth-first backtracking executor (``JoinPlan._run``): one
  candidate row id at a time, one substitution yielded per match.
* ``"batch"`` — the column-at-a-time executor (:mod:`repro.engine.batch`):
  each plan step consumes and produces a whole batch of partial slot tuples,
  probe lookups are shared across all rows with equal probe keys, and
  negation is checked in bulk against the frozen snapshot reference.

Both executors produce the same matches **in the same order** (the batch
executor emits row-major, candidates ascending — exactly the depth-first
order), so engine results, invented-null sequences, and the
:mod:`~repro.engine.stats` counters are identical in both modes; the
differential suite in ``tests/test_engine_batch_parity.py`` locks this in.

The mode is read from the ``REPRO_ENGINE_MODE`` environment variable at
import time (default ``"row"``) and can be changed per process with
:func:`set_execution_mode` or temporarily with :func:`execution_mode`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

ROW = "row"
BATCH = "batch"
_VALID = (ROW, BATCH)

_mode = os.environ.get("REPRO_ENGINE_MODE", ROW)
if _mode not in _VALID:
    raise ValueError(
        f"REPRO_ENGINE_MODE must be one of {_VALID}, got {_mode!r}"
    )


def get_execution_mode() -> str:
    """The current mode: ``"row"`` or ``"batch"``."""
    return _mode


def set_execution_mode(mode: str) -> None:
    """Select the executor every engine uses from now on in this process."""
    global _mode
    if mode not in _VALID:
        raise ValueError(f"execution mode must be one of {_VALID}, got {mode!r}")
    _mode = mode


def batch_enabled() -> bool:
    """True iff engines should run plans column-at-a-time."""
    return _mode == BATCH


@contextmanager
def execution_mode(mode: str) -> Iterator[None]:
    """Temporarily switch mode (used by the harness and the parity tests)."""
    previous = get_execution_mode()
    set_execution_mode(mode)
    try:
        yield
    finally:
        set_execution_mode(previous)
