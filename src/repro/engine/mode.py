"""Process-wide execution-mode switch: row, batch, or sharded-parallel.

Every engine (chase, semi-naive, warded) evaluates rule bodies through the
compiled :class:`~repro.engine.plan.JoinPlan`; this module selects *how* those
plans are executed:

* ``"row"`` — the depth-first backtracking executor (``JoinPlan._run``): one
  candidate row id at a time, one substitution yielded per match.
* ``"batch"`` — the column-at-a-time executor (:mod:`repro.engine.batch`):
  each plan step consumes and produces a whole batch of partial slot tuples,
  probe lookups are shared across all rows with equal probe keys, and
  negation is checked in bulk against the frozen snapshot reference.
* ``"parallel"`` — the sharded multi-process executor
  (:mod:`repro.engine.parallel`): rule-body matching is fanned out to a pool
  of worker processes, each matching the hash shard of step-0 candidates it
  owns (:mod:`repro.engine.shard`); the parent merges the shard results back
  into the exact batch-mode order and fires heads sequentially.  Work below a
  cost threshold falls back to the in-process batch executor, so small
  fixpoints never pay IPC costs.

All three executors produce the same matches **in the same order** (batch
emits row-major, candidates ascending — exactly the depth-first order; the
parallel merge reconstructs that order from the shard streams), so engine
results, invented-null sequences, and the mode-independent
:mod:`~repro.engine.stats` counters are identical in every mode; the
differential suites in ``tests/test_engine_batch_parity.py`` and
``tests/test_engine_shard_parity.py`` lock this in.

Configuration is **lazy**: the ``REPRO_ENGINE_MODE`` /
``REPRO_ENGINE_PARALLEL`` environment variables are read at the *first call*
that needs them, not at import time, and only when no explicit setting has
been made.  This fixes the historic footgun where ``set_execution_mode``
callers who imported submodules in the wrong order silently got the default:
an explicit :func:`set_execution_mode` / :func:`set_worker_count` call (or
the :class:`repro.EngineConfig` facade, which goes through them) always wins,
regardless of import order, and ``os.environ`` changes made before first use
are honoured.  The default mode is ``"batch"`` (``REPRO_ENGINE_MODE=row``
restores the row-at-a-time executor); ``REPRO_ENGINE_PARALLEL=N`` alone
selects the parallel executor with ``N`` workers, and when both variables are
set ``REPRO_ENGINE_MODE`` wins while ``REPRO_ENGINE_PARALLEL`` only sizes the
pool.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

ROW = "row"
BATCH = "batch"
PARALLEL = "parallel"
_VALID = (ROW, BATCH, PARALLEL)

# None = "not resolved yet": the first getter call resolves from the
# environment; an explicit setter call pins the value and the environment is
# never consulted again (for that knob) in this process.
_mode: Optional[str] = None
_workers: Optional[int] = None


def _resolve_workers_env() -> Optional[int]:
    """``REPRO_ENGINE_PARALLEL`` as an int, or None when unset/empty.

    An empty string counts as unset (CI matrices pass ``''`` for the
    non-parallel rows).
    """
    raw = os.environ.get("REPRO_ENGINE_PARALLEL") or None
    if raw is None:
        return None
    try:
        workers = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_ENGINE_PARALLEL must be an integer worker count, got {raw!r}"
        ) from None
    if workers < 1:
        raise ValueError(f"REPRO_ENGINE_PARALLEL must be >= 1, got {workers}")
    return workers


def _resolve() -> None:
    """Resolve any still-unset knob from the environment (first use)."""
    global _mode, _workers
    workers_env = _resolve_workers_env()
    if _workers is None:
        _workers = workers_env if workers_env is not None else 2
    if _mode is None:
        mode = os.environ.get("REPRO_ENGINE_MODE") or None
        if mode is None:
            # ``REPRO_ENGINE_PARALLEL=N`` alone is the documented toggle for
            # the sharded executor; otherwise batch is the default (ROADMAP:
            # flipped after soaking in CI behind the row default).
            mode = PARALLEL if workers_env is not None else BATCH
        if mode not in _VALID:
            raise ValueError(
                f"REPRO_ENGINE_MODE must be one of {_VALID}, got {mode!r}"
            )
        _mode = mode


def get_execution_mode() -> str:
    """The current mode: ``"row"``, ``"batch"``, or ``"parallel"``."""
    if _mode is None:
        _resolve()
    return _mode


def set_execution_mode(mode: str) -> None:
    """Select the executor every engine uses from now on in this process."""
    global _mode
    if mode not in _VALID:
        raise ValueError(f"execution mode must be one of {_VALID}, got {mode!r}")
    _mode = mode


def batch_enabled() -> bool:
    """True iff engines should run plans column-at-a-time.

    The parallel executor is a distribution layer over the batch executor
    (workers match shards column-at-a-time, the parent fires from slot rows),
    so engines use their batch firing paths in parallel mode too.
    """
    return get_execution_mode() != ROW


def parallel_enabled() -> bool:
    """True iff engines should fan rule-body matching out to the worker pool."""
    return get_execution_mode() == PARALLEL


def get_worker_count() -> int:
    """Worker processes the parallel executor uses (``REPRO_ENGINE_PARALLEL``)."""
    if _workers is None:
        _resolve()
    return _workers


def set_worker_count(workers: int) -> None:
    """Resize the parallel executor (takes effect at the next pool spawn)."""
    global _workers
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    _workers = workers


def _reset_for_tests() -> None:
    """Forget explicit settings so the next use re-reads the environment.

    Test-only: lets the lazy-resolution regression tests exercise the
    first-use path repeatedly within one process.
    """
    global _mode, _workers
    _mode = None
    _workers = None


@contextmanager
def execution_mode(mode: str, workers: Optional[int] = None) -> Iterator[None]:
    """Temporarily switch mode (used by the harness and the parity tests)."""
    previous = get_execution_mode()
    previous_workers = get_worker_count()
    set_execution_mode(mode)
    if workers is not None:
        set_worker_count(workers)
    try:
        yield
    finally:
        set_execution_mode(previous)
        set_worker_count(previous_workers)
