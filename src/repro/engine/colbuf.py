"""Flat columnar fact storage: one int64 buffer per predicate position.

Until this revision :attr:`PredicateIndex.cols
<repro.engine.index.PredicateIndex.cols>` held one Python tuple of term IDs
per fact — compact enough, but every batch-kernel scan paid a pointer chase
per row and a ``PyObject`` header per value, nothing could be handed to
``numpy`` without a copy, and the parallel workers had to receive and re-store
every row through the pickled wire protocol.  :class:`ColumnBuffer` packs the
same data into **flat 64-bit columns**:

* ``arities[row]`` — the row's arity, or :data:`TOMB` (``-1``) for a
  tombstoned row.  Tombstoning flips *only* the arity: the position values
  stay in place, so a deletion replayed elsewhere (worker postings unlink)
  can still read what the row held, and every scan path filters dead rows
  with the same single ``arities[row] != arity`` comparison that already
  rejects wrong-arity rows.
* ``gids[row]`` — the fact's global insertion ordinal (``-1`` when the
  writer has none), stored at append time so shared-memory workers can
  rebuild shard gid lists without any per-fact wire traffic.
* ``buffers[p][row]`` — the term ID at position ``p``; rows narrower than
  the widest arity seen pad the wider columns with ``-1`` (never read: the
  arity filter runs first).

All regions are int64 (``array('q')`` on the heap, ``memoryview("q")`` over
a ``multiprocessing.shared_memory`` segment when promoted), so a transient
``numpy.frombuffer`` view is zero-copy in every mode — the batch kernels of
:mod:`repro.engine.kernels` rely on this.

**Three backing modes, one object identity.**

* *heap* — plain ``array('q')`` storage, grown by ``append``.  The default;
  every instance starts here and single-process runs never leave it.
* *promoted* — the same logical content moved into one shared-memory
  segment (:meth:`promote`), laid out as ``capacity``-row regions in the
  order ``arities | gids | position 0 | position 1 | ...``.  Appends write
  in place through memoryviews; outgrowing the capacity (rows or positions)
  allocates a doubled segment, byte-copies the regions, and unlinks the old
  one immediately (attached workers keep their mapping until they re-attach
  at the next sync — POSIX keeps unlinked segments alive while mapped).
  Promotion and demotion mutate the buffer **in place**, so every index and
  executor holding a reference sees the switch for free.
* *attached* — a worker-side read-only view over a parent's segment
  (:meth:`attach`), with ``n_rows`` pinned to the sync watermark so rows the
  parent appends afterwards stay invisible until the next sync message.

**Lifecycle.**  Segments are owned by the promoting (parent) process: every
promoted buffer is tracked in a module registry and :func:`demote_all` —
called from ``shutdown_pool`` and therefore also on term-table epoch resets
and interpreter exit — copies the content back to the heap and unlinks the
segment, which is what keeps ``/dev/shm`` clean after the pool goes away
(``tests/test_engine_shm_lifecycle.py`` asserts this).  Attachers close
their mapping but never unlink.

**Resource-tracker discipline.**  CPython 3.8–3.12 registers a POSIX
shared-memory name with the ``resource_tracker`` on *every* ``SharedMemory``
open, attaches included — and fork workers may share the parent's tracker
process (inherited fd), whose bookkeeping is a plain set that raises on
unbalanced unregisters.  The only arrangement that stays silent in both the
shared- and private-tracker cases is: the **creator** holds the single
registration and drops it exactly once (``unlink`` does, or
:func:`_unregister_attachment` when ownership is handed to another process),
while **attachers never register at all**
(:func:`_registration_suppressed`).
"""

from __future__ import annotations

import os
import weakref
from array import array
from contextlib import contextmanager
from typing import List, Optional, Tuple

#: The arity value marking a tombstoned row.  Position values of a dead row
#: are deliberately left in place (see module docstring).
TOMB = -1

#: Padding value for positions beyond a row's arity.  Never read by scans
#: (the arity filter runs first); distinct-value kernels mask it out.
PAD = -1

_ITEMSIZE = 8  # int64 everywhere
_MIN_CAPACITY = 64

# Promoted buffers owned by this process, for demote_all() teardown sweeps.
_PROMOTED: "weakref.WeakSet[ColumnBuffer]" = weakref.WeakSet()

# CSR seal segments owned (created) by this process, for the same sweep:
# a retired pool leaves no attacher, so an owned seal segment would only
# leak /dev/shm space past shutdown_pool().
_SEALS: "weakref.WeakSet[SharedIntSegment]" = weakref.WeakSet()

_seg_counter = 0


def _segment_name(kind: str = "col") -> str:
    """A process-unique shared-memory segment name."""
    global _seg_counter
    _seg_counter += 1
    return f"repro-{kind}-{os.getpid()}-{_seg_counter}"


def _unregister_attachment(name: str) -> None:
    """Drop this process's resource-tracker registration for ``name``.

    Used by a *creator* handing segment ownership to another process (the
    worker→parent result segments): the registration must leave with the
    ownership, or the tracker would unlink the segment under the new owner
    at cleanup time.  Never call this for a name this process did not
    register — the tracker's bookkeeping is a set and an unbalanced remove
    raises (noisily) inside the tracker process.
    """
    try:  # pragma: no cover - stdlib-version defensive
        from multiprocessing import resource_tracker

        resource_tracker.unregister("/" + name.lstrip("/"), "shared_memory")
    except Exception:
        pass


@contextmanager
def _registration_suppressed():
    """Open a ``SharedMemory`` without registering with the resource tracker.

    The attach side must not register: fork workers can share the parent's
    tracker process, where a register+unregister pair from an attacher would
    silently delete the *owner's* registration (the tracker keeps a set).
    Suppressing the call entirely is balanced in every topology.  The
    processes involved are single-threaded at attach points, so the brief
    monkeypatch window cannot race.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        yield
    finally:
        resource_tracker.register = original


class SharedIntSegment:
    """One flat int64 shared-memory region: the CSR seal container.

    The parent packs a whole seal — every lane chunk of one sync — into a
    single segment (:meth:`create`) and ships only its name plus a
    directory of offsets; workers map it read-only (:meth:`attach`) and
    slice zero-copy chunk views out of :attr:`data`.  Same tracker
    discipline as :class:`ColumnBuffer`: the creator holds the single
    registration (and the unlink), attachers never register.  Creator-side
    instances are swept by :func:`demote_all` so a retired pool leaves
    ``/dev/shm`` exactly as it found it even when a session object (and the
    sealer state it owns) outlives the pool.
    """

    __slots__ = ("name", "data", "_shm", "_owned", "__weakref__")

    def __init__(self, shm, n_values: int, owned: bool):
        self.name = shm.name
        self._shm = shm
        self._owned = owned
        self.data = shm.buf[: n_values * _ITEMSIZE].cast("q")
        if owned:
            _SEALS.add(self)

    @classmethod
    def create(cls, values) -> Optional["SharedIntSegment"]:
        """Pack ``values`` (an ``array('q')``) into a fresh owned segment.

        None when shared memory is unavailable or full — the caller falls
        back to the non-CSR protocol for the session.
        """
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(
                create=True, size=max(len(values), 1) * _ITEMSIZE,
                name=_segment_name("csr"),
            )
        except Exception:  # pragma: no cover - /dev/shm unavailable or full
            return None
        raw = memoryview(values).cast("B")
        shm.buf[: len(raw)] = raw
        return cls(shm, len(values), owned=True)

    @classmethod
    def attach(cls, name: str, n_values: int) -> "SharedIntSegment":
        """Map a parent seal segment read-only (worker side, unregistered)."""
        from multiprocessing import shared_memory

        with _registration_suppressed():
            shm = shared_memory.SharedMemory(name=name)
        return cls(shm, n_values, owned=False)

    def release(self) -> None:
        """Drop the mapping; owners also unlink the segment (idempotent)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            self.data.release()
        except Exception:  # pragma: no cover - teardown best effort
            pass
        if self._owned:
            _SEALS.discard(self)
            _close_and_unlink(shm)
        else:
            try:
                shm.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass


class ColumnBuffer:
    """Flat int64 columns (arities, gids, one buffer per position) for one
    predicate's rows."""

    __slots__ = (
        "n_rows",
        "arities",
        "gids",
        "buffers",
        "_shm",
        "_capacity",
        "_n_positions",
        "_finalizer",
        "_attached",
        "__weakref__",
    )

    def __init__(self) -> None:
        self.n_rows = 0
        self.arities = array("q")
        self.gids = array("q")
        self.buffers: List = []
        self._shm = None
        self._capacity = 0
        self._n_positions = 0
        self._finalizer = None
        self._attached = False

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return self.n_rows

    @property
    def n_positions(self) -> int:
        """The widest arity this buffer has stored (column count)."""
        return len(self.buffers)

    @property
    def shared(self) -> bool:
        """True while the storage lives in a shared-memory segment."""
        return self._shm is not None

    @property
    def segment(self) -> Optional[Tuple[str, int, int, int]]:
        """(name, capacity, n_positions, n_rows) of the backing segment, or
        None on the heap — exactly what a sync message ships per predicate."""
        if self._shm is None:
            return None
        return (self._shm.name, self._capacity, len(self.buffers), self.n_rows)

    def row(self, row_id: int) -> Optional[Tuple[int, ...]]:
        """The ID row at ``row_id`` as a tuple, or None if tombstoned."""
        arity = self.arities[row_id]
        if arity < 0:
            return None
        buffers = self.buffers
        return tuple(buffers[p][row_id] for p in range(arity))

    def values_at(self, row_id: int, arity: int) -> Tuple[int, ...]:
        """The first ``arity`` position values of ``row_id``, dead or alive.

        Tombstoning clears only the arity, so a caller that knows the
        original width (the tombstone log records it) can still read what a
        dead row held — the shared-memory deletion replay relies on this.
        """
        buffers = self.buffers
        return tuple(buffers[p][row_id] for p in range(arity))

    # -- writes (heap / promoted) --------------------------------------------

    def append(self, ids, gid: int = -1) -> int:
        """Append one ID row with its global ordinal; returns its row id."""
        if self._attached:
            raise RuntimeError("attached ColumnBuffer is read-only")
        arity = len(ids)
        row_id = self.n_rows
        if self._shm is None:
            buffers = self.buffers
            if len(buffers) == arity:
                # Hot path: predicates are fixed-arity in practice, so the
                # row exactly spans the existing columns — no widening, no
                # padding.
                for buffer, value in zip(buffers, ids):
                    buffer.append(value)
            else:
                while len(buffers) < arity:
                    buffers.append(array("q", [PAD]) * row_id)
                for p in range(arity):
                    buffers[p].append(ids[p])
                for p in range(arity, len(buffers)):
                    buffers[p].append(PAD)
            self.arities.append(arity)
            self.gids.append(gid)
        else:
            if row_id >= self._capacity or arity > len(self.buffers):
                self._regrow(row_id + 1, max(arity, len(self.buffers)))
            buffers = self.buffers
            self.arities[row_id] = arity
            self.gids[row_id] = gid
            for p in range(arity):
                buffers[p][row_id] = ids[p]
            for p in range(arity, len(buffers)):
                buffers[p][row_id] = PAD
        self.n_rows = row_id + 1
        return row_id

    def extend_rows(self, id_rows, gids) -> int:
        """Append many ID rows at once; returns the first row id.

        The bulk half of :meth:`append`: one ``array.extend`` per lane
        instead of per-row Python-loop appends — the difference between a
        churn rebuild paying ~µs and ~0.1µs per fact.  Heap mode only (the
        promoted in-place write path stays per-row); rows may mix arities.
        """
        if self._shm is not None or self._attached:
            first = self.n_rows
            for ids, gid in zip(id_rows, gids):
                self.append(ids, gid)
            return first
        first = self.n_rows
        n = len(id_rows)
        buffers = self.buffers
        arities = [len(ids) for ids in id_rows]
        width = max(arities, default=0)
        while len(buffers) < width:
            buffers.append(array("q", [PAD]) * first)
        self.arities.extend(arities)
        self.gids.extend(gids)
        if width == len(buffers) and arities.count(width) == n:
            # Fixed-arity fast path: every lane extends by a flat column.
            for p, buffer in enumerate(buffers):
                buffer.extend([ids[p] for ids in id_rows])
        else:
            for p, buffer in enumerate(buffers):
                buffer.extend(
                    [ids[p] if p < len(ids) else PAD for ids in id_rows]
                )
        self.n_rows = first + n
        return first

    def kill(self, row_id: int) -> Optional[Tuple[int, ...]]:
        """Tombstone ``row_id``; returns the ids it held (None if already dead).

        Only the arity flips to :data:`TOMB` — position values stay readable,
        which is what lets shared-memory workers unlink their local postings
        for a deletion the parent already applied.
        """
        arity = self.arities[row_id]
        if arity < 0:
            return None
        buffers = self.buffers
        ids = tuple(buffers[p][row_id] for p in range(arity))
        self.arities[row_id] = TOMB
        return ids

    def append_dead(self) -> int:
        """Append an already-tombstoned placeholder row (worker replicas)."""
        if self._attached:
            raise RuntimeError("attached ColumnBuffer is read-only")
        row_id = self.n_rows
        if self._shm is None:
            self.arities.append(TOMB)
            self.gids.append(-1)
            for buffer in self.buffers:
                buffer.append(PAD)
        else:
            if row_id >= self._capacity:
                self._regrow(row_id + 1, len(self.buffers))
            self.arities[row_id] = TOMB
            self.gids[row_id] = -1
            for buffer in self.buffers:
                buffer[row_id] = PAD
        self.n_rows = row_id + 1
        return row_id

    # -- shared-memory lifecycle ---------------------------------------------

    def promote(self) -> Optional[Tuple[str, int, int, int]]:
        """Move the storage into a shared-memory segment (idempotent).

        Returns :attr:`segment`, or None when shared memory is unavailable
        on this platform (the buffer then simply stays on the heap and the
        caller falls back to the pickled wire protocol).
        """
        if self._shm is not None:
            return self.segment
        if self._attached:
            raise RuntimeError("cannot promote an attached ColumnBuffer")
        try:
            from multiprocessing import shared_memory
        except ImportError:  # pragma: no cover - platform without shm
            return None
        n_positions = len(self.buffers)
        capacity = _MIN_CAPACITY
        while capacity < self.n_rows:
            capacity *= 2
        size = (2 + n_positions) * capacity * _ITEMSIZE
        try:
            shm = shared_memory.SharedMemory(
                create=True, size=size, name=_segment_name()
            )
        except Exception:  # pragma: no cover - /dev/shm unavailable or full
            return None
        views = self._views(shm, capacity, n_positions)
        n = self.n_rows
        views[0][:n] = memoryview(self.arities)[:n]
        views[1][:n] = memoryview(self.gids)[:n]
        for p, buffer in enumerate(self.buffers):
            views[2 + p][:n] = memoryview(buffer)[:n]
        self._install(shm, views, capacity)
        _PROMOTED.add(self)
        return self.segment

    def demote(self) -> None:
        """Copy the content back to the heap and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        if self._attached:
            raise RuntimeError("attached buffers detach(), they never demote()")
        n = self.n_rows
        arities = array("q", self.arities[:n].tobytes() if n else b"")
        gids = array("q", self.gids[:n].tobytes() if n else b"")
        buffers = [
            array("q", view[:n].tobytes() if n else b"") for view in self.buffers
        ]
        self._release_views()
        shm, self._shm = self._shm, None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        _close_and_unlink(shm)
        self.arities = arities
        self.gids = gids
        self.buffers = buffers
        self._capacity = 0
        _PROMOTED.discard(self)

    @classmethod
    def attach(
        cls, name: str, capacity: int, n_positions: int, n_rows: int
    ) -> "ColumnBuffer":
        """Map a parent segment read-only at the given watermark (worker side)."""
        from multiprocessing import shared_memory

        with _registration_suppressed():
            shm = shared_memory.SharedMemory(name=name)
        self = cls()
        self._attached = True
        views = self._views(shm, capacity, n_positions)
        self._shm = shm
        self._capacity = capacity
        self.arities = views[0]
        self.gids = views[1]
        self.buffers = list(views[2:])
        self.n_rows = n_rows
        return self

    def detach(self) -> None:
        """Close an attached mapping (the parent owns the unlink)."""
        if self._shm is None:
            return
        self._release_views()
        shm, self._shm = self._shm, None
        try:
            shm.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass

    def advance(self, n_rows: int) -> None:
        """Move an attached buffer's watermark forward (same segment)."""
        self.n_rows = n_rows

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _views(shm, capacity: int, n_positions: int) -> List[memoryview]:
        """Region memoryviews (arities, gids, positions...) over ``shm``."""
        region = capacity * _ITEMSIZE
        mv = shm.buf
        return [
            mv[k * region : (k + 1) * region].cast("q")
            for k in range(2 + n_positions)
        ]

    def _install(self, shm, views: List[memoryview], capacity: int) -> None:
        self._shm = shm
        self._capacity = capacity
        self.arities = views[0]
        self.gids = views[1]
        self.buffers = list(views[2:])
        if self._finalizer is not None:
            self._finalizer.detach()
        # The finalizer holds the views so it can release them *before*
        # closing the mmap (GC teardown order is arbitrary, and closing with
        # exported views raises).  The pid pins segment ownership: a fork
        # child inheriting this object must never unlink the parent's live
        # segment when its copy dies.
        self._finalizer = weakref.finalize(
            self, _teardown_segment, shm, list(views), os.getpid()
        )

    def _release_views(self) -> None:
        for view in (self.arities, self.gids, *self.buffers):
            if isinstance(view, memoryview):
                view.release()
        self.arities = array("q")
        self.gids = array("q")
        self.buffers = []

    def _regrow(self, need_rows: int, need_positions: int) -> None:
        """Replace the segment with one covering the new shape.

        The old segment is unlinked immediately; attached workers keep their
        (stale) mapping alive until they re-attach from the next sync
        message, which ships the new name and watermark.
        """
        from multiprocessing import shared_memory

        capacity = max(self._capacity, _MIN_CAPACITY)
        while capacity < need_rows:
            capacity *= 2
        size = (2 + need_positions) * capacity * _ITEMSIZE
        shm = shared_memory.SharedMemory(create=True, size=size, name=_segment_name())
        views = self._views(shm, capacity, need_positions)
        n = self.n_rows
        if n:
            views[0][:n] = self.arities[:n]
            views[1][:n] = self.gids[:n]
            for p, old in enumerate(self.buffers):
                views[2 + p][:n] = old[:n]
        for p in range(len(self.buffers), need_positions):
            view = views[2 + p]
            for row in range(n):
                view[row] = PAD
        self._release_views()
        old_shm, self._shm = self._shm, None
        _close_and_unlink(old_shm)
        self._install(shm, views, capacity)

    def __repr__(self) -> str:
        mode = "attached" if self._attached else ("shm" if self._shm else "heap")
        return (
            f"ColumnBuffer({self.n_rows} rows, {len(self.buffers)} positions, "
            f"{mode})"
        )


def _close_and_unlink(shm) -> None:
    """Best-effort close+unlink of an owned segment."""
    try:
        shm.close()
    except Exception:  # pragma: no cover - teardown best effort
        pass
    try:
        shm.unlink()
    except Exception:  # pragma: no cover - already unlinked
        pass


def _teardown_segment(shm, views: List[memoryview], owner_pid: int) -> None:
    """Finalizer for a promoted buffer that was never explicitly demoted.

    Releases the region views first (the mmap cannot close while they are
    exported, and plain GC frees them in arbitrary order relative to the
    ``SharedMemory.__del__`` that would try), then closes and unlinks.  The
    pid check keeps finalizers inherited across ``fork`` from destroying the
    parent's live segment when the child exits.
    """
    if os.getpid() != owner_pid:  # pragma: no cover - fork-child safety net
        return
    for view in views:
        try:
            view.release()
        except Exception:  # pragma: no cover - teardown best effort
            pass
    _close_and_unlink(shm)


def demote_all() -> None:
    """Demote every promoted buffer of this process back to the heap.

    Called by ``shutdown_pool`` (and therefore by term-table epoch resets
    and interpreter exit): once no worker pool exists, nothing references
    the segments, and leaving them mapped would leak ``/dev/shm`` space for
    the life of the process — or past it, had the finalizers not run.
    """
    for buffer in list(_PROMOTED):
        try:
            buffer.demote()
        except Exception:  # pragma: no cover - teardown best effort
            pass
    for segment in list(_SEALS):
        segment.release()


def promoted_stats() -> Tuple[int, int]:
    """(segment count, total mapped bytes) of this process's promoted buffers."""
    count = 0
    total = 0
    for buffer in list(_PROMOTED):
        if buffer.shared:
            count += 1
            total += (2 + len(buffer.buffers)) * buffer._capacity * _ITEMSIZE
    return count, total
