"""Hash-partitioned shards of an instance, and the sharded batch runner.

The parallel executor (:mod:`repro.engine.parallel`) splits the work of one
join — *"match this plan against the current instance"* — by partitioning the
**step-0 candidates** across worker processes: worker ``s`` extends only the
candidates whose fact hashes to shard ``s``, joining the remaining body atoms
against its full replica of the instance.  This module provides the two
halves of that scheme:

* :class:`ShardedInstance` — a hash-partitioned mirror of an
  :class:`~repro.datalog.database.Instance`: facts are routed to one of
  ``n_shards`` :class:`~repro.engine.index.PredicateIndex` shards by
  :func:`shard_of` (a stable CRC-32 over the predicate and the first term),
  and every shard row carries the fact's **global insertion ordinal** (its
  *gid*) in a side array aligned with the shard's row list.  A worker holds
  only its own shard (``keep=s``); tests can hold all of them.
* :func:`run_batch_sharded` — ``JoinPlan.run_batch`` restricted to one
  shard's step-0 candidates, returning ``(gids, rows)`` where ``gids[i]`` is
  the ordinal of the candidate that seeded ``rows[i]``.  Steps past the
  first run the ordinary column-at-a-time machinery
  (:meth:`~repro.engine.batch._BatchStep.apply_tracked`) against the full
  replica, so per-shard output order is exactly batch order restricted to
  that shard.

**The deterministic merge contract.**  Within one shard, gids ascend (shard
rows are appended in global insertion order, so shard-local row ids ascend
with ordinals), and a candidate's extensions stay contiguous in depth-first
order.  Across shards, every step-0 candidate lives in exactly one shard.
Merging the per-shard streams by gid (:func:`merge_sharded`) therefore
reconstructs the *exact* match order of the single-process batch executor —
which is itself the depth-first order of the row executor — so results,
invented-null sequences, and the mode-independent counters are byte-identical
across ``row``, ``batch``, and ``parallel`` modes.

Shard assignment keys on the predicate plus the **first** term because the
first position is the most common bound term of pivot atoms (transitive
closures, property chains), which spreads hot delta predicates across shards
even when a single predicate dominates a round.  The hash is CRC-32 over a
stable encoding — never the process-seeded built-in ``hash`` — so shard
layouts are reproducible across runs and machines.
"""

from __future__ import annotations

from bisect import bisect_left
from heapq import merge as _heap_merge
from typing import Dict, List, Optional, Sequence, Tuple
from zlib import crc32

from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant, Null
from repro.engine.index import PredicateIndex
from repro.engine.interning import TERMS
from repro.engine.stats import STATS

SlotRow = Tuple


def shard_of(atom: Atom, n_shards: int) -> int:
    """The shard owning ``atom``: stable hash of (predicate, first term).

    Nulls and constants with the same spelling must not collide into the
    same key, hence the type tag; variables never occur in facts.
    """
    h = crc32(atom.predicate.encode("utf-8"))
    if atom.terms:
        term = atom.terms[0]
        if isinstance(term, Constant):
            payload = "c:" + term.value
        elif isinstance(term, Null):
            payload = "n:" + term.label
        else:  # pragma: no cover - facts carry no variables
            payload = "v:" + str(term)
        h = crc32(payload.encode("utf-8"), h)
    return h % n_shards


def shard_of_encoded(predicate: str, ids: Tuple[int, ...], n_shards: int) -> int:
    """:func:`shard_of` for a dictionary-encoded fact ``(predicate, ID row)``.

    Worker replicas ingest facts as flat int rows (no Atom is ever built);
    the routing key is still the **string** spelling of the first term —
    decoded once from the term table — because term IDs are process-history
    dependent while shard layouts must be reproducible across runs and
    machines (``tests/test_engine_shard_parity.py`` pins this).
    """
    h = crc32(predicate.encode("utf-8"))
    if ids:
        tid = ids[0]
        term = TERMS.term(tid)
        payload = ("n:" + term.label) if tid & 1 else ("c:" + term.value)
        h = crc32(payload.encode("utf-8"), h)
    return h % n_shards


class Shard:
    """One hash partition: a :class:`PredicateIndex` plus per-row ordinals.

    ``gids[predicate][row_id]`` is the global insertion ordinal of
    ``index.rows[predicate][row_id]``; both lists are append-only and
    parallel, and gids ascend within a predicate because ingestion follows
    global insertion order.
    """

    __slots__ = ("index", "gids")

    def __init__(self) -> None:
        self.index = PredicateIndex()
        self.gids: Dict[str, List[int]] = {}

    def add(self, atom: Atom, gid: int) -> None:
        """Append one fact with its global insertion ordinal."""
        self.index.add(atom, gid)
        bucket = self.gids.get(atom.predicate)
        if bucket is None:
            self.gids[atom.predicate] = [gid]
        else:
            bucket.append(gid)

    def add_encoded(self, predicate: str, ids: Tuple[int, ...], gid: int) -> None:
        """Append one dictionary-encoded fact (worker ingest; no Atom built)."""
        self.index.add_encoded(predicate, ids, gid)
        bucket = self.gids.get(predicate)
        if bucket is None:
            self.gids[predicate] = [gid]
        else:
            bucket.append(gid)

    def tombstone_gid(self, predicate: str, gid: int) -> None:
        """Replay a parent deletion addressed by global ordinal.

        The gid list is the shard's only parent-aligned coordinate (shard
        row ids are local), so deletions are located by binary search; a
        miss means the fact hashed to another worker's shard — or was
        appended and deleted within one sync window and never ingested —
        and there is nothing to do.  The gid entry itself stays (rows are
        never renumbered), exactly like postings over tombstones.
        """
        bucket = self.gids.get(predicate)
        if not bucket:
            return
        row_id = bisect_left(bucket, gid)
        if row_id < len(bucket) and bucket[row_id] == gid:
            self.index.tombstone_row(predicate, row_id)


class ShardedInstance:
    """A hash-partitioned mirror of an instance's fact rows.

    ``keep=s`` stores only shard ``s`` (the worker configuration: routing is
    still computed for every fact, but foreign facts are dropped);
    ``keep=None`` stores all shards (tests, and the in-process merge parity
    checks).  Facts must be ingested in global insertion order with their
    ordinals — :meth:`ingest` trusts the caller on both.
    """

    __slots__ = ("n_shards", "keep", "shards")

    def __init__(self, n_shards: int, keep: Optional[int] = None):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if keep is not None and not 0 <= keep < n_shards:
            raise ValueError(f"keep must be in [0, {n_shards}), got {keep}")
        self.n_shards = n_shards
        self.keep = keep
        self.shards: List[Optional[Shard]] = [
            Shard() if keep is None or s == keep else None for s in range(n_shards)
        ]

    def ingest(self, atom: Atom, gid: int) -> int:
        """Route one fact; returns the shard id it belongs to."""
        s = shard_of(atom, self.n_shards)
        shard = self.shards[s]
        if shard is not None:
            shard.add(atom, gid)
        return s

    def ingest_encoded(self, predicate: str, ids: Tuple[int, ...], gid: int) -> int:
        """Route one encoded fact (the worker replica path); returns its shard."""
        s = shard_of_encoded(predicate, ids, self.n_shards)
        shard = self.shards[s]
        if shard is not None:
            shard.add_encoded(predicate, ids, gid)
        return s

    def shard(self, s: int) -> Shard:
        """The shard owned by worker ``s`` (only the kept one, if narrowed)."""
        shard = self.shards[s]
        if shard is None:
            raise ValueError(f"shard {s} is not kept by this ShardedInstance")
        return shard

    @classmethod
    def mirror(cls, instance, n_shards: int) -> "ShardedInstance":
        """Shard every current fact of ``instance`` (test/diagnostic helper)."""
        sharded = cls(n_shards)
        ordinals = instance._ordinals
        for atom in ordinals:
            sharded.ingest(atom, ordinals[atom])
        return sharded

    def __repr__(self) -> str:
        sizes = [
            sum(shard.index.live.values()) if shard is not None else None
            for shard in self.shards
        ]
        return f"ShardedInstance(n_shards={self.n_shards}, sizes={sizes})"


def _batch_steps(plan):
    """The (lazily built, plan-cached) batch steps of a compiled plan."""
    batch = plan.batch_plan
    if batch is None:
        from repro.engine.batch import BatchPlan

        batch = plan.batch_plan = BatchPlan(plan)
    return batch.steps


def run_batch_sharded(
    plan,
    shard: Shard,
    source,
    gid_lo: int = 0,
    gid_hi: Optional[int] = None,
) -> Tuple[List[int], List[SlotRow]]:
    """Matches of ``plan`` whose step-0 candidate lies in ``shard``.

    ``source`` is the full instance (or a replica in lockstep with it) that
    the remaining steps join against.  ``[gid_lo, gid_hi)`` restricts step-0
    candidates by global ordinal — the delta window of a semi-naive round;
    the defaults select every shard row (the naive/full join, where the
    window is implicitly capped by the shard's current contents, which the
    caller guarantees mirror the instance state being matched).

    Returns ``(gids, rows)``: full slot tuples in batch order restricted to
    this shard, each tagged with its step-0 candidate's ordinal.  Plans with
    prebound slots or empty bodies are not shardable (no step-0 candidate
    stream to partition) and must be run by the caller directly.
    """
    steps = _batch_steps(plan)
    if not steps:
        raise ValueError("cannot shard a plan with an empty body")
    step0 = steps[0]
    if step0.slot_probes:
        raise ValueError("cannot shard a plan whose first step probes bound slots")
    cols = shard.index.cols.get(step0.predicate)
    if not cols:
        return [], []
    gids_list = shard.gids[step0.predicate]
    cap = len(cols) if gid_hi is None else bisect_left(gids_list, gid_hi)
    if cap <= 0:
        return [], []
    candidate_ids = shard.index.probe_ids(step0.predicate, step0.const_pairs, cap)
    STATS.batch_probe_groups += 1
    arity = step0.arity
    bind_positions = step0.bind_positions
    intra_pairs = step0.intra_pairs
    arities = cols.arities
    buffers = cols.buffers
    gids: List[int] = []
    rows: List[SlotRow] = []
    for row_id in candidate_ids:
        gid = gids_list[row_id]
        if gid < gid_lo:
            continue
        if arities[row_id] != arity:
            continue
        for position, bound_position in intra_pairs:
            if buffers[position][row_id] != buffers[bound_position][row_id]:
                break
        else:
            gids.append(gid)
            rows.append(tuple(buffers[position][row_id] for position in bind_positions))
    index, limits = source._plan_source()
    for step in steps[1:]:
        if not rows:
            break
        gids, rows = step.apply_tracked(index, limits, gids, rows)
    return gids, rows


def merge_sharded(
    parts: Sequence[Tuple[List[int], List[SlotRow]]],
) -> List[SlotRow]:
    """Merge per-shard ``(gids, rows)`` streams back into batch order.

    Each stream is ascending in gid and gids never repeat across shards (a
    candidate lives in exactly one shard), so a k-way merge on the gid is a
    total, deterministic order — the single-process match order.
    """
    live = [part for part in parts if part[0]]
    if not live:
        return []
    if len(live) == 1:
        return live[0][1]
    return [
        row
        for _, row in _heap_merge(
            *(zip(gids, rows) for gids, rows in live), key=lambda item: item[0]
        )
    ]
