"""Incremental streaming-delta evaluation: the :class:`DeltaSession` API.

Every engine in this library is batch-oriented: hand it a database, get a
fixpoint back.  Under a streaming workload — facts trickling in from a feed,
a growing ontology, a social graph gaining edges — that model recomputes the
whole materialisation per arrival, which is exactly the waste semi-naive
evaluation exists to avoid *within* a run.  This module extends the same
delta discipline *across* runs:

* A :class:`DeltaSession` materialises an initial database once (the cold
  fixpoint the engines already compute), then accepts batches of new EDB
  facts via :meth:`DeltaSession.push`.  Each push appends the batch to the
  live :class:`~repro.datalog.database.Instance` (the in-place machinery
  behind ``ChaseEngine.chase(..., reuse_instance=True)``) and resumes
  evaluation **from the delta only**: the precompiled semi-naive pivot plans
  of :class:`~repro.engine.plan.CompiledRule` enumerate exactly the matches
  that read at least one new fact, so unchanged derivations are never
  revisited.
* **Stratified negation** is handled by stratum arithmetic.  New EDB facts
  of stratum ``s`` cannot change any stratum below ``s``, and *within* a
  stratum evaluation is monotone (negated predicates live strictly below),
  so strata up to the first one that negates a predicate of stratum ``>= s``
  are *continued* from the delta.  From that stratum upward the negation
  references have grown — previously derived facts may no longer be
  derivable — so those strata (and only those) are **re-run**: their derived
  facts are dropped, the kept lower prefix plus the accumulated EDB is
  reloaded, and the strata are evaluated cold, exactly as
  :class:`~repro.datalog.semantics.StratifiedSemantics` would.
* **Null stability.**  For programs with existential rules the session runs
  the restricted chase with *content-addressed* null labels
  (``ChaseEngine(deterministic_nulls=True)``): an invented null is named by
  a digest of (rule, frontier binding, existential variable), so a stratum
  re-run re-derives byte-identical facts for every unchanged derivation and
  a continuation invents the same nulls a cold run over the grown database
  invents for the same triggers.  The differential suite in
  ``tests/test_engine_incremental_parity.py`` pins the resulting parity
  contract: existential-free sessions are **byte-identical** (sorted facts)
  to a cold evaluation of the accumulated EDB in all three execution modes;
  chase sessions agree byte-identically whenever the cold run fires the same
  triggers, and always agree on the ground fact set and on query answers
  (both results are universal models of the same database and program).
* **Execution modes.**  Continuations run through the same row, batch, and
  sharded-parallel executors as cold runs (:mod:`repro.engine.mode`).  In
  parallel mode the session owns one
  :class:`~repro.engine.parallel.ParallelSession` spanning all pushes: each
  delta round's dispatch re-arms the worker replicas by shipping only the
  facts appended since the last sync, so a long-lived stream pays the
  replica cost once, not once per batch.  Every per-stratum delta is a
  contiguous ordinal window of the live instance, which is precisely the
  shape the parallel executor's delta dispatch requires.

Deletions are out of scope: the instance is append-only (the replica and
snapshot contracts rely on it), so the session accepts *insertions* only —
the right model for the monotone feeds the benchmarks simulate
(``benchmarks/bench_scale_streaming.py``; generators in
:mod:`repro.workloads.streams`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.datalog.atoms import Atom
from repro.datalog.chase import ChaseEngine, ChaseState, match_atoms
from repro.datalog.database import Instance
from repro.datalog.program import Program
from repro.datalog.semantics import INCONSISTENT, SemanticsResult
from repro.datalog.seminaive import SemiNaiveEvaluator
from repro.datalog.stratification import partition_by_stratum, stratify
from repro.datalog.terms import Term
from repro.engine.parallel import maybe_session
from repro.engine.plan import compile_rule


@dataclass
class PushResult:
    """What one :meth:`DeltaSession.push` did.

    ``derived`` is the net change in materialised facts beyond the new EDB
    facts themselves; it can be negative when a stratum re-run withdraws
    facts that stratified negation no longer supports.  ``rebuilt_from`` is
    the lowest stratum that was re-run from scratch (``None`` for a pure
    continuation), ``rounds`` counts the continuation delta rounds, and
    ``consistent`` reports the program's constraints against the new
    materialisation (always ``True`` for constraint-free programs).

    ``completed`` is ``False`` when a bounded chase engine configured with
    ``on_limit='stop'`` hit a resource limit during this session (the
    ``limit_reason`` says which): the materialisation is then an
    under-approximation of the stratified semantics and stays flagged on
    every later push — callers that supply budgets must check it.
    (With the default ``on_limit='raise'`` the limit surfaces as a
    :class:`~repro.datalog.chase.ChaseNonTermination` instead.)
    """

    batch_size: int
    new_edb: int
    derived: int
    affected_stratum: int
    rebuilt_from: Optional[int]
    rounds: int
    consistent: bool
    completed: bool = True
    limit_reason: Optional[str] = None


class DeltaSession:
    """Incremental evaluation of a stratified program over a growing database.

    Usage::

        session = DeltaSession(program, initial_database)
        session.push(batch_of_new_facts)       # resumes from the delta
        answers = session.query("connected")   # ground tuples, any time
        session.close()

    ``program`` is a :class:`~repro.datalog.program.Program` (or rule text,
    parsed with :func:`~repro.datalog.parser.parse_program`); facts may be
    :class:`~repro.datalog.atoms.Atom` objects, RDF
    :class:`~repro.rdf.graph.Triple` objects, or plain ``(s, p, o)`` string
    triples.  ``engine`` selects the evaluator: ``"seminaive"`` (plain
    Datalog¬s), ``"chase"`` (existential rules via the restricted chase), or
    ``"auto"`` (chase iff the program has existentials).  A custom
    ``chase_engine`` may supply resource bounds; it must be a *restricted*
    chase.  Step budgets apply per push (each batch gets a fresh
    ``max_steps`` allowance — a long-lived stream is never starved by its
    own history), while ``ChaseState.steps`` reports the lifetime total.

    The session may be used as a context manager; :meth:`close` releases the
    parallel worker replicas (no-op outside parallel mode).
    """

    def __init__(
        self,
        program,
        database: Iterable = (),
        *,
        engine: str = "auto",
        chase_engine: Optional[ChaseEngine] = None,
    ):
        """Materialise ``database`` under ``program`` and arm the session."""
        if isinstance(program, str):
            from repro.datalog.parser import parse_program

            program = parse_program(program)
        if engine not in ("auto", "seminaive", "chase"):
            raise ValueError(
                f"engine must be 'auto', 'seminaive' or 'chase', got {engine!r}"
            )
        self.program: Program = program
        self._uses_chase = engine == "chase" or (
            engine == "auto"
            and (program.has_existentials or chase_engine is not None)
        )
        if self._uses_chase:
            self.chase_engine = chase_engine or ChaseEngine(deterministic_nulls=True)
            if not self.chase_engine.restricted:
                raise ValueError(
                    "DeltaSession requires the restricted chase (the oblivious "
                    "chase cannot skip already-fired triggers on resumption)"
                )
            self._evaluator = None
            self.stratification = stratify(program.ex())
            self.strata = partition_by_stratum(program.ex(), self.stratification)
            self.compiled_strata = [
                [compile_rule(rule) for rule in stratum] for stratum in self.strata
            ]
            self._chase_state = ChaseState()
        else:
            if chase_engine is not None:
                raise ValueError("chase_engine is only meaningful with engine='chase'")
            self.chase_engine = None
            self._evaluator = SemiNaiveEvaluator(program)
            self.stratification = self._evaluator.stratification
            self.strata = self._evaluator.strata
            self.compiled_strata = self._evaluator.compiled_strata
            self._chase_state = None
        self.n_strata = len(self.strata)
        self._stratum_programs = [Program(rules) for rules in self.strata]
        self._all_compiled = [
            crule for stratum in self.compiled_strata for crule in stratum
        ]
        #: Negated predicates per stratum — the stratum-re-run trigger.
        self._neg_preds: List[Set[str]] = [
            {atom.predicate for rule in stratum for atom in rule.body_negative}
            for stratum in self.strata
        ]
        #: predicate -> head predicates of rules reading it (any polarity);
        #: the static "may change" reachability used to scope stratum re-runs.
        self._dependents: Dict[str, Set[str]] = {}
        for stratum in self.strata:
            for rule in stratum:
                for atom in (*rule.body_positive, *rule.body_negative):
                    targets = self._dependents.setdefault(atom.predicate, set())
                    for head in rule.head:
                        targets.add(head.predicate)
        #: The accumulated EDB in arrival order (insertion-ordered set).
        self._edb: Dict[Atom, None] = {}
        self.instance = Instance()
        for fact in (self._as_fact(value) for value in database):
            self._edb[fact] = None
            self.instance.add_fact(fact)
        self._closed = False
        self._session = maybe_session(self.instance, self._all_compiled)
        self.pushes = 0
        #: False once a stop-mode chase engine hit a resource limit: the
        #: materialisation is an under-approximation from then on.
        self.completed = True
        self.limit_reason: Optional[str] = None
        self._materialise_from(0)

    # -- streaming API -------------------------------------------------------

    def push(self, facts: Iterable) -> PushResult:
        """Feed one batch of new EDB facts and resume evaluation.

        Facts already present (as EDB or as derived facts) are recorded in
        the EDB but seed no work.  The evaluation resumed is exactly the
        stratified semantics of the accumulated database: strata below the
        batch's lowest stratum are untouched, monotone strata are continued
        from the delta, and strata whose negation references changed are
        re-run (see the module docstring for the argument).
        """
        if self._closed:
            raise RuntimeError("DeltaSession is closed")
        batch = [self._as_fact(value) for value in facts]
        for fact in batch:
            self._edb[fact] = None
        size_before = len(self.instance)
        mark = self.instance._counter
        mark_limits = self.instance._index.row_limits()
        added: List[Atom] = []
        for fact in batch:
            if self.instance.add_fact(fact):
                added.append(fact)
        self.pushes += 1
        if not added:
            return PushResult(
                len(batch),
                0,
                0,
                -1,
                None,
                0,
                self._check_consistent(),
                self.completed,
                self.limit_reason,
            )
        affected = min(
            self.stratification.get(fact.predicate, 0) for fact in added
        )
        rebuild_from = self._rebuild_point(affected, added)
        stop = rebuild_from if rebuild_from is not None else self.n_strata
        rounds = 0
        for stratum in range(affected, stop):
            if not self.compiled_strata[stratum]:
                continue
            delta = self._window_delta(mark, mark_limits)
            reference = self.instance.snapshot()
            rounds += self._continue_stratum(stratum, delta, reference)
        if rebuild_from is not None:
            self._rebuild(rebuild_from)
        return PushResult(
            batch_size=len(batch),
            new_edb=len(added),
            derived=len(self.instance) - size_before - len(added),
            affected_stratum=affected,
            rebuilt_from=rebuild_from,
            rounds=rounds,
            consistent=self._check_consistent(),
            completed=self.completed,
            limit_reason=self.limit_reason,
        )

    def query(self, predicate: str) -> FrozenSet[Tuple[Term, ...]]:
        """The ground answer tuples over ``predicate`` — the paper's ``Q(D)``."""
        return frozenset(
            tuple(atom.terms)
            for atom in self.instance.with_predicate(predicate)
            if atom.is_ground
        )

    def facts(self, predicate: str) -> FrozenSet[Atom]:
        """All materialised facts over ``predicate`` (including nulls)."""
        return self.instance.with_predicate(predicate)

    def result(self) -> SemanticsResult:
        """``Pi(D)`` for the accumulated database: the instance, or ⊤."""
        if not self._check_consistent():
            return INCONSISTENT
        return self.instance

    def check_consistency(self) -> bool:
        """True iff no constraint body embeds into the materialisation."""
        for constraint in self.program.constraints:
            if next(match_atoms(constraint.body, self.instance), None) is not None:
                return False
        return True

    def close(self) -> None:
        """Release the parallel worker replicas; the session becomes read-only."""
        if self._session is not None:
            self._session.close()
            self._session = None
        self._closed = True

    def __enter__(self) -> "DeltaSession":
        """Context-manager entry (returns the session itself)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    def __len__(self) -> int:
        """Number of materialised facts."""
        return len(self.instance)

    def __contains__(self, atom: Atom) -> bool:
        """Membership test against the materialisation."""
        return atom in self.instance

    # -- internals -----------------------------------------------------------

    def _materialise_from(self, first: int) -> None:
        """Evaluate strata ``first..top`` cold on the current instance."""
        for stratum in range(first, self.n_strata):
            compiled = self.compiled_strata[stratum]
            if not compiled:
                continue
            reference = self.instance.snapshot()
            if self._uses_chase:
                result = self.chase_engine.chase(
                    self.instance,
                    self._stratum_programs[stratum],
                    negation_reference=reference,
                    reuse_instance=True,
                    session=self._session,
                    state=self._chase_state,
                )
                self._note_chase_outcome(result)
            else:
                self._evaluator._evaluate_stratum(
                    compiled, self.instance, reference, self._session
                )

    def _continue_stratum(self, stratum: int, delta: Instance, reference) -> int:
        """Resume one stratum's fixpoint from ``delta``; returns round count."""
        if self._uses_chase:
            result = self.chase_engine.resume(
                self.instance,
                self._stratum_programs[stratum],
                delta,
                reference,
                state=self._chase_state,
                session=self._session,
            )
            self._note_chase_outcome(result)
            return result.delta_rounds
        return self._evaluator.resume_stratum(
            stratum, self.instance, delta, reference, self._session
        )

    def _note_chase_outcome(self, result) -> None:
        """Record a stop-mode resource truncation (raise mode raised already)."""
        if not result.completed:
            self.completed = False
            if self.limit_reason is None:
                self.limit_reason = result.limit_reason

    def _rebuild_point(self, affected: int, added: Sequence[Atom]) -> Optional[int]:
        """Lowest stratum above ``affected`` that must be re-run, or None.

        A stratum must be re-run iff it negates a predicate whose fact set
        can have changed.  "Can have changed" is the static upward closure of
        the pushed predicates in the dependency graph (a predicate only gains
        or loses facts if some rule reading a changed predicate — positively
        or through negation — derives it); everything below the first such
        stratum is monotone in the new facts and is continued instead.
        """
        changed: Set[str] = {fact.predicate for fact in added}
        queue = list(changed)
        while queue:
            predicate = queue.pop()
            for dependent in self._dependents.get(predicate, ()):
                if dependent not in changed:
                    changed.add(dependent)
                    queue.append(dependent)
        for stratum in range(affected + 1, self.n_strata):
            if self._neg_preds[stratum] & changed:
                return stratum
        return None

    def _rebuild(self, first: int) -> None:
        """Re-run strata ``first..top``: drop their derivations, evaluate cold.

        The new instance keeps every fact of the strata below ``first`` (in
        their original insertion order — ordinals of surviving facts are
        stable relative to each other) plus the accumulated EDB facts of the
        re-run strata, then the strata are materialised exactly as an
        initial run would.  With deterministic nulls the unchanged
        derivations of the re-run strata come back byte-identical.
        """
        stratum_of = self.stratification
        kept = [
            atom
            for atom in self.instance
            if stratum_of.get(atom.predicate, 0) < first
        ]
        extras = [
            fact
            for fact in self._edb
            if stratum_of.get(fact.predicate, 0) >= first
        ]
        if self._session is not None:
            self._session.close()
            self._session = None
        instance = Instance()
        instance.bulk_load(kept)
        instance.bulk_load(extras)
        self.instance = instance
        self._session = maybe_session(self.instance, self._all_compiled)
        self._materialise_from(first)

    def _window_delta(self, mark: int, mark_limits: Dict[str, int]) -> Instance:
        """The facts appended since ordinal ``mark``, as a delta instance.

        ``mark_limits`` holds the per-predicate row counts captured at
        ``mark``, so the window is collected from the index's row suffixes in
        O(delta) — not by skipping ``mark`` entries of the ordinal map, which
        would make every push pay for the whole accumulated history.  The
        session's instance is append-only, so insertion position equals
        ordinal and the re-sorted window is a contiguous, ascending ordinal
        range — the exact shape
        :class:`~repro.engine.parallel.ParallelSession` accepts for
        distributed delta dispatch.
        """
        delta = Instance()
        if self.instance._counter > mark:
            fresh: List[Atom] = []
            for predicate, rows in self.instance._index.rows.items():
                start = mark_limits.get(predicate, 0)
                if start < len(rows):
                    fresh.extend(fact for fact in rows[start:] if fact is not None)
            fresh.sort(key=self.instance._ordinals.__getitem__)
            for atom in fresh:
                delta.add_fact(atom)
        return delta

    def _check_consistent(self) -> bool:
        """Constraint check, skipped entirely for constraint-free programs."""
        if not self.program.constraints:
            return True
        return self.check_consistency()

    @staticmethod
    def _as_fact(value) -> Atom:
        """Normalise an input fact: Atom, Triple, or ``(s, p, o)`` strings."""
        if isinstance(value, Atom):
            atom = value
        elif hasattr(value, "to_atom"):
            atom = value.to_atom()
        elif isinstance(value, tuple) and len(value) == 3:
            from repro.rdf.graph import triple_atom

            atom = triple_atom(*value)
        else:
            raise TypeError(
                "streamed facts must be Atoms, Triples, or (s, p, o) tuples; "
                f"got {value!r}"
            )
        if not atom.is_ground:
            raise ValueError(
                f"streamed facts must be ground over constants; got {atom}"
            )
        return atom


def cold_equivalent(
    session_or_program,
    database: Iterable = (),
    *,
    engine: str = "auto",
    chase_engine: Optional[ChaseEngine] = None,
) -> SemanticsResult:
    """The cold (from-scratch) evaluation a :class:`DeltaSession` must match.

    Given a session, re-evaluates its program over its *accumulated* EDB with
    the same engine selection in one batch run — the reference side of the
    incremental parity contract, used by the differential suite and by the
    streaming benchmarks' recompute baseline.  Given a program (plus a
    database), behaves like :func:`~repro.datalog.semantics.evaluate_program`
    / :meth:`~repro.datalog.seminaive.SemiNaiveEvaluator.evaluate` under the
    same selection rules as :class:`DeltaSession`.
    """
    if isinstance(session_or_program, DeltaSession):
        session = session_or_program
        return cold_equivalent(
            session.program,
            list(session._edb),
            engine="chase" if session._uses_chase else "seminaive",
            chase_engine=session.chase_engine,
        )
    program = session_or_program
    if isinstance(program, str):
        from repro.datalog.parser import parse_program

        program = parse_program(program)
    uses_chase = engine == "chase" or (
        engine == "auto" and (program.has_existentials or chase_engine is not None)
    )
    if uses_chase:
        from repro.datalog.semantics import StratifiedSemantics

        chase = chase_engine or ChaseEngine(deterministic_nulls=True)
        return StratifiedSemantics(program, chase).materialise(database)
    evaluator = SemiNaiveEvaluator(program)
    instance = evaluator.evaluate(database)
    if evaluator.violated_constraints(instance):
        return INCONSISTENT
    return instance
