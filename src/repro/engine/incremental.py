"""Incremental streaming-delta evaluation: the :class:`DeltaSession` API.

Every engine in this library is batch-oriented: hand it a database, get a
fixpoint back.  Under a streaming workload — facts trickling in from a feed,
a growing ontology, a social graph gaining edges — that model recomputes the
whole materialisation per arrival, which is exactly the waste semi-naive
evaluation exists to avoid *within* a run.  This module extends the same
delta discipline *across* runs:

* A :class:`DeltaSession` materialises an initial database once (the cold
  fixpoint the engines already compute), then accepts batches of new EDB
  facts via :meth:`DeltaSession.push`.  Each push appends the batch to the
  live :class:`~repro.datalog.database.Instance` (the in-place machinery
  behind ``ChaseEngine.chase(..., reuse_instance=True)``) and resumes
  evaluation **from the delta only**: the precompiled semi-naive pivot plans
  of :class:`~repro.engine.plan.CompiledRule` enumerate exactly the matches
  that read at least one new fact, so unchanged derivations are never
  revisited.
* **Stratified negation** is handled by stratum arithmetic.  New EDB facts
  of stratum ``s`` cannot change any stratum below ``s``, and *within* a
  stratum evaluation is monotone (negated predicates live strictly below),
  so strata up to the first one that negates a predicate of stratum ``>= s``
  are *continued* from the delta.  From that stratum upward the negation
  references have grown — previously derived facts may no longer be
  derivable — so those strata (and only those) are **re-run**: their derived
  facts are dropped, the kept lower prefix plus the accumulated EDB is
  reloaded, and the strata are evaluated cold, exactly as
  :class:`~repro.datalog.semantics.StratifiedSemantics` would.
* **Null stability.**  For programs with existential rules the session runs
  the restricted chase with *content-addressed* null labels
  (``ChaseEngine(deterministic_nulls=True)``): an invented null is named by
  a digest of (rule, frontier binding, existential variable), so a stratum
  re-run re-derives byte-identical facts for every unchanged derivation and
  a continuation invents the same nulls a cold run over the grown database
  invents for the same triggers.  The differential suite in
  ``tests/test_engine_incremental_parity.py`` pins the resulting parity
  contract: existential-free sessions are **byte-identical** (sorted facts)
  to a cold evaluation of the accumulated EDB in all three execution modes;
  chase sessions agree byte-identically whenever the cold run fires the same
  triggers, and always agree on the ground fact set and on query answers
  (both results are universal models of the same database and program).
* **Execution modes.**  Continuations run through the same row, batch, and
  sharded-parallel executors as cold runs (:mod:`repro.engine.mode`).  In
  parallel mode the session owns one
  :class:`~repro.engine.parallel.ParallelSession` spanning all pushes: each
  delta round's dispatch re-arms the worker replicas by shipping only the
  facts appended since the last sync, so a long-lived stream pays the
  replica cost once, not once per batch.  Every per-stratum delta is a
  contiguous ordinal window of the live instance, which is precisely the
  shape the parallel executor's delta dispatch requires.

* **Deletions** go through :meth:`DeltaSession.retract`, a DRed
  (delete-and-rederive, Gupta–Mumick–Subrahmanian) maintenance pass:

  1. **Over-delete.**  On the pre-deletion instance, the downward closure of
     the retracted EDB facts is *marked* per stratum ascending — every fact
     some rule match derives from at least one marked fact, enumerated with
     the same pivot plans (and the same executors) the insertion path uses.
     For existential rules the invented null of a candidate trigger is
     reconstructed from its content-addressed label; a label the term table
     has never seen proves the trigger never fired, so nothing downstream of
     it is marked.  Marking is a superset of what must go (a marked fact may
     have other support) — DRed's classic over-estimate.
  2. **Delete.**  The marked set is tombstoned in place
     (:meth:`~repro.engine.index.PredicateIndex.tombstone`): surviving rows
     are never renumbered, postings stay sound (probes skip tombstones), and
     each deletion is logged for the parallel replicas' wire protocol.
  3. **Re-derive.**  Per stratum ascending: retracted-but-still-accumulated
     EDB facts come back verbatim; every other marked fact is re-checked
     *goal-directedly* (unify the rule heads with the deleted fact, search
     the surviving instance for an alternative body match); restorations
     then propagate through the ordinary delta rounds.  For the chase, the
     goal-directed pass also re-fires triggers whose head *witness* was
     deleted — the restricted-chase fixpoint invariant ("every trigger's
     head is satisfied") is re-established with the same digest-named nulls
     a cold run would invent.
  4. **Re-check.**  Strata whose negation references may have shrunk are
     re-run from scratch (the same static dependency closure
     :meth:`push` uses), constraints whose body predicates intersect the
     changed closure are re-evaluated (verdicts for untouched constraints
     are served from a cache), and invented nulls no longer referenced by
     any surviving fact are garbage-collected from the chase's depth
     bookkeeping (the odd-ID reachability scan; the dictionary entry itself
     is reclaimed at the next term-table epoch).

  The parity oracle is the same as for pushes: after any interleaving of
  pushes and retractions, an existential-free session is byte-identical to a
  cold evaluation of the *surviving* EDB in all three execution modes
  (``tests/test_engine_retract_parity.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.datalog.atoms import Atom, unify_with_fact
from repro.datalog.chase import ChaseEngine, ChaseState, _rule_signature, match_atoms
from repro.datalog.database import Instance
from repro.datalog.program import Program
from repro.datalog.semantics import INCONSISTENT, SemanticsResult
from repro.datalog.seminaive import SemiNaiveEvaluator
from repro.datalog.stratification import partition_by_stratum, stratify
from repro.datalog.terms import Term
from repro.engine.index import _COMPACT_MIN_ROWS, compact_ratio
from repro.engine.interning import TERMS
from repro.engine.mode import batch_enabled
from repro.engine.parallel import maybe_session
from repro.engine.plan import compile_rule
from repro.engine.stats import STATS
from repro.obs.trace import TRACER


@dataclass
class PushResult:
    """What one :meth:`DeltaSession.push` did.

    ``derived`` is the net change in materialised facts beyond the new EDB
    facts themselves; it can be negative when a stratum re-run withdraws
    facts that stratified negation no longer supports.  ``rebuilt_from`` is
    the lowest stratum that was re-run from scratch (``None`` for a pure
    continuation), ``rounds`` counts the continuation delta rounds, and
    ``consistent`` reports the program's constraints against the new
    materialisation (always ``True`` for constraint-free programs).

    ``completed`` is ``False`` when a bounded chase engine configured with
    ``on_limit='stop'`` hit a resource limit during this session (the
    ``limit_reason`` says which): the materialisation is then an
    under-approximation of the stratified semantics and stays flagged on
    every later push — callers that supply budgets must check it.
    (With the default ``on_limit='raise'`` the limit surfaces as a
    :class:`~repro.datalog.chase.ChaseNonTermination` instead.)
    """

    batch_size: int
    new_edb: int
    derived: int
    affected_stratum: int
    rebuilt_from: Optional[int]
    rounds: int
    consistent: bool
    completed: bool = True
    limit_reason: Optional[str] = None


@dataclass
class RetractResult:
    """What one :meth:`DeltaSession.retract` did.

    ``removed_edb`` counts batch facts actually dropped from the accumulated
    EDB; ``overdeleted`` is the size of the marked downward closure that was
    physically tombstoned (the retracted facts themselves included);
    ``rederived`` counts the marked facts the re-derivation phase restored
    from alternative support; ``nulls_collected`` counts invented nulls
    garbage-collected because no surviving fact references them.
    ``affected_stratum`` / ``rebuilt_from`` / ``rounds`` / ``consistent`` /
    ``completed`` / ``limit_reason`` mirror :class:`PushResult` (a stratum
    re-run or the re-derivation rounds can hit the same chase budgets).
    """

    batch_size: int
    removed_edb: int
    overdeleted: int
    rederived: int
    nulls_collected: int
    affected_stratum: int
    rebuilt_from: Optional[int]
    rounds: int
    consistent: bool
    completed: bool = True
    limit_reason: Optional[str] = None


class DeltaSession:
    """Incremental evaluation of a stratified program over a growing database.

    Usage::

        session = DeltaSession(program, initial_database)
        session.push(batch_of_new_facts)       # resumes from the delta
        answers = session.query("connected")   # ground tuples, any time
        session.close()

    ``program`` is a :class:`~repro.datalog.program.Program` (or rule text,
    parsed with :func:`~repro.datalog.parser.parse_program`); facts may be
    :class:`~repro.datalog.atoms.Atom` objects, RDF
    :class:`~repro.rdf.graph.Triple` objects, or plain ``(s, p, o)`` string
    triples.  ``engine`` selects the evaluator: ``"seminaive"`` (plain
    Datalog¬s), ``"chase"`` (existential rules via the restricted chase), or
    ``"auto"`` (chase iff the program has existentials).  A custom
    ``chase_engine`` may supply resource bounds; it must be a *restricted*
    chase.  Step budgets apply per push (each batch gets a fresh
    ``max_steps`` allowance — a long-lived stream is never starved by its
    own history), while ``ChaseState.steps`` reports the lifetime total.

    The session may be used as a context manager; :meth:`close` releases the
    parallel worker replicas (no-op outside parallel mode).
    """

    def __init__(
        self,
        program,
        database: Iterable = (),
        *,
        engine: str = "auto",
        chase_engine: Optional[ChaseEngine] = None,
    ):
        """Materialise ``database`` under ``program`` and arm the session."""
        if isinstance(program, str):
            from repro.datalog.parser import parse_program

            program = parse_program(program)
        if engine not in ("auto", "seminaive", "chase"):
            raise ValueError(
                f"engine must be 'auto', 'seminaive' or 'chase', got {engine!r}"
            )
        self.program: Program = program
        self._uses_chase = engine == "chase" or (
            engine == "auto"
            and (program.has_existentials or chase_engine is not None)
        )
        if self._uses_chase:
            self.chase_engine = chase_engine or ChaseEngine(deterministic_nulls=True)
            if not self.chase_engine.restricted:
                raise ValueError(
                    "DeltaSession requires the restricted chase (the oblivious "
                    "chase cannot skip already-fired triggers on resumption)"
                )
            self._evaluator = None
            self.stratification = stratify(program.ex())
            self.strata = partition_by_stratum(program.ex(), self.stratification)
            self.compiled_strata = [
                [compile_rule(rule) for rule in stratum] for stratum in self.strata
            ]
            self._chase_state = ChaseState()
        else:
            if chase_engine is not None:
                raise ValueError("chase_engine is only meaningful with engine='chase'")
            self.chase_engine = None
            self._evaluator = SemiNaiveEvaluator(program)
            self.stratification = self._evaluator.stratification
            self.strata = self._evaluator.strata
            self.compiled_strata = self._evaluator.compiled_strata
            self._chase_state = None
        self.n_strata = len(self.strata)
        self._stratum_programs = [Program(rules) for rules in self.strata]
        self._all_compiled = [
            crule for stratum in self.compiled_strata for crule in stratum
        ]
        #: Negated predicates per stratum — the stratum-re-run trigger.
        self._neg_preds: List[Set[str]] = [
            {atom.predicate for rule in stratum for atom in rule.body_negative}
            for stratum in self.strata
        ]
        #: predicate -> head predicates of rules reading it (any polarity);
        #: the static "may change" reachability used to scope stratum re-runs.
        self._dependents: Dict[str, Set[str]] = {}
        for stratum in self.strata:
            for rule in stratum:
                for atom in (*rule.body_positive, *rule.body_negative):
                    targets = self._dependents.setdefault(atom.predicate, set())
                    for head in rule.head:
                        targets.add(head.predicate)
        #: The accumulated EDB in arrival order (insertion-ordered set).
        self._edb: Dict[Atom, None] = {}
        self.instance = Instance()
        for fact in (self._as_fact(value) for value in database):
            self._edb[fact] = None
            self.instance.add_fact(fact)
        self._closed = False
        self._session = maybe_session(self.instance, self._all_compiled)
        self.pushes = 0
        #: Retraction generation: bumped once per completed :meth:`retract`.
        #: Snapshot holders (the service's published views) record it so a
        #: snapshot pinned before a deletion fails loudly instead of
        #: silently missing rows.
        self.retractions = 0
        #: predicate -> lane compactions performed on it this session; the
        #: service surfaces this through ``MaterializedView.maintenance()``.
        self.compaction_counts: Dict[str, int] = {}
        #: Per-constraint verdict cache for incremental consistency checks:
        #: entry ``i`` is the last known "constraint i is satisfied" verdict
        #: (None = unknown), reusable while no predicate its body reads is
        #: in the changed closure of a push/retract.
        self._constraint_preds: List[FrozenSet[str]] = [
            frozenset(atom.predicate for atom in constraint.body)
            for constraint in program.constraints
        ]
        self._constraint_cache: List[Optional[bool]] = [None] * len(
            self._constraint_preds
        )
        #: False once a stop-mode chase engine hit a resource limit: the
        #: materialisation is an under-approximation from then on.
        self.completed = True
        self.limit_reason: Optional[str] = None
        self._materialise_from(0)

    # -- streaming API -------------------------------------------------------

    def push(self, facts: Iterable) -> PushResult:
        """Feed one batch of new EDB facts and resume evaluation.

        Facts already present (as EDB or as derived facts) are recorded in
        the EDB but seed no work.  The evaluation resumed is exactly the
        stratified semantics of the accumulated database: strata below the
        batch's lowest stratum are untouched, monotone strata are continued
        from the delta, and strata whose negation references changed are
        re-run (see the module docstring for the argument).
        """
        if self._closed:
            raise RuntimeError("DeltaSession is closed")
        batch = [self._as_fact(value) for value in facts]
        push_start = time.perf_counter_ns() if TRACER.enabled else 0
        for fact in batch:
            self._edb[fact] = None
        size_before = len(self.instance)
        mark = self.instance._counter
        mark_limits = self.instance._index.row_limits()
        added: List[Atom] = []
        for fact in batch:
            if self.instance.add_fact(fact):
                added.append(fact)
        self.pushes += 1
        if not added:
            return PushResult(
                len(batch),
                0,
                0,
                -1,
                None,
                0,
                self._check_consistent(set()),
                self.completed,
                self.limit_reason,
            )
        affected = min(
            self.stratification.get(fact.predicate, 0) for fact in added
        )
        changed = self._changed_closure(fact.predicate for fact in added)
        rebuild_from = self._rebuild_point(affected, changed)
        stop = rebuild_from if rebuild_from is not None else self.n_strata
        rounds = 0
        for stratum in range(affected, stop):
            if not self.compiled_strata[stratum]:
                continue
            delta = self._window_delta(mark, mark_limits)
            reference = self.instance.snapshot()
            with TRACER.span("push.stratum", stratum=stratum):
                rounds += self._continue_stratum(stratum, delta, reference)
        if rebuild_from is not None:
            self._rebuild(rebuild_from)
        if TRACER.enabled:
            TRACER.record(
                "delta.push",
                push_start,
                batch=len(batch),
                new_edb=len(added),
                derived=len(self.instance) - size_before - len(added),
                rounds=rounds,
            )
        return PushResult(
            batch_size=len(batch),
            new_edb=len(added),
            derived=len(self.instance) - size_before - len(added),
            affected_stratum=affected,
            rebuilt_from=rebuild_from,
            rounds=rounds,
            consistent=self._check_consistent(changed),
            completed=self.completed,
            limit_reason=self.limit_reason,
        )

    def retract(self, facts: Iterable) -> RetractResult:
        """Remove a batch of EDB facts and repair the materialisation (DRed).

        Facts absent from the materialisation are dropped from the
        accumulated EDB (if recorded) and seed no work.  For the rest the
        session over-deletes the downward closure on the pre-deletion
        instance, tombstones it, re-derives every marked fact that still has
        alternative support (goal-directed, then propagated through the
        ordinary delta rounds), re-runs strata whose negation references may
        have shrunk, re-checks only the constraints the change can have
        flipped, and garbage-collects invented nulls no surviving fact
        references.  When over-deletion would mark more than half the
        materialisation — DRed's dense-instance worst case — the session
        aborts marking and rebuilds the affected strata cold from the
        surviving EDB instead (:meth:`_retract_degenerate`), landing on the
        same answer for less than per-fact restoration would cost.
        The result is exactly the stratified semantics of the
        surviving EDB — the same parity contract as :meth:`push`, pinned by
        ``tests/test_engine_retract_parity.py``.

        Chase sessions must run with content-addressed nulls (the session
        default): over-deletion reconstructs invented-null labels from
        (rule, frontier) digests, which counter-named nulls cannot provide.
        """
        if self._closed:
            raise RuntimeError("DeltaSession is closed")
        if self._uses_chase and not self.chase_engine.deterministic_nulls:
            raise ValueError(
                "retract() on a chase session requires deterministic nulls: "
                "over-deletion reconstructs invented-null labels from their "
                "content-addressed digests"
            )
        batch = [self._as_fact(value) for value in facts]
        retract_start = time.perf_counter_ns() if TRACER.enabled else 0
        removed_edb = 0
        for fact in batch:
            if fact in self._edb:
                del self._edb[fact]
                removed_edb += 1
        seeds: List[Atom] = []
        seen: Set[Atom] = set()
        for fact in batch:
            if fact in self.instance and fact not in seen:
                seen.add(fact)
                seeds.append(fact)
        if not seeds:
            return RetractResult(
                len(batch),
                removed_edb,
                0,
                0,
                0,
                -1,
                None,
                0,
                self._check_consistent(set()),
                self.completed,
                self.limit_reason,
            )
        affected = min(
            self.stratification.get(fact.predicate, 0) for fact in seeds
        )
        changed = self._changed_closure(fact.predicate for fact in seeds)
        rebuild_from = self._rebuild_point(affected, changed)
        stop = rebuild_from if rebuild_from is not None else self.n_strata
        # Phase 1: mark the downward closure on the pre-deletion instance.
        # ``None`` means marking aborted past the degeneration threshold —
        # the closure covers most of the materialisation, so per-fact
        # restoration would cost strictly more than evaluating cold.
        with TRACER.span("retract.overdelete", seeds=len(seeds)):
            marked = self._overdelete_closure(seeds, affected, stop)
        if marked is None:
            with TRACER.span("retract.degenerate", stratum=affected):
                return self._retract_degenerate(
                    len(batch), removed_edb, affected, changed
                )
        # Phase 2: physical deletion (tombstones are logged for replicas).
        with TRACER.span("retract.tombstone", marked=len(marked)):
            discard = self.instance.discard
            for fact in marked:
                discard(fact)
            STATS.retractions += len(marked)
        # Phase 3: restore survivors, strata ascending.
        rounds = 0
        with TRACER.span("retract.rederive", strata=max(0, stop - affected)):
            for stratum in range(affected, stop):
                rounds += self._rederive_stratum(stratum, marked)
        # Phase 4: strata whose negation references shrank re-run cold.
        if rebuild_from is not None:
            self._rebuild(rebuild_from)
        rederived = sum(1 for fact in marked if fact in self.instance)
        STATS.rederived += rederived
        with TRACER.span("retract.null_gc", marked=len(marked)):
            collected = self._collect_nulls(marked, rebuild_from is not None)
        self._maybe_compact()
        self.retractions += 1
        if TRACER.enabled:
            TRACER.record(
                "delta.retract",
                retract_start,
                batch=len(batch),
                overdeleted=len(marked),
                rederived=rederived,
                nulls_collected=collected,
            )
        return RetractResult(
            batch_size=len(batch),
            removed_edb=removed_edb,
            overdeleted=len(marked),
            rederived=rederived,
            nulls_collected=collected,
            affected_stratum=affected,
            rebuilt_from=rebuild_from,
            rounds=rounds,
            consistent=self._check_consistent(changed),
            completed=self.completed,
            limit_reason=self.limit_reason,
        )

    def _maybe_compact(self) -> int:
        """Compact predicates whose tombstone ratio crossed the threshold.

        The maintenance tail of :meth:`retract`: any predicate holding at
        least :data:`~repro.engine.index._COMPACT_MIN_ROWS` rows with more
        than :func:`~repro.engine.index.compact_ratio` of them dead gets its
        lanes packed and renumbered (:meth:`PredicateIndex.compact
        <repro.engine.index.PredicateIndex.compact>`), so a long churn
        stream stops carrying its whole deletion history in RAM.  Purely
        physical — the live facts, their order, and their gids are
        untouched, which is why results and the gated counters stay
        byte-identical to a never-compacting run (pinned by the retract
        parity suite).  Renumbering invalidates the parallel replicas' row
        alignment, so a compaction re-arms the session from scratch; any
        snapshot that predates it was already flagged stale by the
        tombstoning that pushed the ratio over the threshold.
        """
        index = self.instance._index
        ratio = compact_ratio()
        live_counts = index.live
        compacted = 0
        for predicate in list(index.rows):
            total = index.row_count(predicate)
            if total < _COMPACT_MIN_ROWS:
                continue
            dead = total - live_counts.get(predicate, 0)
            if dead and dead / total > ratio:
                index.compact(predicate)
                STATS.compactions += 1
                self.compaction_counts[predicate] = (
                    self.compaction_counts.get(predicate, 0) + 1
                )
                compacted += 1
        if compacted and self._session is not None:
            # Replica row ids are parent-aligned by append order; compaction
            # renumbered them, so the workers must resync from scratch.
            self._session.close()
            self._session = maybe_session(self.instance, self._all_compiled)
        return compacted

    def query(self, predicate: str) -> FrozenSet[Tuple[Term, ...]]:
        """The ground answer tuples over ``predicate`` — the paper's ``Q(D)``."""
        return frozenset(
            tuple(atom.terms)
            for atom in self.instance.with_predicate(predicate)
            if atom.is_ground
        )

    def facts(self, predicate: str) -> FrozenSet[Atom]:
        """All materialised facts over ``predicate`` (including nulls)."""
        return self.instance.with_predicate(predicate)

    def result(self) -> SemanticsResult:
        """``Pi(D)`` for the accumulated database: the instance, or ⊤."""
        if not self._check_consistent():
            return INCONSISTENT
        return self.instance

    def check_consistency(self) -> bool:
        """True iff no constraint body embeds into the materialisation.

        Recomputes every constraint (and refreshes the incremental verdict
        cache); the push/retract paths use the cache-aware
        :meth:`_check_consistent` instead, re-evaluating only constraints
        whose body predicates intersect the batch's changed closure.
        """
        ok = True
        for i, constraint in enumerate(self.program.constraints):
            verdict = (
                next(match_atoms(constraint.body, self.instance), None) is None
            )
            self._constraint_cache[i] = verdict
            if not verdict:
                ok = False
        return ok

    def close(self) -> None:
        """Release the parallel worker replicas; the session becomes read-only."""
        if self._session is not None:
            self._session.close()
            self._session = None
        self._closed = True

    def __enter__(self) -> "DeltaSession":
        """Context-manager entry (returns the session itself)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    def __len__(self) -> int:
        """Number of materialised facts."""
        return len(self.instance)

    def __contains__(self, atom: Atom) -> bool:
        """Membership test against the materialisation."""
        return atom in self.instance

    # -- internals -----------------------------------------------------------

    def _materialise_from(self, first: int) -> None:
        """Evaluate strata ``first..top`` cold on the current instance."""
        for stratum in range(first, self.n_strata):
            compiled = self.compiled_strata[stratum]
            if not compiled:
                continue
            reference = self.instance.snapshot()
            if self._uses_chase:
                result = self.chase_engine.chase(
                    self.instance,
                    self._stratum_programs[stratum],
                    negation_reference=reference,
                    reuse_instance=True,
                    session=self._session,
                    state=self._chase_state,
                )
                self._note_chase_outcome(result)
            else:
                self._evaluator._evaluate_stratum(
                    compiled, self.instance, reference, self._session
                )

    def _continue_stratum(self, stratum: int, delta: Instance, reference) -> int:
        """Resume one stratum's fixpoint from ``delta``; returns round count."""
        if self._uses_chase:
            result = self.chase_engine.resume(
                self.instance,
                self._stratum_programs[stratum],
                delta,
                reference,
                state=self._chase_state,
                session=self._session,
            )
            self._note_chase_outcome(result)
            return result.delta_rounds
        return self._evaluator.resume_stratum(
            stratum, self.instance, delta, reference, self._session
        )

    def _note_chase_outcome(self, result) -> None:
        """Record a stop-mode resource truncation (raise mode raised already)."""
        if not result.completed:
            self.completed = False
            if self.limit_reason is None:
                self.limit_reason = result.limit_reason

    def _changed_closure(self, predicates: Iterable[str]) -> Set[str]:
        """The static upward closure of ``predicates`` in the dependency graph.

        A predicate only gains or loses facts if some rule reading a changed
        predicate — positively or through negation — derives it; the closure
        therefore over-approximates "every predicate whose fact set can have
        changed" for both pushes and retractions, and scopes stratum re-runs
        and constraint re-checks alike.
        """
        changed: Set[str] = set(predicates)
        queue = list(changed)
        while queue:
            predicate = queue.pop()
            for dependent in self._dependents.get(predicate, ()):
                if dependent not in changed:
                    changed.add(dependent)
                    queue.append(dependent)
        return changed

    def _rebuild_point(self, affected: int, changed: Set[str]) -> Optional[int]:
        """Lowest stratum above ``affected`` that must be re-run, or None.

        A stratum must be re-run iff it negates a predicate of the changed
        closure; everything below the first such stratum is monotone in the
        new facts (respectively, sees unchanged negation references after a
        retraction) and is continued instead.
        """
        for stratum in range(affected + 1, self.n_strata):
            if self._neg_preds[stratum] & changed:
                return stratum
        return None

    def _rebuild(self, first: int) -> None:
        """Re-run strata ``first..top``: drop their derivations, evaluate cold.

        The new instance keeps every fact of the strata below ``first`` (in
        their original insertion order — ordinals of surviving facts are
        stable relative to each other) plus the accumulated EDB facts of the
        re-run strata, then the strata are materialised exactly as an
        initial run would.  With deterministic nulls the unchanged
        derivations of the re-run strata come back byte-identical.
        """
        with TRACER.span("delta.rebuild", first=first):
            stratum_of = self.stratification
            kept = [
                atom
                for atom in self.instance
                if stratum_of.get(atom.predicate, 0) < first
            ]
            extras = [
                fact
                for fact in self._edb
                if stratum_of.get(fact.predicate, 0) >= first
            ]
            if self._session is not None:
                self._session.close()
                self._session = None
            instance = Instance()
            instance.bulk_load(kept)
            instance.bulk_load(extras)
            self.instance = instance
            self._session = maybe_session(self.instance, self._all_compiled)
            # The instance was swapped and the re-run strata re-derived: every
            # cached constraint verdict is suspect.
            self._constraint_cache = [None] * len(self._constraint_preds)
            self._materialise_from(first)

    def _window_delta(self, mark: int, mark_limits: Dict[str, int]) -> Instance:
        """The facts appended since ordinal ``mark``, as a delta instance.

        ``mark_limits`` holds the per-predicate row counts captured at
        ``mark``, so the window is collected from the index's row suffixes in
        O(delta) — not by skipping ``mark`` entries of the ordinal map, which
        would make every push pay for the whole accumulated history.  The
        session's instance is append-only, so insertion position equals
        ordinal and the re-sorted window is a contiguous, ascending ordinal
        range — the exact shape
        :class:`~repro.engine.parallel.ParallelSession` accepts for
        distributed delta dispatch.
        """
        delta = Instance()
        if self.instance._counter > mark:
            fresh: List[Atom] = []
            for predicate, rows in self.instance._index.rows.items():
                start = mark_limits.get(predicate, 0)
                if start < len(rows):
                    fresh.extend(fact for fact in rows[start:] if fact is not None)
            fresh.sort(key=self.instance._ordinals.__getitem__)
            for atom in fresh:
                delta.add_fact(atom)
        return delta

    # -- retraction internals (DRed) -----------------------------------------

    def _retract_degenerate(
        self, batch_size: int, removed_edb: int, affected: int, changed: Set[str]
    ) -> RetractResult:
        """Deletion's analogue of a negation stratum re-run: over-deletion
        marked more than half the live materialisation, so drop every fact of
        strata ``>= affected`` and rebuild them cold from the surviving EDB.

        :meth:`_rebuild` already owns the machinery (fresh instance, replica
        re-arm, constraint-cache reset, deterministic nulls), and cold
        evaluation of the surviving EDB *is* the parity oracle — the rebuilt
        instance is byte-identical to what per-fact restoration would have
        produced, minus the 2×-or-worse cost of restoring each survivor
        individually.  ``overdeleted`` counts the facts dropped by the
        instance swap and ``rederived`` the ones the rebuild brought back
        (monotone shrinkage: the surviving EDB derives a subset of the old
        instance, so everything re-materialised was indeed dropped first).
        """
        stratum_of = self.stratification
        dropped = sum(
            1
            for atom in self.instance
            if stratum_of.get(atom.predicate, 0) >= affected
        )
        STATS.retractions += dropped
        self._rebuild(affected)
        rederived = sum(
            1
            for atom in self.instance
            if stratum_of.get(atom.predicate, 0) >= affected
        )
        STATS.rederived += rederived
        collected = self._collect_nulls({}, True)
        self.retractions += 1
        return RetractResult(
            batch_size=batch_size,
            removed_edb=removed_edb,
            overdeleted=dropped,
            rederived=rederived,
            nulls_collected=collected,
            affected_stratum=affected,
            rebuilt_from=affected,
            rounds=0,
            consistent=self._check_consistent(changed),
            completed=self.completed,
            limit_reason=self.limit_reason,
        )

    def _overdelete_closure(
        self, seeds: List[Atom], first: int, stop: int
    ) -> Optional[Dict[Atom, None]]:
        """Mark the downward closure of ``seeds``: every fact some derivation
        chain from a retracted fact reaches, over-approximated rule by rule.

        Pure marking — the instance is untouched until phase 2, so every
        trigger is matched against the *pre-deletion* materialisation (DRed's
        over-deletion semantics).  The negation reference is likewise the
        pre-deletion snapshot: strata in ``[first, stop)`` negate only
        predicates outside the changed closure (that is what
        :meth:`_rebuild_point` computed), so pre- and post-deletion snapshots
        agree on every predicate these rules negate.

        Returns ``None`` when the closure outgrows half the materialisation
        (checked between rounds).  On densely connected instances — a clique
        of overlapping social windows, say — almost every derived fact can be
        routed through a deleted edge, over-deletion approaches the whole
        instance, and per-fact restoration costs strictly more than
        re-evaluating the survivors cold; the caller falls back to
        :meth:`_retract_degenerate`.  The abort is mode-identical because the
        marking order is.

        The returned insertion-ordered dict is mode-identical: batch rows
        arrive in row order per the executor contract, and the row path
        enumerates the same triggers in the same depth-first order.
        """
        marked: Dict[Atom, None] = dict.fromkeys(seeds)
        threshold = len(self.instance) // 2
        if len(marked) > threshold:
            return None
        use_batch = batch_enabled()
        reference = self.instance.snapshot()
        for stratum in range(first, stop):
            compiled = self.compiled_strata[stratum]
            if not compiled:
                continue
            delta = Instance()
            for fact in marked:
                delta.add_fact(fact)
            while len(delta):
                sink = Instance()
                for crule in compiled:
                    self._overdelete_rule(
                        crule, delta, reference, marked, sink, use_batch
                    )
                if len(marked) > threshold:
                    return None
                delta = sink
        return marked

    def _overdelete_rule(
        self, crule, delta, reference, marked, sink, use_batch
    ) -> None:
        """One rule's over-deletion round: mark every currently-materialised
        head fact of a trigger that reads at least one marked fact.

        Mirrors ``SemiNaiveEvaluator._fire_rule``'s mode split so the trigger
        enumeration order (and hence the marked-dict insertion order) is
        byte-identical across row/batch/parallel sessions.
        """
        if use_batch:
            if self._session is not None:
                batches = self._session.trigger_row_batches(crule, delta, reference)
            else:
                batches = crule.trigger_row_batches(self.instance, delta, reference)
            for plan, rows in batches:
                ops = crule.row_ops(plan)
                for row in rows:
                    extended = self._extend_row(crule, ops, row)
                    if extended is None:
                        continue
                    for key in ops.head_keys_row(extended):
                        if self.instance.has_key(key):
                            atom = TERMS.decode_atom(key)
                            if atom not in marked:
                                marked[atom] = None
                                sink.add_fact(atom)
            return
        for trigger in list(crule.delta_substitutions(self.instance, delta)):
            if crule.negation and crule.negation_blocked(trigger, reference):
                continue
            extension = self._extend_subst(crule, trigger)
            if extension is None:
                continue
            for fact in crule.head_facts(extension):
                if fact in self.instance and fact not in marked:
                    marked[fact] = None
                    sink.add_fact(fact)

    def _extend_row(self, crule, ops, row):
        """Extend an over-deletion trigger row with the nulls its chase firing
        *would have* invented, looked up (never interned) by digest label.

        An unknown label proves the trigger never fired — content-addressed
        nulls make the label a pure function of (rule, frontier) — so the
        trigger derived nothing and marks nothing (return ``None``).
        Interning here would both pollute the dictionary and desync the
        parallel replicas, hence :meth:`~repro.engine.interning.TermTable.find_null`.
        """
        if not crule.sorted_existentials:
            return row
        signature = _rule_signature(crule.rule)
        frontier = TERMS.decode(row[slot] for _, slot in ops.frontier_slots)
        fresh_ids = []
        for existential in crule.sorted_existentials:
            null = self.chase_engine._fresh_null(signature, frontier, existential)
            tid = TERMS.find_null(null.label)
            if tid is None:
                return None
            fresh_ids.append(tid)
        return row + tuple(fresh_ids)

    def _extend_subst(self, crule, trigger):
        """Row-mode sibling of :meth:`_extend_row`: extend a substitution with
        the digest nulls of its hypothetical firing, or ``None`` if any label
        was never interned (the trigger never fired)."""
        if not crule.sorted_existentials:
            return trigger
        signature = _rule_signature(crule.rule)
        frontier = tuple(trigger[v] for v in crule.sorted_frontier)
        extension = dict(trigger)
        for existential in crule.sorted_existentials:
            null = self.chase_engine._fresh_null(signature, frontier, existential)
            if TERMS.find_null(null.label) is None:
                return None
            extension[existential] = null
        return extension

    def _rederive_stratum(self, stratum: int, marked: Dict[Atom, None]) -> int:
        """Phase 3 for one stratum: reinsert surviving EDB, goal-directedly
        restore marked facts with alternative support, then propagate the
        restorations through the ordinary delta rounds.  Returns the round
        count of the propagation.

        The delta window is contiguous (all deletions happened before
        ``mark``; re-derived facts get strictly fresh ordinals because
        ``Instance._counter`` never rewinds), so the propagation reuses
        :meth:`_window_delta` / :meth:`_continue_stratum` unchanged.
        """
        stratum_of = self.stratification
        mark = self.instance._counter
        mark_limits = self.instance._index.row_limits()
        for fact in marked:
            if (
                stratum_of.get(fact.predicate, 0) == stratum
                and fact in self._edb
            ):
                self.instance.add_fact(fact)
        reference = self.instance.snapshot()
        self._rederive_goal_directed(stratum, marked, reference)
        if self.instance._counter > mark:
            delta = self._window_delta(mark, mark_limits)
            reference = self.instance.snapshot()
            return self._continue_stratum(stratum, delta, reference)
        return 0

    def _rederive_goal_directed(
        self, stratum: int, marked: Dict[Atom, None], reference
    ) -> None:
        """Re-derive marked facts of ``stratum`` that still have alternative
        support, by unifying each against the rule heads that can produce it
        and matching the rule bodies under that binding.

        Semi-naive sessions stop at the first surviving trigger (one support
        suffices; the delta rounds propagate).  Chase sessions enumerate
        *every* trigger and re-fire each one whose head is no longer
        satisfied — this is also what restores the restricted-chase
        invariant for triggers whose head witness was over-deleted, with the
        digest nulls guaranteeing the re-invented labels match a cold chase
        of the surviving EDB whenever the trigger sets align.  This pass is
        goal-directed repair, not forward chase, so it is exempt from the
        engine's ``max_steps`` budget (``state.steps`` is not bumped).
        """
        stratum_of = self.stratification
        compiled = self.compiled_strata[stratum]
        for fact in marked:
            if stratum_of.get(fact.predicate, 0) != stratum:
                continue
            if fact in self.instance:
                # Already restored (EDB reinsert, or an earlier re-fire):
                # every trigger producing it is head-satisfied again.
                continue
            for crule in compiled:
                for head_atom in crule.rule.head:
                    if head_atom.predicate != fact.predicate:
                        continue
                    binding = unify_with_fact(head_atom, fact)
                    if binding is None:
                        continue
                    frontier_set = set(crule.sorted_frontier)
                    initial = {
                        v: t for v, t in binding.items() if v in frontier_set
                    }
                    if self._uses_chase:
                        self._refire_chase_triggers(crule, initial, reference)
                    else:
                        if self._restore_seminaive(crule, initial, reference):
                            break
                else:
                    continue
                break

    def _restore_seminaive(self, crule, initial, reference) -> bool:
        """Fire the first surviving trigger of ``crule`` under ``initial``;
        returns True if one fired (the fact is restored)."""
        for trigger in match_atoms(
            crule.rule.body_positive, self.instance, initial
        ):
            if crule.negation and crule.negation_blocked(trigger, reference):
                continue
            STATS.triggers_fired += 1
            for fact in crule.head_facts(trigger):
                self.instance.add_fact(fact)
            return True
        return False

    def _refire_chase_triggers(self, crule, initial, reference) -> None:
        """Re-fire every surviving trigger of ``crule`` under ``initial``
        whose head is no longer satisfied (restricted-chase repair)."""
        null_depth = self._chase_state.null_depth
        signature = None
        for trigger in match_atoms(
            crule.rule.body_positive, self.instance, initial
        ):
            if crule.negation and crule.negation_blocked(trigger, reference):
                continue
            if crule.head_satisfied(trigger, self.instance):
                continue
            extension = dict(trigger)
            if crule.sorted_existentials:
                if signature is None:
                    signature = _rule_signature(crule.rule)
                frontier = tuple(trigger[v] for v in crule.sorted_frontier)
                depth = ChaseEngine._values_depth(trigger.values(), null_depth)
                for existential in crule.sorted_existentials:
                    fresh = self.chase_engine._fresh_null(
                        signature, frontier, existential
                    )
                    null_depth[TERMS.intern_term(fresh)] = depth + 1
                    STATS.nulls_invented += 1
                    extension[existential] = fresh
            STATS.triggers_fired += 1
            for fact in crule.head_facts(extension):
                self.instance.add_fact(fact)

    def _collect_nulls(self, marked: Dict[Atom, None], rebuilt: bool) -> int:
        """Drop invented nulls no surviving fact references from the chase's
        depth bookkeeping; returns the count (0 for semi-naive sessions).

        Candidates are the odd term IDs of marked facts that stayed deleted
        — the only place references can have been lost — widened to every
        tracked null after a stratum rebuild (the rebuild swaps the whole
        instance, so any null may have died).  The dictionary entries
        themselves are retired logically here and reclaimed physically at
        the next term-table epoch (:meth:`TermTable.begin_epoch`).
        """
        if not self._uses_chase:
            return 0
        null_depth = self._chase_state.null_depth
        candidates = {
            tid
            for fact in marked
            if fact not in self.instance
            for tid in TERMS.atom_key(fact)[1:]
            if tid & 1
        }
        if rebuilt:
            candidates.update(null_depth)
        if not candidates:
            return 0
        dead = candidates - self.instance.null_ids()
        if not dead:
            return 0
        for tid in dead:
            null_depth.pop(tid, None)
        TERMS.retire_nulls(len(dead))
        STATS.nulls_collected += len(dead)
        return len(dead)

    def _check_consistent(self, changed: Optional[Set[str]] = None) -> bool:
        """Constraint check, skipped entirely for constraint-free programs.

        With a ``changed`` closure, constraints whose body predicates are
        disjoint from it serve their cached verdict — a retraction or push
        over a handful of predicates re-evaluates only the constraints it
        can actually have flipped.  Without one, everything is recomputed.
        """
        if not self.program.constraints:
            return True
        ok = True
        for i, constraint in enumerate(self.program.constraints):
            verdict = self._constraint_cache[i]
            if (
                verdict is None
                or changed is None
                or self._constraint_preds[i] & changed
            ):
                verdict = (
                    next(match_atoms(constraint.body, self.instance), None) is None
                )
                self._constraint_cache[i] = verdict
            if not verdict:
                ok = False
        return ok

    @staticmethod
    def _as_fact(value) -> Atom:
        """Normalise an input fact: Atom, Triple, or ``(s, p, o)`` strings."""
        if isinstance(value, Atom):
            atom = value
        elif hasattr(value, "to_atom"):
            atom = value.to_atom()
        elif isinstance(value, tuple) and len(value) == 3:
            from repro.rdf.graph import triple_atom

            atom = triple_atom(*value)
        else:
            raise TypeError(
                "streamed facts must be Atoms, Triples, or (s, p, o) tuples; "
                f"got {value!r}"
            )
        if not atom.is_ground:
            raise ValueError(
                f"streamed facts must be ground over constants; got {atom}"
            )
        return atom


def cold_equivalent(
    session_or_program,
    database: Iterable = (),
    *,
    engine: str = "auto",
    chase_engine: Optional[ChaseEngine] = None,
) -> SemanticsResult:
    """The cold (from-scratch) evaluation a :class:`DeltaSession` must match.

    Given a session, re-evaluates its program over its *accumulated* EDB with
    the same engine selection in one batch run — the reference side of the
    incremental parity contract, used by the differential suite and by the
    streaming benchmarks' recompute baseline.  Given a program (plus a
    database), behaves like :func:`~repro.datalog.semantics.evaluate_program`
    / :meth:`~repro.datalog.seminaive.SemiNaiveEvaluator.evaluate` under the
    same selection rules as :class:`DeltaSession`.
    """
    if isinstance(session_or_program, DeltaSession):
        session = session_or_program
        return cold_equivalent(
            session.program,
            list(session._edb),
            engine="chase" if session._uses_chase else "seminaive",
            chase_engine=session.chase_engine,
        )
    program = session_or_program
    if isinstance(program, str):
        from repro.datalog.parser import parse_program

        program = parse_program(program)
    uses_chase = engine == "chase" or (
        engine == "auto" and (program.has_existentials or chase_engine is not None)
    )
    if uses_chase:
        from repro.datalog.semantics import StratifiedSemantics

        chase = chase_engine or ChaseEngine(deterministic_nulls=True)
        return StratifiedSemantics(program, chase).materialise(database)
    evaluator = SemiNaiveEvaluator(program)
    instance = evaluator.evaluate(database)
    if evaluator.violated_constraints(instance):
        return INCONSISTENT
    return instance
