"""Lightweight span tracing for the engine stack (off by default).

The tracer records *where the time goes* inside a materialisation, a push,
or a DRed retraction: nested spans with monotonic timings and small
attribute dicts, collected into a fixed-capacity ring buffer and exported
as JSON.  It is instrumentation only — enabling it must never change
evaluation results, null labels, or the gated engine counters
(``tests/test_obs_neutrality.py`` pins this byte-for-byte).

Overhead contract
-----------------

* **Disabled** (the default): every instrumented call site pays exactly one
  attribute read and one predictable branch (``if TRACER.enabled:`` for
  leaf records, or :meth:`Tracer.span` returning a shared no-op context
  manager).  No timestamps are taken, nothing allocates.
* **Enabled**: each event costs two ``time.perf_counter_ns()`` calls, one
  small dict, and one lock-guarded ring append.  The ring is bounded
  (:attr:`Tracer.capacity`); when full, the oldest events are overwritten
  and :attr:`Tracer.dropped` counts the loss instead of growing memory.

Usage::

    from repro.obs import TRACER

    TRACER.enable()
    ...  # run a push / retract / materialisation
    events = TRACER.events()          # chronological list of dicts
    TRACER.export_json("trace.json")  # {"events": [...], "dropped": 0}
    TRACER.disable()

Instrumented sites (see ``docs/observability.md`` for the full catalogue):
stratum fixpoints and per-rule firings (``seminaive.stratum`` /
``seminaive.rule``), chase rounds (``chase.round`` / ``chase.run``),
DeltaSession push and retract phases (``delta.push``, ``delta.retract``,
``retract.overdelete`` …), and parallel dispatch/sync
(``parallel.dispatch`` / ``parallel.sync``).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional


class _NullSpan:
    """The shared no-op context manager handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span: records its event into the tracer's ring on exit."""

    __slots__ = ("_tracer", "name", "attrs", "start_ns", "depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start_ns = 0
        self.depth = 0

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self.depth = tracer._push_depth()
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> bool:
        end_ns = time.perf_counter_ns()
        tracer = self._tracer
        tracer._pop_depth()
        tracer._append(self.name, self.start_ns, end_ns, self.depth, self.attrs)
        return False


class Tracer:
    """A ring-buffered span/event recorder with an ``enabled`` master switch.

    All methods are safe to call from any thread; spans nest per thread
    (the depth counter is thread-local).  The recorded event dicts carry
    ``name``, ``start_us`` (microseconds relative to the first recorded
    event), ``duration_us``, ``depth``, and the caller's attributes under
    ``attrs``.
    """

    def __init__(self, capacity: int = 8192):
        self.enabled = False
        self.capacity = capacity
        self.dropped = 0
        self._ring: List[Optional[tuple]] = []
        self._cursor = 0
        self._origin_ns: Optional[int] = None
        self._lock = threading.Lock()
        self._depths = threading.local()

    # -- switches ------------------------------------------------------------

    def enable(self, capacity: Optional[int] = None) -> None:
        """Turn tracing on (optionally resizing the ring), starting clean."""
        with self._lock:
            if capacity is not None:
                self.capacity = capacity
            self._ring = []
            self._cursor = 0
            self.dropped = 0
            self._origin_ns = None
        self.enabled = True

    def disable(self) -> None:
        """Turn tracing off; already-recorded events stay readable."""
        self.enabled = False

    def clear(self) -> None:
        """Drop every recorded event (the switch state is unchanged)."""
        with self._lock:
            self._ring = []
            self._cursor = 0
            self.dropped = 0
            self._origin_ns = None

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **attrs):
        """A context manager timing a nested phase; no-op while disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def record(self, name: str, start_ns: int, **attrs) -> None:
        """Record a leaf event that started at ``start_ns`` and ends now.

        Call sites guard with ``if TRACER.enabled:`` (and only then take
        the start timestamp), so the disabled cost is the branch alone.
        """
        end_ns = time.perf_counter_ns()
        self._append(name, start_ns, end_ns, self._depth(), attrs)

    # -- internals -----------------------------------------------------------

    def _depth(self) -> int:
        return getattr(self._depths, "value", 0)

    def _push_depth(self) -> int:
        depth = getattr(self._depths, "value", 0)
        self._depths.value = depth + 1
        return depth

    def _pop_depth(self) -> None:
        self._depths.value = max(0, getattr(self._depths, "value", 1) - 1)

    def _append(self, name, start_ns, end_ns, depth, attrs) -> None:
        with self._lock:
            if self._origin_ns is None:
                self._origin_ns = start_ns
            entry = (name, start_ns, end_ns, depth, attrs)
            ring = self._ring
            if len(ring) < self.capacity:
                ring.append(entry)
            else:
                ring[self._cursor % self.capacity] = entry
                self._cursor += 1
                self.dropped += 1

    # -- export --------------------------------------------------------------

    def events(self) -> List[dict]:
        """The recorded events as dicts, oldest first."""
        with self._lock:
            ring = list(self._ring)
            cursor = self._cursor
            origin = self._origin_ns or 0
        if len(ring) == self.capacity and cursor:
            split = cursor % self.capacity
            ring = ring[split:] + ring[:split]
        return [
            {
                "name": name,
                "start_us": (start_ns - origin) // 1000,
                "duration_us": (end_ns - start_ns) // 1000,
                "depth": depth,
                "attrs": attrs,
            }
            for name, start_ns, end_ns, depth, attrs in ring
        ]

    def export_json(self, path) -> None:
        """Write ``{"events": [...], "dropped": N}`` to ``path``."""
        document = {"events": self.events(), "dropped": self.dropped}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")


#: The process-global tracer every instrumented site consults.
TRACER = Tracer()
