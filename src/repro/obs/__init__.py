"""Observability for the engine stack: tracing, profiling, and metrics.

Three independent, individually-switchable layers, all off by default and
all guaranteed not to change evaluation results (see
``docs/observability.md`` for the API reference and the overhead
contract):

* :data:`TRACER` (:mod:`repro.obs.trace`) — nested spans and leaf events
  over the engines' phases, ring-buffered, JSON-exportable.
* :data:`PROFILER` (:mod:`repro.obs.profile`) — per-step join-plan
  counters feeding ``CompiledRule.explain()`` and the harness
  ``--profile`` artifact.
* :data:`REGISTRY` (:mod:`repro.obs.metrics`) — thread-safe labeled
  counters/gauges/histograms with Prometheus text exposition, served by
  the query service at ``GET /metrics``.
"""

from repro.obs.metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry, REGISTRY
from repro.obs.profile import PlanProfile, Profiler, StepProfile, PROFILER
from repro.obs.trace import Tracer, TRACER

__all__ = [
    "TRACER",
    "Tracer",
    "PROFILER",
    "Profiler",
    "PlanProfile",
    "StepProfile",
    "REGISTRY",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
]
