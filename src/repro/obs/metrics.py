"""A thread-safe labeled metrics registry with Prometheus text exposition.

The engine's :data:`~repro.engine.stats.STATS` blob is deliberately not
thread-safe (single measured run, one writer); a long-lived service needs
the opposite: counters, gauges, and histograms that many reader threads
bump concurrently, scraped over HTTP.  This module is that layer —
stdlib-only, one lock per registry, deterministic rendering in the
Prometheus text exposition format (version 0.0.4).

Three instrument kinds:

* :class:`Counter` — monotonically increasing; ``inc(n)``, plus
  ``set_total(v)`` for mirroring an externally-maintained monotonic value
  (the engine counters are mirrored into ``repro_engine_*_total`` this way
  at scrape time).
* :class:`Gauge` — a value that goes up and down; ``set(v)`` / ``inc`` /
  ``dec``.  Scrape-time gauges (per-predicate tombstone ratios, readers
  pinned) are recomputed on every render.
* :class:`Histogram` — cumulative fixed buckets plus ``_sum``/``_count``;
  ``observe(v)``.  Buckets are fixed at creation, so two runs over the same
  workload land observations in identical buckets
  (``tests/test_obs_metrics.py`` pins this determinism).

Instruments are created idempotently through the registry
(:meth:`MetricsRegistry.counter` etc. return the existing instrument on a
repeated name) and support label dimensions via :meth:`_Instrument.labels`.
:meth:`MetricsRegistry.render` produces the ``/metrics`` payload;
:meth:`MetricsRegistry.collect` produces the JSON-able dict folded into
``/stats``.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Sequence, Tuple

#: Latency buckets (seconds) shared by the service histograms — wide enough
#: for a cold LUBM query, fine enough near the p50 of an indexed lookup.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _escape_label(value: str) -> str:
    """Escape a label value per the exposition format (backslash, quote, LF)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value) -> str:
    """Render a sample value: integers stay integral, floats use repr."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == int(value):
        return str(int(value))
    return repr(value)


def _label_str(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    """``{a="x",b="y"}`` (or the empty string for unlabeled samples)."""
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


class _Instrument:
    """Shared child bookkeeping for the three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str], lock):
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, *labelvalues) -> object:
        """The child instrument for one label-value combination."""
        if len(labelvalues) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {labelvalues!r}"
            )
        key = tuple(str(value) for value in labelvalues)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._new_child(self._lock)
            return child

    def _default_child(self):
        """The single child of an unlabeled instrument (created lazily)."""
        return self.labels()

    def _new_child(self, lock):  # pragma: no cover - overridden by every kind
        raise NotImplementedError

    def clear(self) -> None:
        """Drop every child (scrape-time gauges rebuild their label sets)."""
        with self._lock:
            self._children.clear()

    def _sorted_children(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())


class _CounterChild:
    """One labeled counter series (increments hold the registry lock)."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock):
        self.value = 0
        self._lock = lock

    def inc(self, amount=1) -> None:
        """Add ``amount`` (must be non-negative) to the series."""
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self.value += amount

    def set_total(self, value) -> None:
        """Overwrite the running total (mirroring an external monotonic value)."""
        with self._lock:
            self.value = value


class Counter(_Instrument):
    """A monotonically increasing metric, optionally labeled."""

    kind = "counter"

    def _new_child(self, lock) -> _CounterChild:
        return _CounterChild(lock)

    def inc(self, amount=1) -> None:
        """Increment the unlabeled series."""
        self._default_child().inc(amount)

    def set_total(self, value) -> None:
        """Overwrite the unlabeled series' total (external mirror)."""
        self._default_child().set_total(value)


class _GaugeChild:
    """One labeled gauge series (updates hold the registry lock)."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock):
        self.value = 0
        self._lock = lock

    def set(self, value) -> None:
        """Set the series to ``value``."""
        with self._lock:
            self.value = value

    def inc(self, amount=1) -> None:
        """Add ``amount`` (may be negative)."""
        with self._lock:
            self.value += amount

    def dec(self, amount=1) -> None:
        """Subtract ``amount``."""
        with self._lock:
            self.value -= amount


class Gauge(_Instrument):
    """A metric that can go up and down, optionally labeled."""

    kind = "gauge"

    def _new_child(self, lock) -> _GaugeChild:
        return _GaugeChild(lock)

    def set(self, value) -> None:
        """Set the unlabeled series."""
        self._default_child().set(value)


class _HistogramChild:
    """One labeled histogram series: bucket counts, sum, and count."""

    __slots__ = ("buckets", "counts", "total", "count", "_lock")

    def __init__(self, buckets: Tuple[float, ...], lock):
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.total = 0.0
        self.count = 0
        self._lock = lock

    def observe(self, value) -> None:
        """Record one observation (cumulative bucket counts, under the lock)."""
        with self._lock:
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[i] += 1
            self.total += value
            self.count += 1

    def snapshot(self) -> dict:
        """JSON-able view: cumulative bucket counts keyed by upper bound."""
        return {
            "buckets": {
                _format_value(bound): self.counts[i]
                for i, bound in enumerate(self.buckets)
            },
            "sum": self.total,
            "count": self.count,
        }


class Histogram(_Instrument):
    """A fixed-bucket cumulative histogram, optionally labeled."""

    kind = "histogram"

    def __init__(self, name, help_text, labelnames, lock, buckets=DEFAULT_BUCKETS):
        super().__init__(name, help_text, labelnames, lock)
        self.buckets = tuple(sorted(buckets))

    def _new_child(self, lock) -> _HistogramChild:
        return _HistogramChild(self.buckets, lock)

    def observe(self, value) -> None:
        """Record one observation on the unlabeled series."""
        self._default_child().observe(value)


class MetricsRegistry:
    """A named collection of instruments with deterministic exposition.

    Creation methods are idempotent by name (re-registering returns the
    existing instrument; a kind or label mismatch raises), so modules can
    declare their instruments at import time without coordination.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._instruments: Dict[str, _Instrument] = {}

    def _register(self, cls, name, help_text, labelnames, **kwargs) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with a different "
                        f"kind or label set"
                    )
                return existing
            instrument = cls(name, help_text, labelnames, self._lock, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> Counter:
        """Create (or fetch) a :class:`Counter`."""
        return self._register(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> Gauge:
        """Create (or fetch) a :class:`Gauge`."""
        return self._register(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Create (or fetch) a :class:`Histogram` with fixed buckets."""
        return self._register(
            Histogram, name, help_text, labelnames, buckets=tuple(buckets)
        )

    def reset(self) -> None:
        """Zero the registry by dropping every instrument's series.

        Registrations survive — modules hold instrument references created
        at import time, so dropping the instruments themselves would orphan
        those handles.  Tests isolate themselves with this.
        """
        with self._lock:
            for instrument in self._instruments.values():
                instrument.clear()

    # -- exposition ----------------------------------------------------------

    def render(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4).

        Deterministic: instruments sorted by name, children by label
        values, histogram buckets ascending with a trailing ``+Inf``.
        """
        lines: List[str] = []
        with self._lock:
            instruments = sorted(self._instruments.items())
        for name, instrument in instruments:
            children = instrument._sorted_children()
            if not children:
                continue
            lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            labelnames = instrument.labelnames
            for labelvalues, child in children:
                labels = _label_str(labelnames, labelvalues)
                if instrument.kind == "histogram":
                    prefix = labels[1:-1] + "," if labels else ""
                    cumulative = 0
                    for i, bound in enumerate(child.buckets):
                        cumulative = child.counts[i]
                        lines.append(
                            f'{name}_bucket{{{prefix}le="{_format_value(bound)}"}}'
                            f" {cumulative}"
                        )
                    lines.append(f'{name}_bucket{{{prefix}le="+Inf"}} {child.count}')
                    lines.append(f"{name}_sum{labels} {_format_value(child.total)}")
                    lines.append(f"{name}_count{labels} {child.count}")
                else:
                    lines.append(f"{name}{labels} {_format_value(child.value)}")
        return "\n".join(lines) + "\n" if lines else ""

    def collect(self) -> dict:
        """A JSON-able snapshot of every instrument (folded into ``/stats``).

        Counters and gauges map label strings (or ``""`` when unlabeled) to
        values; histograms to ``{"buckets": ..., "sum": ..., "count": ...}``.
        """
        document: Dict[str, dict] = {}
        with self._lock:
            instruments = sorted(self._instruments.items())
        for name, instrument in instruments:
            children = instrument._sorted_children()
            if not children:
                continue
            values = {}
            for labelvalues, child in children:
                key = _label_str(instrument.labelnames, labelvalues)
                if instrument.kind == "histogram":
                    values[key] = child.snapshot()
                else:
                    values[key] = child.value
            document[name] = {"type": instrument.kind, "values": values}
        return document


#: The process-global registry the service exposes at ``GET /metrics``.
REGISTRY = MetricsRegistry()
