"""Per-step join-plan profiling behind a single enabled flag.

When :data:`PROFILER` is enabled, both executors accumulate per-step
counters onto the plan they run — candidate rows entering each step,
postings probe groups evaluated, rows surviving verification, negation
pre-filter hits, and per-step wall time — without changing what they
compute (``tests/test_obs_neutrality.py`` pins byte-parity with profiling
on).  The counters surface two ways:

* :meth:`repro.engine.plan.CompiledRule.explain` renders them inline with
  the compiled step order — the EXPLAIN output; and
* ``benchmarks/harness.py --profile out.json`` snapshots the hottest plans
  per scenario (:meth:`Profiler.snapshot`) into a JSON artifact.

Cost model: disabled, the executors pay one attribute read and branch per
*plan execution* (not per row).  Enabled, the batch executor adds one
timestamp pair and a handful of integer adds per step-batch; the row
executor wraps its backtracker generator, so its per-step numbers count
candidates and survivors exactly but its plan-level time includes consumer
time between yields (batch mode, the default, is the accurate one — see
``docs/observability.md``).
"""

from __future__ import annotations

import threading
from typing import List, Optional


class StepProfile:
    """Accumulated counters for one join step of one plan."""

    __slots__ = ("rows_in", "probes", "rows_out", "time_ns")

    def __init__(self):
        self.rows_in = 0
        self.probes = 0
        self.rows_out = 0
        self.time_ns = 0

    def as_dict(self) -> dict:
        """JSON-able view (time in microseconds)."""
        return {
            "rows_in": self.rows_in,
            "probes": self.probes,
            "rows_out": self.rows_out,
            "time_us": self.time_ns // 1000,
        }


class PlanProfile:
    """Accumulated counters for one compiled :class:`~repro.engine.plan.JoinPlan`.

    Attached lazily to the plan's ``profile`` slot on its first profiled
    execution and registered with :data:`PROFILER` for snapshots.  The
    negation counters live here (not per step) because the negation
    pre-filter runs over the finished match rows, after the join.
    """

    __slots__ = (
        "label",
        "executions",
        "rows_out",
        "time_ns",
        "steps",
        "neg_in",
        "neg_blocked",
    )

    def __init__(self, label: str, n_steps: int):
        self.label = label
        self.executions = 0
        self.rows_out = 0
        self.time_ns = 0
        self.steps = [StepProfile() for _ in range(n_steps)]
        self.neg_in = 0
        self.neg_blocked = 0

    def as_dict(self) -> dict:
        """JSON-able view used by the harness ``--profile`` artifact."""
        return {
            "label": self.label,
            "executions": self.executions,
            "rows_out": self.rows_out,
            "time_us": self.time_ns // 1000,
            "negation": {"rows_in": self.neg_in, "blocked": self.neg_blocked},
            "steps": [step.as_dict() for step in self.steps],
        }


class Profiler:
    """The process-global plan-profile registry and master switch.

    ``enabled`` is the one flag both executors read; :meth:`plan_profile`
    hands out (and registers) the per-plan accumulator.  Profiles survive
    across executions until :meth:`reset`, so a snapshot covers everything
    since the last reset — the harness resets between scenario records.
    """

    def __init__(self):
        self.enabled = False
        self._lock = threading.Lock()
        self._profiles: List[PlanProfile] = []

    def enable(self) -> None:
        """Start accumulating (existing profiles keep accumulating)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop accumulating; collected profiles stay readable."""
        self.enabled = False

    def plan_profile(self, plan, label: Optional[str] = None) -> PlanProfile:
        """The accumulator attached to ``plan`` (created and registered once)."""
        profile = plan.profile
        if profile is None:
            if label is None:
                label = " AND ".join(str(atom) for atom in plan.atoms) or "<empty>"
            profile = PlanProfile(label, len(plan.steps))
            plan.profile = profile
            with self._lock:
                self._profiles.append(profile)
        return profile

    def reset(self) -> None:
        """Forget every collected profile (plans re-register on next use)."""
        with self._lock:
            for profile in self._profiles:
                profile.executions = 0
                profile.rows_out = 0
                profile.time_ns = 0
                profile.neg_in = 0
                profile.neg_blocked = 0
                for step in profile.steps:
                    step.rows_in = 0
                    step.probes = 0
                    step.rows_out = 0
                    step.time_ns = 0

    def snapshot(self, top: Optional[int] = None) -> List[dict]:
        """The executed plans' profiles, hottest (most time) first.

        ``top`` caps the list; plans that never executed since the last
        reset are omitted.
        """
        with self._lock:
            profiles = [p for p in self._profiles if p.executions]
        profiles.sort(key=lambda p: (-p.time_ns, -p.rows_out, p.label))
        if top is not None:
            profiles = profiles[:top]
        return [profile.as_dict() for profile in profiles]


#: The process-global profiler both executors consult.
PROFILER = Profiler()
