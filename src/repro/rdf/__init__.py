"""RDF data model substrate.

The paper works with RDF graphs over a set ``U`` of URIs (shared with the
relational model's constants) and blank nodes from ``B`` (shared with the
labelled nulls).  This package provides triples, an indexed
:class:`RDFGraph`, the standard RDF/RDFS/OWL vocabulary URIs, a small
N-Triples-style parser/serialiser, and the translation ``tau_db(G)`` into the
relational schema ``{triple(·,·,·)}`` used throughout Section 5.
"""

from repro.rdf.namespaces import RDF, RDFS, OWL, XSD, Namespace
from repro.rdf.graph import Triple, RDFGraph, triple_atom, graph_to_database, database_to_graph
from repro.rdf.parser import parse_ntriples, serialize_ntriples, RDFParseError

__all__ = [
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "Namespace",
    "Triple",
    "RDFGraph",
    "triple_atom",
    "graph_to_database",
    "database_to_graph",
    "parse_ntriples",
    "serialize_ntriples",
    "RDFParseError",
]
