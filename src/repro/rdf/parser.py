"""A small N-Triples-style reader/writer.

The format accepted is a pragmatic subset of N-Triples, sufficient for the
examples and workloads of this library::

    dbUllman is_author_of "The Complete Book" .
    dbUllman name "Jeffrey Ullman" .
    dbAho is_coauthor_of dbUllman .
    r1 rdf:type owl:Restriction .
    <http://dbpedia.org/resource/Jeffrey_Ullman> owl:sameAs yagoUllman .

Each line holds one triple terminated by ``.``; components are bare prefixed
names, ``<...>`` URIs, ``"..."`` literals (stored as constants) or ``_:b``
blank nodes.  Lines starting with ``#`` are comments.
"""

from __future__ import annotations

import re
from typing import List

from repro.datalog.terms import Constant, Null
from repro.rdf.graph import RDFGraph, Triple


class RDFParseError(ValueError):
    """Raised on malformed triple lines."""


_COMPONENT_RE = re.compile(
    r"""
    \s*
    (?:
        (?P<uri><[^<>\s]*>)
      | (?P<literal>"(?:[^"\\]|\\.)*")
      | (?P<blank>_:[A-Za-z0-9_]+)
      | (?P<name>[A-Za-z0-9_][A-Za-z0-9_:\-/#.]*)
    )
    """,
    re.VERBOSE,
)


def _parse_component(text: str, position: int):
    match = _COMPONENT_RE.match(text, position)
    if match is None:
        raise RDFParseError(f"cannot parse a term at ...{text[position:position + 30]!r}")
    if match.group("uri"):
        return Constant(match.group("uri")[1:-1]), match.end()
    if match.group("literal"):
        raw = match.group("literal")[1:-1]
        return Constant(raw.replace('\\"', '"')), match.end()
    if match.group("blank"):
        return Null(match.group("blank")), match.end()
    name = match.group("name")
    # Strip a trailing '.' that belongs to the statement terminator.
    if name.endswith("."):
        name = name[:-1]
        return Constant(name), match.start() + len(name)
    return Constant(name), match.end()


def parse_ntriples(text: str) -> RDFGraph:
    """Parse triple lines into an :class:`RDFGraph`."""
    graph = RDFGraph()
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            subject, position = _parse_component(line, 0)
            predicate, position = _parse_component(line, position)
            object_, position = _parse_component(line, position)
        except RDFParseError as error:
            raise RDFParseError(f"line {line_number}: {error}") from error
        remainder = line[position:].strip()
        if remainder not in ("", "."):
            raise RDFParseError(
                f"line {line_number}: unexpected trailing content {remainder!r}"
            )
        graph.add(Triple(subject, predicate, object_))
    return graph


def _format_node(node) -> str:
    if isinstance(node, Null):
        return node.label if node.label.startswith("_:") else f"_:{node.label}"
    value = node.value
    if re.fullmatch(r"[A-Za-z0-9_][A-Za-z0-9_:\-/#.]*", value) and not value.startswith("http"):
        return value
    if value.startswith("http://") or value.startswith("https://"):
        return f"<{value}>"
    escaped = value.replace('"', '\\"')
    return f'"{escaped}"'


def serialize_ntriples(graph: RDFGraph) -> str:
    """Serialise a graph in the same line-per-triple format."""
    lines: List[str] = []
    for triple in sorted(graph, key=lambda t: (str(t.subject), str(t.predicate), str(t.object))):
        lines.append(
            f"{_format_node(triple.subject)} {_format_node(triple.predicate)} "
            f"{_format_node(triple.object)} ."
        )
    return "\n".join(lines) + ("\n" if lines else "")
