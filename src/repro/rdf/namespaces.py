"""RDF, RDFS, OWL and XSD vocabulary URIs.

Following the paper, URIs are plain constants; prefixed names such as
``rdf:type`` are kept in their prefixed form (the paper writes them that way
in all its rules), so the constants produced here are directly comparable to
the ones produced by :func:`repro.datalog.parser.parse_atom` on rule text like
``triple(?X, rdf:type, owl:Class)``.
"""

from __future__ import annotations

from typing import Dict

from repro.datalog.terms import Constant


class Namespace:
    """A prefix helper: ``OWL = Namespace("owl"); OWL.Class == Constant("owl:Class")``."""

    def __init__(self, prefix: str):
        self._prefix = prefix

    @property
    def prefix(self) -> str:
        """The namespace prefix string."""
        return self._prefix

    def term(self, local_name: str) -> Constant:
        """The constant ``prefix:local_name``."""
        return Constant(f"{self._prefix}:{local_name}")

    def __getattr__(self, local_name: str) -> Constant:
        if local_name.startswith("_"):
            raise AttributeError(local_name)
        return self.term(local_name)

    def __getitem__(self, local_name: str) -> Constant:
        return self.term(local_name)

    def __repr__(self) -> str:
        return f"Namespace({self._prefix!r})"


class _RDFNamespace(Namespace):
    """``rdf:`` with the member used by the paper."""

    @property
    def type(self) -> Constant:  # noqa: A003 - mirrors the vocabulary name
        return self.term("type")


class _RDFSNamespace(Namespace):
    @property
    def subClassOf(self) -> Constant:
        return self.term("subClassOf")

    @property
    def subPropertyOf(self) -> Constant:
        return self.term("subPropertyOf")


class _OWLNamespace(Namespace):
    @property
    def Class(self) -> Constant:
        return self.term("Class")

    @property
    def ObjectProperty(self) -> Constant:
        return self.term("ObjectProperty")

    @property
    def Restriction(self) -> Constant:
        return self.term("Restriction")

    @property
    def onProperty(self) -> Constant:
        return self.term("onProperty")

    @property
    def someValuesFrom(self) -> Constant:
        return self.term("someValuesFrom")

    @property
    def Thing(self) -> Constant:
        return self.term("Thing")

    @property
    def inverseOf(self) -> Constant:
        return self.term("inverseOf")

    @property
    def sameAs(self) -> Constant:
        return self.term("sameAs")

    @property
    def disjointWith(self) -> Constant:
        return self.term("disjointWith")

    @property
    def propertyDisjointWith(self) -> Constant:
        return self.term("propertyDisjointWith")


RDF = _RDFNamespace("rdf")
RDFS = _RDFSNamespace("rdfs")
OWL = _OWLNamespace("owl")
XSD = Namespace("xsd")


#: The paper's rules use ``owl:someValueFrom`` (singular) in the fixed program
#: of Section 5.2 while the motivating Section 2 triples use
#: ``owl:someValuesFrom``; we normalise on the standard plural spelling
#: everywhere and expose this alias for readers comparing against the text.
SOME_VALUES_FROM = OWL.someValuesFrom


def common_prefixes() -> Dict[str, Namespace]:
    """The namespaces understood by the N-Triples-style parser."""
    return {"rdf": RDF, "rdfs": RDFS, "owl": OWL, "xsd": XSD}
