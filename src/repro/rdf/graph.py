"""RDF triples, graphs and the translation ``tau_db(G)``.

An RDF triple is ``(s, p, o) in U x U x U`` and an RDF graph is a finite set
of triples (Section 3.1; blank nodes and literals are deliberately excluded
from graphs, per footnote 5 of the paper, though the data model tolerates
nulls so that CONSTRUCT-style outputs with invented blank nodes can still be
represented).  ``tau_db(G) = { triple(a, b, c) | (a, b, c) in G }`` is the
relational view used by every translation of Section 5.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set, Tuple, Union

from repro.datalog.atoms import Atom
from repro.datalog.database import Database, Instance
from repro.datalog.terms import Constant, Null

#: The relational predicate storing RDF triples.
TRIPLE_PREDICATE = "triple"

TripleLike = Tuple[Union[Constant, Null, str], Union[Constant, Null, str], Union[Constant, Null, str]]


def _as_node(value: Union[Constant, Null, str]) -> Union[Constant, Null]:
    if isinstance(value, (Constant, Null)):
        return value
    if isinstance(value, str):
        if value.startswith("_:"):
            return Null(value)
        return Constant(value)
    raise TypeError(f"RDF nodes must be URIs (constants), blank nodes or strings; got {value!r}")


class Triple:
    """An RDF triple ``(subject, predicate, object)``."""

    __slots__ = ("subject", "predicate", "object")

    def __init__(
        self,
        subject: Union[Constant, Null, str],
        predicate: Union[Constant, Null, str],
        object: Union[Constant, Null, str],
    ):
        self.subject = _as_node(subject)
        self.predicate = _as_node(predicate)
        self.object = _as_node(object)

    def __iter__(self) -> Iterator[Union[Constant, Null]]:
        return iter((self.subject, self.predicate, self.object))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Triple) and tuple(self) == tuple(other)

    def __hash__(self) -> int:
        return hash((Triple, self.subject, self.predicate, self.object))

    def __repr__(self) -> str:
        return f"Triple({self.subject}, {self.predicate}, {self.object})"

    def __str__(self) -> str:
        return f"({self.subject}, {self.predicate}, {self.object})"

    def to_atom(self) -> Atom:
        """The relational fact ``triple(s, p, o)``."""
        return Atom(TRIPLE_PREDICATE, (self.subject, self.predicate, self.object))

    @property
    def is_ground(self) -> bool:
        """True iff every component is a URI (no blank nodes, no variables)."""
        return all(isinstance(t, Constant) for t in self)


def triple_atom(
    subject: Union[Constant, Null, str],
    predicate: Union[Constant, Null, str],
    object: Union[Constant, Null, str],
) -> Atom:
    """Shorthand for ``Triple(s, p, o).to_atom()``."""
    return Triple(subject, predicate, object).to_atom()


class RDFGraph:
    """A finite set of RDF triples with subject/predicate/object indexes."""

    def __init__(self, triples: Iterable[Union[Triple, TripleLike]] = ()):
        # Insertion-ordered (dict-backed): iteration and ``to_database()``
        # must not depend on the per-process string-hash seed, or downstream
        # null numbering (e.g. the anonymisation example) flips between
        # runs and example outputs stop being byte-comparable across modes.
        self._triples: Dict[Triple, None] = {}
        self._by_subject: Dict[Union[Constant, Null], Set[Triple]] = defaultdict(set)
        self._by_predicate: Dict[Union[Constant, Null], Set[Triple]] = defaultdict(set)
        self._by_object: Dict[Union[Constant, Null], Set[Triple]] = defaultdict(set)
        # Mutation counter: lets derived views (the SPARQL evaluator's
        # interned ID view) cache against the graph and invalidate exactly
        # when the triple set changes.
        self._version = 0
        for triple in triples:
            self.add(triple)

    # -- mutation -----------------------------------------------------------

    def add(self, triple: Union[Triple, TripleLike]) -> bool:
        """Add a triple; returns True if it was new."""
        if not isinstance(triple, Triple):
            triple = Triple(*triple)
        if triple in self._triples:
            return False
        self._triples[triple] = None
        self._by_subject[triple.subject].add(triple)
        self._by_predicate[triple.predicate].add(triple)
        self._by_object[triple.object].add(triple)
        self._version += 1
        return True

    def add_all(self, triples: Iterable[Union[Triple, TripleLike]]) -> int:
        """Add many triples; returns the number genuinely new."""
        return sum(1 for t in triples if self.add(t))

    def discard(self, triple: Union[Triple, TripleLike]) -> bool:
        """Remove a triple if present; returns True if it was there."""
        if not isinstance(triple, Triple):
            triple = Triple(*triple)
        if triple not in self._triples:
            return False
        del self._triples[triple]
        self._by_subject[triple.subject].discard(triple)
        self._by_predicate[triple.predicate].discard(triple)
        self._by_object[triple.object].discard(triple)
        self._version += 1
        return True

    def union(self, other: "RDFGraph") -> "RDFGraph":
        """A new graph holding the triples of both graphs."""
        merged = RDFGraph(self._triples)
        merged.add_all(other)
        return merged

    def __or__(self, other: "RDFGraph") -> "RDFGraph":
        return self.union(other)

    # -- set protocol -----------------------------------------------------------

    def __contains__(self, triple: Union[Triple, TripleLike]) -> bool:
        if not isinstance(triple, Triple):
            triple = Triple(*triple)
        return triple in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __len__(self) -> int:
        return len(self._triples)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RDFGraph) and self._triples.keys() == other._triples.keys()

    def __repr__(self) -> str:
        return f"RDFGraph({len(self._triples)} triples)"

    def copy(self) -> "RDFGraph":
        """An independent graph with the same triples."""
        return RDFGraph(self._triples)

    # -- lookup -------------------------------------------------------------------

    def triples(
        self,
        subject: Optional[Union[Constant, Null, str]] = None,
        predicate: Optional[Union[Constant, Null, str]] = None,
        object: Optional[Union[Constant, Null, str]] = None,
    ) -> Iterator[Triple]:
        """All triples matching the given (possibly ``None``) components."""
        subject = _as_node(subject) if subject is not None else None
        predicate = _as_node(predicate) if predicate is not None else None
        object = _as_node(object) if object is not None else None

        candidates: Optional[Set[Triple]] = None
        for index, key in (
            (self._by_subject, subject),
            (self._by_predicate, predicate),
            (self._by_object, object),
        ):
            if key is None:
                continue
            bucket = index.get(key, set())
            if candidates is None or len(bucket) < len(candidates):
                candidates = bucket
        if candidates is None:
            candidates = self._triples
        for triple in candidates:
            if subject is not None and triple.subject != subject:
                continue
            if predicate is not None and triple.predicate != predicate:
                continue
            if object is not None and triple.object != object:
                continue
            yield triple

    def subjects(self) -> FrozenSet[Union[Constant, Null]]:
        """All subject nodes."""
        return frozenset(t.subject for t in self._triples)

    def predicates(self) -> FrozenSet[Union[Constant, Null]]:
        """All predicate nodes."""
        return frozenset(t.predicate for t in self._triples)

    def objects(self) -> FrozenSet[Union[Constant, Null]]:
        """All object nodes."""
        return frozenset(t.object for t in self._triples)

    def nodes(self) -> FrozenSet[Union[Constant, Null]]:
        """Every URI/blank node occurring anywhere in the graph."""
        nodes: Set[Union[Constant, Null]] = set()
        for triple in self._triples:
            nodes.update(triple)
        return frozenset(nodes)

    def constants(self) -> FrozenSet[Constant]:
        """Every URI (constant) occurring in the graph."""
        return frozenset(n for n in self.nodes() if isinstance(n, Constant))

    # -- relational view ------------------------------------------------------------

    def to_database(self) -> Database:
        """``tau_db(G)``: the database over ``{triple(·,·,·)}``.

        Only ground triples (URIs in every position) are representable in a
        database; graphs containing blank nodes should use
        :meth:`to_instance` instead.
        """
        for triple in self._triples:
            if not triple.is_ground:
                raise ValueError(
                    f"graph contains the non-ground triple {triple}; use to_instance()"
                )
        database = Database()
        database.bulk_load(t.to_atom() for t in self._triples)
        return database

    def to_instance(self) -> Instance:
        """The instance view, allowing blank nodes (labelled nulls)."""
        instance = Instance()
        instance.bulk_load(t.to_atom() for t in self._triples)
        return instance


def graph_to_database(graph: RDFGraph) -> Database:
    """Module-level alias for ``graph.to_database()`` (the paper's ``tau_db``)."""
    return graph.to_database()


def database_to_graph(facts: Iterable[Atom], predicate: str = TRIPLE_PREDICATE) -> RDFGraph:
    """Read an RDF graph back from ``triple(·,·,·)`` facts (CONSTRUCT-style output)."""
    graph = RDFGraph()
    for atom in facts:
        if atom.predicate != predicate or atom.arity != 3:
            continue
        graph.add(Triple(*atom.terms))  # type: ignore[arg-type]
    return graph
