"""Tests for program expressive power (Theorems 7.1 / 7.2)."""

import pytest

from repro.datalog.parser import parse_program
from repro.reductions.expressiveness import (
    datalog_pep_coexistence,
    pep_output_rules,
    pep_witness_database,
    pep_witness_program,
    warded_pep_separation,
)


class TestWitnesses:
    def test_witness_program_is_warded_but_not_datalog(self):
        from repro.analysis.guards import is_warded

        program = pep_witness_program()
        assert program.has_existentials
        assert is_warded(program)

    def test_witness_database(self):
        database = pep_witness_database()
        assert len(database) == 1

    def test_output_rules_share_the_output_predicate(self):
        lambda1, lambda2 = pep_output_rules()
        assert lambda1.rules[0].head[0].predicate == "q"
        assert lambda2.rules[0].head[0].predicate == "q"


class TestTheorem71:
    def test_warded_program_separates(self):
        """() ∈ Q1(D) and () ∉ Q2(D) for the warded witness program."""
        separation = warded_pep_separation()
        assert separation.q1_holds
        assert not separation.q2_holds
        assert separation.separates

    @pytest.mark.parametrize(
        "program_text",
        [
            "",  # the empty program
            "p(?X) -> s(?X, ?X).",
            "p(?X) -> s(?X, c).",
            "p(?X), p(?Y) -> s(?X, ?Y).",
            "p(?X) -> r(?X). r(?X) -> s(?X, ?X).",
            "p(?X) -> s(c, c).",
        ],
    )
    def test_datalog_programs_cannot_separate(self, program_text):
        """For Datalog programs the two memberships coexist (the Theorem 7.1 argument)."""
        program = parse_program(program_text)
        assert datalog_pep_coexistence(program)

    def test_existential_program_rejected_by_coexistence_check(self):
        with pytest.raises(ValueError):
            datalog_pep_coexistence(pep_witness_program())
