"""Unit tests for the stratified semantics Pi(D) and query evaluation."""

import pytest

from repro.datalog.database import Database
from repro.datalog.parser import parse_atom, parse_program
from repro.datalog.program import Query
from repro.datalog.rules import RuleError
from repro.datalog.semantics import (
    INCONSISTENT,
    StratifiedSemantics,
    eval_decision,
    evaluate_program,
    evaluate_query,
)
from repro.datalog.terms import Constant


def db(*facts):
    return Database([parse_atom(f) for f in facts])


class TestStratifiedSemantics:
    def test_plain_materialisation(self):
        program = parse_program("e(?X, ?Y) -> t(?X, ?Y). e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).")
        result = evaluate_program(program, db("e(a,b)", "e(b,c)"))
        assert parse_atom("t(a,c)") in result

    def test_negation_uses_lower_strata(self):
        program = parse_program(
            """
            e(?X, ?Y) -> r(?X, ?Y).
            node(?X), not r(?X, ?X) -> noloop(?X).
            """
        )
        result = evaluate_program(program, db("node(a)", "node(b)", "e(b,b)"))
        assert parse_atom("noloop(a)") in result
        assert parse_atom("noloop(b)") not in result

    def test_constraint_violation_yields_top(self):
        program = parse_program(
            """
            p(?X) -> q(?X).
            q(?X), forbidden(?X) -> false.
            """
        )
        assert evaluate_program(program, db("p(a)", "forbidden(a)")) is INCONSISTENT
        assert evaluate_program(program, db("p(a)")) is not INCONSISTENT

    def test_violated_constraints_reported(self):
        program = parse_program("p(?X), q(?X) -> false. p(?X), r(?X) -> false.")
        semantics = StratifiedSemantics(program)
        violated = semantics.violated_constraints(db("p(a)", "q(a)"))
        assert len(violated) == 1

    def test_inconsistent_is_falsy_singleton(self):
        assert not INCONSISTENT
        assert repr(INCONSISTENT) == "INCONSISTENT"


class TestQueryEvaluation:
    def test_answers_are_constant_tuples(self):
        program = parse_program("e(?X, ?Y) -> ans(?X, ?Y).")
        query = Query(program, "ans")
        answers = evaluate_query(query, db("e(a,b)"))
        assert answers == {(Constant("a"), Constant("b"))}

    def test_null_answers_filtered_out(self):
        program = parse_program("p(?X) -> exists ?Y . ans(?X, ?Y).")
        query = Query(program, "ans")
        answers = evaluate_query(query, db("p(a)"))
        assert answers == frozenset()

    def test_top_propagates(self):
        program = parse_program("p(?X) -> ans(?X). p(?X), bad(?X) -> false.")
        query = Query(program, "ans")
        assert evaluate_query(query, db("p(a)", "bad(a)")) is INCONSISTENT

    def test_eval_decision_convention(self):
        program = parse_program("p(?X) -> ans(?X). p(?X), bad(?X) -> false.")
        query = Query(program, "ans")
        # Consistent: membership decides.
        assert eval_decision(query, db("p(a)"), (Constant("a"),))
        assert not eval_decision(query, db("p(a)"), (Constant("b"),))
        # Inconsistent: trivially true (Q(D) = ⊤ implies anything).
        assert eval_decision(query, db("p(a)", "bad(a)"), (Constant("zzz"),))

    def test_output_predicate_must_not_occur_in_bodies(self):
        program = parse_program("p(?X) -> ans(?X). ans(?X) -> q(?X).")
        with pytest.raises(RuleError):
            Query(program, "ans")

    def test_unknown_output_arity_requires_hint(self):
        program = parse_program("p(?X) -> q(?X).")
        with pytest.raises(RuleError):
            Query(program, "missing")
        query = Query(program, "missing", output_arity=1)
        assert evaluate_query(query, db("p(a)")) == frozenset()
