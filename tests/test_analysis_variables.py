"""Tests for the harmless / harmful / dangerous variable classification."""

from repro.analysis.affected import affected_positions
from repro.analysis.variables import (
    classify_rule_variables,
    dangerous_variables,
    harmful_variables,
    harmless_variables,
)
from repro.datalog.parser import parse_program
from repro.datalog.terms import Variable

X, Y, Z, W, V, U = (Variable(n) for n in "XYZWVU")


def example_41_program():
    return parse_program(
        """
        p(?X, ?Y), s(?Y, ?Z) -> exists ?W . t(?Y, ?X, ?W).
        t(?X, ?Y, ?Z) -> exists ?W . p(?W, ?Z).
        t(?X, ?Y, ?Z) -> s(?X, ?Y).
        """
    )


class TestClassification:
    def test_datalog_rules_are_all_harmless(self):
        program = parse_program("e(?X, ?Y), f(?Y, ?Z) -> g(?X, ?Z).")
        rule = program.rules[0]
        classification = classify_rule_variables(rule, program)
        assert classification.harmless == {X, Y, Z}
        assert classification.harmful == frozenset()
        assert classification.dangerous == frozenset()

    def test_example_41_first_rule(self):
        program = example_41_program()
        rule = program.rules[0]
        classification = classify_rule_variables(rule, program)
        # ?X occurs only at p[1] (affected) -> harmful and in the head -> dangerous;
        # ?Y occurs at p[2] (affected) and s[1] (non-affected) -> harmless;
        # ?Z occurs at s[2] (affected) only -> harmful, but not in the head.
        assert classification.is_dangerous(X)
        assert classification.is_harmless(Y)
        assert classification.is_harmful(Z) and not classification.is_dangerous(Z)

    def test_example_41_second_rule(self):
        program = example_41_program()
        rule = program.rules[1]
        classification = classify_rule_variables(rule, program)
        # ?Z occurs at t[3] (affected) and is propagated to the head.
        assert classification.is_dangerous(Z)
        # ?X occurs at t[1] which is not affected.
        assert classification.is_harmless(X)

    def test_convenience_wrappers(self):
        program = example_41_program()
        rule = program.rules[0]
        assert dangerous_variables(rule, program) == {X}
        assert Z in harmful_variables(rule, program)
        assert Y in harmless_variables(rule, program)

    def test_precomputed_affected_positions(self):
        program = example_41_program()
        affected = affected_positions(program)
        rule = program.rules[2]
        classification = classify_rule_variables(rule, program, affected)
        # ?X at t[1] harmless, ?Y at t[2] harmful and in the head -> dangerous.
        assert classification.is_harmless(X)
        assert classification.is_dangerous(Y)

    def test_negative_atoms_do_not_affect_classification(self):
        program = parse_program(
            """
            p(?X) -> exists ?Y . s(?X, ?Y).
            s(?X, ?Y), base(?X), not bad(?X) -> t(?X).
            """
        )
        rule = [r for r in program.rules if r.has_negation][0]
        classification = classify_rule_variables(
            rule.positive_part(), program.positive_program()
        )
        assert classification.is_harmless(X)
        assert classification.is_harmful(Y)
