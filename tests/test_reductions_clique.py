"""Tests for the Example 4.3 k-clique reduction."""

import pytest

from repro.analysis.guards import classify_program
from repro.datalog.parser import parse_atom
from repro.reductions.clique import (
    clique_database,
    clique_program,
    clique_query,
    contains_clique,
    contains_clique_bruteforce,
)
from repro.workloads.graphs import random_undirected_graph

TRIANGLE = [("a", "b"), ("b", "c"), ("a", "c")]
PATH = [("a", "b"), ("b", "c")]
SQUARE = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]
K4 = [("a", "b"), ("a", "c"), ("a", "d"), ("b", "c"), ("b", "d"), ("c", "d")]


class TestDatabaseEncoding:
    def test_nodes_edges_and_successors(self):
        database = clique_database(TRIANGLE, 3)
        assert parse_atom("node0(a)") in database
        assert parse_atom("edge0(a,b)") in database and parse_atom("edge0(b,a)") in database
        assert parse_atom("succ0(0,1)") in database and parse_atom("succ0(2,3)") in database

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            clique_database(TRIANGLE, 0)


class TestProgramShape:
    def test_query_is_triq_but_not_triq_lite(self):
        report = classify_program(clique_program())
        assert report.is_triq and not report.is_triq_lite

    def test_query_object_validates(self):
        assert clique_query().output_arity == 0


class TestCorrectness:
    @pytest.mark.parametrize(
        "edges,k,expected",
        [
            (TRIANGLE, 3, True),
            (TRIANGLE, 2, True),
            (PATH, 3, False),
            (PATH, 2, True),
            (SQUARE, 3, False),
            (K4, 3, True),
        ],
    )
    def test_against_bruteforce(self, edges, k, expected):
        assert contains_clique_bruteforce(edges, k) is expected
        assert contains_clique(edges, k) is expected

    def test_random_graphs_agree_with_bruteforce(self):
        for seed in range(3):
            edges = random_undirected_graph(5, 0.5, seed=seed)
            if not edges:
                continue
            for k in (2, 3):
                assert contains_clique(edges, k) == contains_clique_bruteforce(edges, k)
