"""Tests for the Section 6.3 rule normal forms."""

from repro.analysis.guards import is_warded
from repro.core.normalization import (
    normalize_single_existential,
    normalize_warded_program,
    split_existentials,
    split_head_grounded,
)
from repro.core.warded_engine import WardedEngine
from repro.datalog.database import Database
from repro.datalog.parser import parse_atom, parse_program


def db(*facts):
    return Database([parse_atom(f) for f in facts])


class TestSingleExistential:
    def test_rule_with_one_existential_untouched(self):
        program = parse_program("p(?X) -> exists ?Y . s(?X, ?Y).")
        assert split_existentials(program.rules[0]) == [program.rules[0]]

    def test_rule_with_two_existentials_split(self):
        program = parse_program("p(?X) -> exists ?Y ?Z . s(?X, ?Y, ?Z).")
        rules = split_existentials(program.rules[0])
        assert len(rules) == 3
        assert all(len(rule.existential_variables) <= 1 for rule in rules)

    def test_ground_semantics_preserved(self):
        program = parse_program(
            """
            p(?X) -> exists ?Y ?Z . s(?X, ?Y, ?Z).
            s(?X, ?Y, ?Z) -> witnessed(?X).
            """
        )
        normalized = normalize_single_existential(program)
        database = db("p(a)", "p(b)")
        original = WardedEngine(program, check_warded=False).ground_semantics(database)
        rewritten = WardedEngine(normalized, check_warded=False).ground_semantics(database)
        original_facts = {a for a in original if not a.predicate.startswith("__")}
        rewritten_facts = {a for a in rewritten if not a.predicate.startswith("__")}
        assert original_facts == rewritten_facts

    def test_wardedness_preserved(self):
        program = parse_program(
            """
            coauthor(?X, ?Y) -> exists ?Z ?W . wrote(?X, ?Z, ?W), wrote(?Y, ?Z, ?W).
            """
        )
        assert is_warded(program)
        assert is_warded(normalize_single_existential(program))


class TestHeadGroundedSplit:
    def test_datalog_program_unchanged_semantics(self):
        program = parse_program(
            """
            e(?X, ?Y), f(?Y, ?Z), g(?Z, ?W) -> t(?X, ?W).
            """
        )
        normalized = split_head_grounded(program)
        database = db("e(a,b)", "f(b,c)", "g(c,d)")
        original = WardedEngine(program, check_warded=False).ground_semantics(database)
        rewritten = WardedEngine(normalized, check_warded=False).ground_semantics(database)
        assert original.with_predicate("t") == rewritten.with_predicate("t")

    def test_warded_program_semantics_preserved(self):
        program = parse_program(
            """
            person(?X) -> exists ?Y . parent(?X, ?Y).
            parent(?X, ?Y), alive(?X), registered(?X) -> tracked(?X).
            """
        )
        normalized = normalize_warded_program(program)
        database = db("person(a)", "alive(a)", "registered(a)", "person(b)", "alive(b)")
        original = WardedEngine(program, check_warded=False).ground_semantics(database)
        rewritten = WardedEngine(normalized, check_warded=False).ground_semantics(database)
        assert original.with_predicate("tracked") == rewritten.with_predicate("tracked")

    def test_normalized_owl_program_keeps_entailments(self):
        from repro.owl.entailment_rules import owl2ql_core_program
        from repro.workloads.ontologies import chain_ontology_graph

        program = owl2ql_core_program()
        normalized = normalize_warded_program(program)
        database = chain_ontology_graph(2).to_database()
        original = WardedEngine(program, check_warded=False).ground_semantics(database)
        rewritten = WardedEngine(normalized, check_warded=False).ground_semantics(database)
        assert original.with_predicate("triple1") == rewritten.with_predicate("triple1")
        assert original.with_predicate("type") == rewritten.with_predicate("type")
