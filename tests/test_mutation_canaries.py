"""Mutation canaries: planted engine bugs must make the parity oracles fail.

The engine's correctness story leans on differential testing — row vs batch
vs parallel, warm vs cold, packed vs tuple — so the one failure mode the
test tree cannot afford is an oracle that silently stopped discriminating.
Each canary here *plants* a seeded divergence at a load-bearing site, runs
the same differential assertion the real parity suites pin, and requires it
to **fail**; the clean configuration is asserted to pass immediately before
and after, so a red canary always means "the oracle went blind", never "the
engine broke".

Four mutations, one per protocol layer:

* **skip the replica deletion replay** —
  :meth:`PredicateIndex.tombstone_row` is how worker replicas and their
  sharded step-0 stores apply parent-side retractions; a no-op here leaves
  deleted facts matchable inside the workers, and the parallel
  retract-vs-cold oracle must notice;
* **perturb one probe verdict** — :func:`kernels.extensions` is the packed
  bulk-extension kernel of the batch executor; swallowing one surviving
  extension must break row/batch byte-parity;
* **drop one head fire** — :meth:`Instance.add_key` lands batch-mode head
  facts; pretending one genuinely-new fact was a duplicate must break the
  same parity (the row path lands heads through ``add_fact``);
* **let the CSR directory go stale** — :meth:`CsrStore.apply` is how workers
  install each sync's freshly sealed postings chunks; dropping every seal
  after the first leaves the workers probing a directory frozen at the first
  watermark, and the shared-memory parallel-vs-row oracle must notice the
  matches the stale buckets can no longer find.

The mutations are applied through ``monkeypatch`` fixture toggles (no
subprocesses needed: the forked worker pool inherits the patched classes,
and every oracle retires the pool before and after so no mutant worker
outlives its test).
"""

import itertools

import pytest

from repro.datalog.database import Instance
from repro.datalog.terms import Null
from repro.engine import kernels
from repro.engine.incremental import DeltaSession, cold_equivalent
from repro.engine.index import CsrStore, PredicateIndex
from repro.engine.mode import execution_mode
from repro.engine.parallel import (
    csr_override,
    parallel_threshold_override,
    shm_override,
    shutdown_pool,
)
from repro.engine.stats import STATS
from test_engine_incremental_parity import TC_PROGRAM, edge

WORKERS = 2


@pytest.fixture(scope="module", autouse=True)
def stop_pool_after_module():
    yield
    shutdown_pool()


def edges(n, prefix="n"):
    return [edge(f"{prefix}{i}", f"{prefix}{i + 1}") for i in range(n)]


# ---------------------------------------------------------------------------
# The oracles: the same differential assertions the parity suites pin
# ---------------------------------------------------------------------------


def oracle_parallel_retract_vs_cold():
    """Parallel DRed retraction equals a cold run of the surviving EDB.

    The pool is retired first so the workers fork *under the current code*
    — that is what lets a planted parent-side mutation reach the replicas.
    The columnar wire protocol is forced (``shm_override(False)``) because
    replica liveness is worker-local there, which is exactly where the
    deletion replay is load-bearing; under the shared-memory protocol the
    parent's tombstoned arity lane is visible to the workers by
    construction.  A single mid-chain edge is retracted (small over-deleted
    closure, so DRed stays on the in-place tombstone path), then a fresh
    edge is pushed whose closure propagates *through* the deleted position:
    a replica that skipped the replay extends the new matches over the
    ghost edge and diverges from the cold run.

    The live branch edge at the deleted position matters: the parent's
    pivot-viability pre-check consults the parent's own (correctly
    unlinked) postings, so a probe value whose bucket empties is pruned
    before any worker is asked.  Keeping one live fact in the ghost's
    bucket is what forces the dispatch through to the replicas, where the
    planted skip is observable.
    """
    es = edges(12) + [edge("n10", "b0")]
    shutdown_pool()
    try:
        with execution_mode("parallel", WORKERS):
            with parallel_threshold_override(0), shm_override(False):
                session = DeltaSession(TC_PROGRAM, es)
                session.retract([es[10]])
                session.push([edge("p0", "n0")])
                atoms = session.instance.sorted_atoms()
                cold = cold_equivalent(session)
                session.close()
                assert atoms == cold.sorted_atoms()
    finally:
        shutdown_pool()


def oracle_parallel_csr_vs_row():
    """Parallel evaluation over the sealed CSR directory equals the row run.

    The shared-memory + CSR protocol is forced, and the session pushes a
    second batch after its initial fixpoint so the workers must install a
    sequence of seals: the initial replace chunks, then the delta chunks of
    every later round.  A worker whose directory froze at an earlier
    watermark probes buckets that are missing every later row, silently
    drops the matches that extend through them, and the recursion dies —
    which is exactly what the planted ``CsrStore.apply`` mutation must make
    visible.  The reference closure is computed by the *row* executor, not
    ``cold_equivalent``: a cold run inside parallel mode would dispatch
    through the same mutated workers and inherit the same blindness, and an
    oracle whose reference degrades with the mutation can never discriminate.
    The pool is retired first so workers fork under the current (possibly
    mutated) code.
    """
    es = edges(14, "g")
    shutdown_pool()
    try:
        with execution_mode("row"):
            reference = DeltaSession(TC_PROGRAM, es)
            expected = reference.instance.sorted_atoms()
            reference.close()
        with execution_mode("parallel", WORKERS):
            with parallel_threshold_override(0), shm_override(True), csr_override(
                True
            ):
                session = DeltaSession(TC_PROGRAM, es[:8])
                session.push(es[8:])
                atoms = session.instance.sorted_atoms()
                session.close()
                assert atoms == expected
    finally:
        shutdown_pool()


def oracle_row_vs_batch():
    """Row and batch executors: byte-identical atoms and gated counters."""
    es = edges(10)
    outcomes = {}
    for mode in ("row", "batch"):
        with execution_mode(mode):
            Null._counter = itertools.count()
            STATS.reset()
            session = DeltaSession(TC_PROGRAM, es[:6])
            session.push(es[6:])
            outcomes[mode] = (session.instance.sorted_atoms(), STATS.gated())
            session.close()
    assert outcomes["row"] == outcomes["batch"]


# ---------------------------------------------------------------------------
# The canaries
# ---------------------------------------------------------------------------


def test_skipped_replica_deletion_is_caught(monkeypatch):
    oracle_parallel_retract_vs_cold()  # clean: must pass
    with monkeypatch.context() as m:
        # Plant: the replica-side deletion replay does nothing, so worker
        # shards keep retracted facts live as step-0 candidates.
        m.setattr(
            PredicateIndex, "tombstone_row", lambda self, predicate, row_id: None
        )
        with pytest.raises(AssertionError):
            oracle_parallel_retract_vs_cold()
    oracle_parallel_retract_vs_cold()  # unplanted: must pass again


def test_perturbed_probe_verdict_is_caught(monkeypatch):
    oracle_row_vs_batch()  # clean: must pass
    original = kernels.extensions
    state = {"perturbed": False}

    def mutant(cols, candidate_ids, arity, bind_positions, intra_pairs):
        result = original(cols, candidate_ids, arity, bind_positions, intra_pairs)
        if not state["perturbed"] and result:
            state["perturbed"] = True
            return result[1:]  # flip exactly one probe verdict: drop a survivor
        return result

    with monkeypatch.context() as m:
        m.setattr(kernels, "extensions", mutant)
        m.setattr("repro.engine.batch.kernels.extensions", mutant, raising=False)
        with pytest.raises(AssertionError):
            oracle_row_vs_batch()
    assert state["perturbed"], "the mutant kernel was never exercised"
    oracle_row_vs_batch()  # unplanted: must pass again


def test_stale_csr_directory_is_caught(monkeypatch):
    oracle_parallel_csr_vs_row()  # clean: must pass
    original = CsrStore.apply
    state = {"applied": False}  # forked into each worker; flips per process

    def mutant(self, name, n_values, preds, directory):
        if state["applied"]:
            return None  # drop every later seal: the directory goes stale
        state["applied"] = True
        return original(self, name, n_values, preds, directory)

    with monkeypatch.context() as m:
        m.setattr(CsrStore, "apply", mutant)
        with pytest.raises(AssertionError):
            oracle_parallel_csr_vs_row()
    oracle_parallel_csr_vs_row()  # unplanted: must pass again


def test_dropped_head_fire_is_caught(monkeypatch):
    oracle_row_vs_batch()  # clean: must pass
    original = Instance.add_key
    state = {"dropped": False}

    def mutant(self, key):
        if not state["dropped"] and key not in self._keys:
            state["dropped"] = True
            return None  # swallow the first genuinely-new head fact
        return original(self, key)

    with monkeypatch.context() as m:
        m.setattr(Instance, "add_key", mutant)
        with pytest.raises(AssertionError):
            oracle_row_vs_batch()
    assert state["dropped"], "the mutant head-fire path was never exercised"
    oracle_row_vs_batch()  # unplanted: must pass again
