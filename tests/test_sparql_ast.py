"""Tests for the SPARQL pattern AST (variables, well-formedness, traversal)."""

import pytest

from repro.datalog.terms import Constant, Null, Variable
from repro.sparql.ast import (
    And,
    BGP,
    Bound,
    EqualsConstant,
    EqualsVariable,
    Filter,
    Opt,
    Select,
    TriplePattern,
    Union,
    walk_basic_patterns,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestTriplePattern:
    def test_term_coercion(self):
        pattern = TriplePattern("?X", "name", "_:B")
        assert pattern.subject == X
        assert pattern.predicate == Constant("name")
        assert isinstance(pattern.object, Null)

    def test_variables_and_blank_nodes(self):
        pattern = TriplePattern("?X", "?Y", "_:B")
        assert pattern.variables() == {X, Y}
        assert len(pattern.blank_nodes()) == 1


class TestVarOfPattern:
    def test_bgp_variables(self):
        bgp = BGP.of(("?X", "name", "?Y"), ("?X", "phone", "?Z"))
        assert bgp.variables() == {X, Y, Z}

    def test_operator_variables_are_unions(self):
        left = BGP.of(("?X", "p", "?Y"))
        right = BGP.of(("?Y", "q", "?Z"))
        for combinator in (And, Union, Opt):
            assert combinator(left, right).variables() == {X, Y, Z}

    def test_select_variables(self):
        pattern = Select([X], BGP.of(("?X", "p", "?Y")))
        assert pattern.variables() == {X}

    def test_filter_requires_condition_variables_in_pattern(self):
        with pytest.raises(ValueError):
            Filter(BGP.of(("?X", "p", "?Y")), Bound(Z))
        assert Filter(BGP.of(("?X", "p", "?Y")), EqualsVariable(X, Y))


class TestConditionVariables:
    def test_atomic_conditions(self):
        assert Bound(X).variables() == {X}
        assert EqualsConstant(X, Constant("a")).variables() == {X}
        assert EqualsVariable(X, Y).variables() == {X, Y}


class TestWalk:
    def test_walk_basic_patterns_visits_all_bgps(self):
        first = BGP.of(("?X", "p", "?Y"))
        second = BGP.of(("?Y", "q", "?Z"))
        third = BGP.of(("?Z", "r", "?X"))
        pattern = Select([X], And(Union(first, second), Opt(third, first)))
        visited = list(walk_basic_patterns(pattern))
        assert visited.count(first) == 2
        assert second in visited and third in visited
