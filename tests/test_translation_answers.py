"""Tests for the answer decoding (⋆-padded tuples -> mappings)."""

from repro.datalog.semantics import INCONSISTENT
from repro.datalog.terms import Constant, Variable
from repro.sparql.mappings import Mapping
from repro.sparql.parser import parse_sparql
from repro.translation.answers import decode_answers, mappings_of_translation
from repro.translation.sparql_to_datalog import STAR, translate_select_query

X, Y = Variable("X"), Variable("Y")


class TestDecodeAnswers:
    def test_full_tuple(self):
        mappings = decode_answers({(Constant("a"), Constant("b"))}, (X, Y))
        assert mappings == {Mapping({X: "a", Y: "b"})}

    def test_star_positions_dropped(self):
        mappings = decode_answers({(Constant("a"), STAR)}, (X, Y))
        assert mappings == {Mapping({X: "a"})}

    def test_all_star_tuple_is_empty_mapping(self):
        mappings = decode_answers({(STAR, STAR)}, (X, Y))
        assert mappings == {Mapping({})}

    def test_multiple_tuples(self):
        mappings = decode_answers(
            {(Constant("a"), STAR), (Constant("a"), Constant("b"))}, (X, Y)
        )
        assert len(mappings) == 2

    def test_empty_answer_set(self):
        assert decode_answers(set(), (X, Y)) == set()


class TestMappingsOfTranslation:
    def test_propagates_inconsistent(self):
        translation = translate_select_query(parse_sparql("SELECT ?X WHERE { ?X p ?Y }"))
        assert mappings_of_translation(translation, INCONSISTENT) is INCONSISTENT

    def test_decodes_regular_results(self):
        translation = translate_select_query(parse_sparql("SELECT ?X WHERE { ?X p ?Y }"))
        result = frozenset({(Constant("a"),)})
        assert mappings_of_translation(translation, result) == {Mapping({X: "a"})}
