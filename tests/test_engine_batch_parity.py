"""Differential fuzzing: the batch executor vs row-at-a-time vs the reference.

The column-at-a-time executor (:mod:`repro.engine.batch`) promises *exact*
parity with the row-at-a-time plans — same matches, same order — which in
turn are locked to the seed's interpretive matcher
(:mod:`repro.engine.reference`).  This suite generates random programs over
random RDF graphs, chain ontologies, and k-clique instances (all with fixed
seeds, so CI runs are reproducible) and asserts:

* **match level** — ``JoinPlan.run_batch`` equals ``JoinPlan.execute``
  row for row *in order*, and both equal ``reference_match_atoms`` as
  multisets (the reference orders atoms differently, so only the multiset is
  specified there);
* **engine level** — all three engines produce atom-for-atom identical
  instances in both modes (for engines that invent nulls, the global null
  counter is pinned so labels align), and the semi-naive results also equal
  a naive fixpoint oracle built purely on the reference matcher.
"""

import itertools
import random

import pytest

from repro.core.warded_engine import WardedEngine
from repro.datalog.atoms import Atom
from repro.datalog.chase import ChaseEngine, match_atoms
from repro.datalog.database import Instance
from repro.datalog.parser import parse_program
from repro.datalog.rules import Rule
from repro.datalog.program import Program
from repro.datalog.seminaive import SemiNaiveEvaluator
from repro.datalog.stratification import partition_by_stratum, stratify
from repro.datalog.terms import Constant, Null, Variable
from repro.engine.mode import execution_mode
from repro.engine.plan import compile_body
from repro.engine.reference import reference_match_atoms, reference_satisfies_some
from repro.reductions.clique import clique_database, clique_program
from repro.workloads.graphs import random_rdf_graph, random_undirected_graph
from repro.workloads.ontologies import chain_ontology_graph

V = Variable


def canonical(substitutions):
    """Order-insensitive, hashable form of a substitution iterator."""
    return sorted(
        tuple(sorted((v.name, str(t)) for v, t in s.items())) for s in substitutions
    )


def assert_three_way_parity(atoms, instance, initial=None):
    """batch == row (ordered) and batch == reference (multiset)."""
    atoms = tuple(atoms)
    prebound = frozenset(initial) if initial else frozenset()
    plan = compile_body(atoms, prebound)
    row_matches = list(plan.execute(instance, initial))
    batch_matches = plan.execute_batch(instance, initial)
    assert batch_matches == row_matches  # exact order, not just content
    assert canonical(batch_matches) == canonical(
        reference_match_atoms(atoms, instance, initial)
    )


def naive_stratified_fixpoint(program, database):
    """Oracle evaluator: naive iteration with the reference matcher only."""
    stratification = stratify(program.ex())
    strata = partition_by_stratum(program.ex(), stratification)
    instance = Instance(database)
    for rules in strata:
        if not rules:
            continue
        reference = Instance(instance)
        changed = True
        while changed:
            changed = False
            for rule in rules:
                for sub in list(reference_match_atoms(rule.body_positive, instance)):
                    if rule.body_negative and reference_satisfies_some(
                        rule.body_negative, reference, sub
                    ):
                        continue
                    for head_atom in rule.head:
                        if instance.add(head_atom.apply(sub)):
                            changed = True
    return instance


# ---------------------------------------------------------------------------
# Random generators (fixed seeds only)
# ---------------------------------------------------------------------------

VARS = [V(name) for name in "XYZWU"]


def random_instance(rng, n_constants, n_facts):
    """A random instance over unary/binary/ternary predicates."""
    constants = [Constant(f"c{i}") for i in range(n_constants)]
    predicates = [("u", 1), ("e", 2), ("f", 2), ("t", 3)]
    facts = []
    for _ in range(n_facts):
        predicate, arity = rng.choice(predicates)
        facts.append(Atom(predicate, tuple(rng.choice(constants) for _ in range(arity))))
    return Instance(facts), constants


def random_body(rng, constants, n_atoms):
    """A random positive body; variables overlap to force joins/self-joins."""
    predicates = [("u", 1), ("e", 2), ("f", 2), ("t", 3)]
    body = []
    for _ in range(n_atoms):
        predicate, arity = rng.choice(predicates)
        terms = []
        for _ in range(arity):
            roll = rng.random()
            if roll < 0.6:
                terms.append(rng.choice(VARS[: 1 + n_atoms]))
            else:
                terms.append(rng.choice(constants))
        body.append(Atom(predicate, tuple(terms)))
    return tuple(body)


def random_datalog_program(rng, constants):
    """A safe, stratified two-layer Datalog¬ program (no existentials).

    Layer 1 derives ``d1``/``d2`` positively from the EDB; layer 2 may
    negate layer-1 and EDB predicates, which keeps the program stratified by
    construction.
    """
    rules = []
    edb = [("u", 1), ("e", 2), ("f", 2), ("t", 3)]
    layer1 = [("d1", 1), ("d2", 2)]
    layer2 = [("o1", 1), ("o2", 2)]

    def make_rule(head_choices, body_choices, negatable):
        head_pred, head_arity = rng.choice(head_choices)
        body = []
        for _ in range(rng.randint(1, 3)):
            predicate, arity = rng.choice(body_choices)
            body.append(
                Atom(
                    predicate,
                    tuple(
                        rng.choice(VARS[:4])
                        if rng.random() < 0.75
                        else rng.choice(constants)
                        for _ in range(arity)
                    ),
                )
            )
        body_vars = sorted(
            {t for atom in body for t in atom.terms if isinstance(t, Variable)},
            key=lambda v: v.name,
        )
        if not body_vars:
            return None
        head_terms = tuple(
            rng.choice(body_vars) for _ in range(head_arity)
        )
        negative = []
        if negatable and rng.random() < 0.5:
            predicate, arity = rng.choice(negatable)
            negative.append(
                Atom(predicate, tuple(rng.choice(body_vars) for _ in range(arity)))
            )
        return Rule(
            body_positive=body,
            body_negative=negative,
            head=[Atom(head_pred, head_terms)],
        )

    for _ in range(rng.randint(2, 4)):
        rule = make_rule(layer1, edb, negatable=None)
        if rule is not None:
            rules.append(rule)
    for _ in range(rng.randint(2, 4)):
        rule = make_rule(layer2, edb + layer1, negatable=edb + layer1)
        if rule is not None:
            rules.append(rule)
    return Program(rules)


# ---------------------------------------------------------------------------
# Match-level parity
# ---------------------------------------------------------------------------


class TestMatchLevelFuzz:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_bodies_on_random_instances(self, seed):
        rng = random.Random(seed)
        instance, constants = random_instance(rng, n_constants=6, n_facts=80)
        for n_atoms in (1, 2, 3):
            for _ in range(4):
                body = random_body(rng, constants, n_atoms)
                assert_three_way_parity(body, instance)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_rdf_graph_patterns(self, seed):
        graph = random_rdf_graph(n_triples=150, n_nodes=25, seed=seed)
        instance = graph.to_database()
        knows, works = Constant("knows"), Constant("worksFor")
        bodies = [
            (Atom("triple", (V("X"), knows, V("Y"))),),
            (
                Atom("triple", (V("X"), knows, V("Y"))),
                Atom("triple", (V("Y"), knows, V("Z"))),
                Atom("triple", (V("Z"), works, V("W"))),
            ),
            (Atom("triple", (V("X"), V("P"), V("X"))),),
            (
                Atom("triple", (V("X"), V("P"), V("Y"))),
                Atom("triple", (V("Y"), V("P"), V("X"))),
            ),
        ]
        for body in bodies:
            assert_three_way_parity(body, instance)

    @pytest.mark.parametrize("n", [3, 6, 10])
    def test_chain_ontology_joins(self, n):
        instance = chain_ontology_graph(n).to_database()
        sub_class = Constant("rdfs:subClassOf")
        body = (
            Atom("triple", (V("A"), sub_class, V("B"))),
            Atom("triple", (V("B"), sub_class, V("C"))),
            Atom("triple", (V("C"), sub_class, V("D"))),
        )
        assert_three_way_parity(body, instance)

    @pytest.mark.parametrize("n,k", [(4, 2), (5, 3), (6, 3)])
    def test_clique_reduction_bodies(self, n, k):
        edges = random_undirected_graph(n, 0.7, seed=n * 7 + k)
        instance = clique_database(edges, k)
        for rule in clique_program().rules:
            assert_three_way_parity(rule.body_positive, instance)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_with_seed_bindings(self, seed):
        rng = random.Random(seed)
        instance, constants = random_instance(rng, n_constants=5, n_facts=60)
        body = (
            Atom("e", (V("X"), V("Y"))),
            Atom("f", (V("Y"), V("Z"))),
        )
        for sub in list(reference_match_atoms(body, instance))[:5]:
            initial = {V("X"): sub[V("X")]}
            assert_three_way_parity(body, instance, initial)
            # Compatibility wrapper must agree too.
            assert canonical(match_atoms(body, instance, initial)) == canonical(
                reference_match_atoms(body, instance, initial)
            )


# ---------------------------------------------------------------------------
# Engine-level parity
# ---------------------------------------------------------------------------


def run_both_modes(fn):
    """fn() per mode with the null counter pinned; returns {mode: result}."""
    results = {}
    for mode in ("row", "batch"):
        with execution_mode(mode):
            Null._counter = itertools.count()
            results[mode] = fn()
    return results


class TestEngineLevelFuzz:
    @pytest.mark.parametrize("seed", range(6))
    def test_seminaive_fuzzed_programs(self, seed):
        rng = random.Random(100 + seed)
        instance, constants = random_instance(rng, n_constants=5, n_facts=50)
        program = random_datalog_program(rng, constants)
        database = list(instance)
        outcome = run_both_modes(
            lambda: list(SemiNaiveEvaluator(program).evaluate(database))
        )
        # Atom-for-atom, including insertion order.
        assert outcome["row"] == outcome["batch"]
        oracle = naive_stratified_fixpoint(program, database)
        assert set(outcome["batch"]) == oracle.to_set()

    @pytest.mark.parametrize("seed", [0, 1])
    def test_seminaive_on_rdf_workload(self, seed):
        graph = random_rdf_graph(n_triples=120, n_nodes=18, seed=seed)
        program = parse_program(
            """
            triple(?X, knows, ?Y) -> knows(?X, ?Y).
            knows(?X, ?Y) -> connected(?X, ?Y).
            connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
            knows(?X, ?Y), not connected(?Y, ?X) -> oneway(?X, ?Y).
            """
        )
        database = graph.to_database()
        outcome = run_both_modes(
            lambda: list(SemiNaiveEvaluator(program).evaluate(database))
        )
        assert outcome["row"] == outcome["batch"]
        oracle = naive_stratified_fixpoint(program, database)
        assert set(outcome["batch"]) == oracle.to_set()

    @pytest.mark.parametrize("n,k", [(4, 3), (5, 3)])
    def test_clique_end_to_end(self, n, k):
        from repro.reductions.clique import contains_clique, contains_clique_bruteforce

        edges = random_undirected_graph(n, 0.6, seed=n * 10 + k)
        expected = contains_clique_bruteforce(edges, k)
        outcome = run_both_modes(lambda: contains_clique(edges, k))
        assert outcome["row"] == outcome["batch"] == expected

    def test_chase_with_existentials_atom_for_atom(self):
        program = parse_program(
            """
            person(?X) -> exists ?Y . parent(?X, ?Y), person(?Y).
            parent(?X, ?Y) -> ancestor(?X, ?Y).
            ancestor(?X, ?Y), parent(?Y, ?Z) -> ancestor(?X, ?Z).
            """
        )
        database = [
            Atom("person", (Constant("alice"),)),
            Atom("person", (Constant("bob"),)),
            Atom("parent", (Constant("alice"), Constant("bob"))),
        ]
        outcome = run_both_modes(
            lambda: list(
                ChaseEngine(max_null_depth=3, on_limit="stop")
                .chase(database, program)
                .instance
            )
        )
        assert outcome["row"] == outcome["batch"]

    def test_oblivious_chase_atom_for_atom(self):
        program = parse_program(
            """
            e(?X, ?Y) -> exists ?Z . e(?Y, ?Z).
            e(?X, ?Y) -> r(?X, ?Y).
            """
        )
        database = [Atom("e", (Constant("a"), Constant("b")))]
        outcome = run_both_modes(
            lambda: list(
                ChaseEngine(restricted=False, max_null_depth=2, on_limit="stop")
                .chase(database, program)
                .instance
            )
        )
        assert outcome["row"] == outcome["batch"]

    def test_chase_negation_parity_against_reference_instance(self):
        program = parse_program("p(?X), not q(?X) -> r(?X).")
        database = [Atom("p", (Constant("a"),)), Atom("p", (Constant("b"),))]
        reference = Instance(database + [Atom("q", (Constant("a"),))])
        outcome = run_both_modes(
            lambda: list(
                ChaseEngine()
                .chase(database, program, negation_reference=reference)
                .instance
            )
        )
        assert outcome["row"] == outcome["batch"]
        assert Atom("r", (Constant("b"),)) in set(outcome["batch"])
        assert Atom("r", (Constant("a"),)) not in set(outcome["batch"])

    @pytest.mark.parametrize("seed", [0, 2])
    def test_warded_materialisation_atom_for_atom(self, seed):
        graph = random_rdf_graph(n_triples=80, n_nodes=15, seed=seed)
        program = parse_program(
            """
            triple(?X, knows, ?Y) -> knows(?X, ?Y).
            knows(?X, ?Y) -> exists ?Z . contact(?Y, ?Z).
            contact(?X, ?Z), knows(?W, ?X) -> reachable(?W, ?X).
            knows(?X, ?Y), not reachable(?X, ?Y) -> pending(?X, ?Y).
            """
        )
        database = graph.to_database()

        def materialise():
            result = WardedEngine(program).materialise(database)
            return list(result.instance), sorted(result.provenance, key=str)

        outcome = run_both_modes(materialise)
        assert outcome["row"][0] == outcome["batch"][0]
        assert outcome["row"][1] == outcome["batch"][1]
