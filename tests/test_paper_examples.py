"""End-to-end reproduction of the paper's running examples (Section 2).

Each test follows one of the motivating scenarios: the plain author query,
CONSTRUCT-style graph output, blank-node invention for co-authors, the OWL
restriction graph G3, the owl:sameAs graph G4, and the transport-service
reachability query that SPARQL 1.1 property paths cannot express.
"""

from repro.core.evaluation import evaluate
from repro.core.triqlite import TriQLiteQuery
from repro.datalog.parser import parse_program
from repro.datalog.terms import Constant
from repro.rdf.graph import database_to_graph
from repro.sparql.evaluator import evaluate_pattern
from repro.sparql.parser import parse_sparql
from repro.translation.entailment_regime import evaluate_under_entailment
from repro.workloads.graphs import (
    paper_transport_graph,
    section2_g1,
    section2_g2,
    section2_g3,
    section2_g4,
    transport_network,
)
from repro.workloads.queries import author_queries


class TestAuthorScenario:
    def test_query_1_on_g1(self):
        """SPARQL query (1): the list of authors in G1 is Jeffrey Ullman."""
        query = parse_sparql(author_queries()["authors"])
        answers = evaluate_pattern(query.algebra(), section2_g1())
        assert {m[next(iter(m.domain))].value for m in answers} == {"Jeffrey Ullman"}

    def test_rule_2_on_g1(self):
        """Rule (2): the same query written as a single Datalog rule."""
        answers = evaluate(
            "triple(?Y, is_author_of, ?Z), triple(?Y, name, ?X) -> query(?X).",
            "query",
            section2_g1().to_database(),
        )
        assert answers == {(Constant("Jeffrey Ullman"),)}

    def test_rule_3_construct_output(self):
        """Rule (3): producing an RDF graph (name_author triples) as output."""
        program = parse_program(
            "triple(?Y, is_author_of, ?Z), triple(?Y, name, ?X) -> out(?X, name_author, ?Z)."
        )
        query = TriQLiteQuery(program, "out", output_arity=3)
        result = query.materialise(section2_g1().to_database())
        graph = database_to_graph(result.instance.with_predicate("out"), predicate="out")
        assert ("Jeffrey Ullman", "name_author", "The Complete Book") in graph

    def test_query_4_blank_node_invention(self):
        """Query (4): co-authors share an invented publication (a blank node)."""
        program = parse_program(
            """
            triple(?X, is_coauthor_of, ?Y) ->
                exists ?Z . triple2(?X, is_author_of, ?Z), triple2(?Y, is_author_of, ?Z).
            """
        )
        query = TriQLiteQuery(program, "triple2", output_arity=3)
        result = query.materialise(section2_g2().to_database())
        invented = [a for a in result.instance.with_predicate("triple2")]
        assert len(invented) == 2
        witnesses = {a.terms[2] for a in invented}
        assert len(witnesses) == 1  # the same anonymous publication for both authors

    def test_query_1_fails_on_g4_but_sameas_union_succeeds(self):
        """Query (1) is empty over G4; query (6) with UNION finds Ullman."""
        plain = parse_sparql(author_queries()["authors"])
        with_sameas = parse_sparql(author_queries()["authors_sameas"])
        assert evaluate_pattern(plain.algebra(), section2_g4()) == set()
        answers = evaluate_pattern(with_sameas.algebra(), section2_g4())
        assert len(answers) == 1

    def test_g3_entailment_regime_includes_aho(self):
        """Over G3, the entailment-regime evaluation of the author query includes dbAho."""
        query = parse_sparql(author_queries()["authors_restriction"])
        answers = evaluate_under_entailment(query, section2_g3(), "U")
        names = {m[v].value for m in answers for v in m.domain}
        assert names == {"Jeffrey Ullman", "Alfred Aho"}


class TestTransportScenario:
    TRANSPORT_PROGRAM = """
        triple(?X, partOf, transportService) -> ts(?X).
        triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
        ts(?T), triple(?X, ?T, ?Y) -> query(?X, ?Y).
        ts(?T), triple(?X, ?T, ?Z), query(?Z, ?Y) -> query(?X, ?Y).
    """

    def test_paper_figure_reachability(self):
        answers = evaluate(
            self.TRANSPORT_PROGRAM, "query", paper_transport_graph().to_database()
        )
        pairs = {(a.value, b.value) for a, b in answers}
        assert pairs == {
            ("Oxford", "London"),
            ("Oxford", "Madrid"),
            ("Oxford", "Valladolid"),
            ("London", "Madrid"),
            ("London", "Valladolid"),
            ("Madrid", "Valladolid"),
        }

    def test_synthetic_transport_networks(self):
        graph, cities = transport_network(7, n_services=2, hierarchy_depth=3, seed=11)
        answers = evaluate(self.TRANSPORT_PROGRAM, "query", graph.to_database())
        pairs = {(a.value, b.value) for a, b in answers}
        expected = {
            (cities[i], cities[j]) for i in range(len(cities)) for j in range(i + 1, len(cities))
        }
        assert pairs == expected
