"""The docs tier must not contain broken relative links.

Thin pytest wrapper around ``scripts/check_doc_links.py`` (which CI also
runs as a lint step), so a rename that orphans a README/docs link fails the
tier-1 suite locally too.
"""

import importlib.util
import os

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_doc_links", os.path.join(REPO_ROOT, "scripts", "check_doc_links.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_have_no_broken_relative_links():
    checker = _load_checker()
    problems = []
    for path in checker.DEFAULT_DOCS:
        if os.path.exists(os.path.join(checker.REPO_ROOT, path)):
            problems.extend(checker.check_file(path))
    assert not problems, "\n".join(problems)


def test_default_set_covers_the_docs_tier():
    checker = _load_checker()
    assert "README.md" in checker.DEFAULT_DOCS
    assert "docs/architecture.md" in checker.DEFAULT_DOCS
    assert "docs/benchmarks.md" in checker.DEFAULT_DOCS
