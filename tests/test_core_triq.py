"""Tests for TriQ 1.0 queries (Definition 4.2, Theorem 4.4 machinery)."""

import pytest

from repro.core.triq import STAR, TriQQuery, TriQValidationError, constraint_free_rewriting
from repro.datalog.database import Database
from repro.datalog.parser import parse_atom, parse_program
from repro.datalog.program import Query
from repro.datalog.semantics import INCONSISTENT, evaluate_query
from repro.datalog.terms import Constant


def db(*facts):
    return Database([parse_atom(f) for f in facts])


class TestValidation:
    def test_accepts_weakly_frontier_guarded_program(self):
        program = parse_program(
            """
            p(?X, ?Y), s(?Y, ?Z) -> exists ?W . t(?Y, ?X, ?W).
            t(?X, ?Y, ?Z) -> answer(?X).
            """
        )
        query = TriQQuery(program, "answer")
        assert query.report.is_triq

    def test_rejects_non_wfg_program(self):
        # The dangerous variables ?Y and ?Z never share an atom.
        program = parse_program(
            """
            p(?X) -> exists ?Y . s(?X, ?Y).
            p(?X) -> exists ?Y . r(?X, ?Y).
            s(?X, ?Y), r(?X, ?Z) -> answer(?Y, ?Z).
            """
        )
        with pytest.raises(TriQValidationError) as excinfo:
            TriQQuery(program, "answer")
        assert not excinfo.value.report.is_triq

    def test_rejects_unstratified_program(self):
        program = parse_program("p(?X), not answer(?X) -> q(?X). q(?X) -> answer(?X).")
        with pytest.raises(Exception):
            TriQQuery(program, "answer")

    def test_validation_can_be_disabled(self):
        from repro.reductions.clique import clique_program

        query = TriQQuery(clique_program(), "yes", output_arity=0, validate=True)
        assert query.report.is_triq


class TestEvaluation:
    def test_simple_evaluation(self):
        program = parse_program("e(?X, ?Y) -> answer(?X).")
        query = TriQQuery(program, "answer")
        assert query.evaluate(db("e(a,b)")) == {(Constant("a"),)}

    def test_holds_convention(self):
        program = parse_program("e(?X, ?Y) -> answer(?X). e(?X, ?X) -> false.")
        query = TriQQuery(program, "answer")
        assert query.holds(db("e(a,b)"), (Constant("a"),))
        assert not query.holds(db("e(a,b)"), (Constant("b"),))
        assert query.holds(db("e(a,a)"), (Constant("zzz"),))  # inconsistent database

    def test_clique_example(self):
        from repro.reductions.clique import clique_database, clique_query

        query = clique_query()
        triangle = clique_database([("a", "b"), ("b", "c"), ("a", "c")], 3)
        path = clique_database([("a", "b"), ("b", "c")], 3)
        assert query.evaluate(triangle) == {()}
        assert query.evaluate(path) == frozenset()


class TestConstraintFreeRewriting:
    def test_rewriting_replaces_constraints_with_star_rules(self):
        program = parse_program(
            """
            e(?X, ?Y) -> answer(?X, ?Y).
            e(?X, ?X) -> false.
            """
        )
        query = Query(program, "answer")
        rewritten, star = constraint_free_rewriting(query)
        assert star == STAR
        assert not rewritten.program.has_constraints
        assert len(rewritten.program.rules) == 2

    def test_theorem_44_equivalence(self):
        """Q(D) != ⊤ iff (⋆,...,⋆) not in Q'(D); on consistent databases answers agree."""
        program = parse_program(
            """
            e(?X, ?Y) -> answer(?X, ?Y).
            e(?X, ?X) -> false.
            """
        )
        query = Query(program, "answer")
        rewritten, star = constraint_free_rewriting(query)

        consistent = db("e(a,b)")
        inconsistent = db("e(a,a)", "e(a,b)")

        assert evaluate_query(query, consistent) is not INCONSISTENT
        assert (star, star) not in evaluate_query(rewritten, consistent)
        assert evaluate_query(query, consistent) == {
            t for t in evaluate_query(rewritten, consistent) if star not in t
        }

        assert evaluate_query(query, inconsistent) is INCONSISTENT
        assert (star, star) in evaluate_query(rewritten, inconsistent)
