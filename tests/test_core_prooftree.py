"""Tests for proof trees (Definition 6.11 / Figure 1, Example 6.10)."""

import pytest

from repro.core.prooftree import ProofTreeError, extract_proof_tree
from repro.core.warded_engine import WardedEngine
from repro.datalog.database import Database
from repro.datalog.parser import parse_atom, parse_program


def example_610():
    program = parse_program(
        """
        s(?X, ?Y, ?Z) -> exists ?W . s(?X, ?Z, ?W).
        s(?X, ?Y, ?Z), s(?Y, ?Z, ?W) -> q(?X, ?Y).
        t(?X) -> exists ?Z . p(?X, ?Z).
        p(?X, ?Y), q(?X, ?Z) -> r(?X, ?Y, ?Z).
        r(?X, ?Y, ?Z) -> p(?X, ?Z).
        """
    )
    database = Database([parse_atom("s(a,a,a)"), parse_atom("t(a)")])
    return program, database


class TestFigure1:
    def test_p_a_a_is_derived(self):
        """Example 6.10: p(a,a) belongs to Pi(D)."""
        program, database = example_610()
        result = WardedEngine(program).materialise(database)
        assert parse_atom("p(a,a)") in result.instance

    def test_proof_tree_structure(self):
        program, database = example_610()
        result = WardedEngine(program).materialise(database)
        tree = extract_proof_tree(parse_atom("p(a,a)"), result, database)
        # Figure 1(b): the root is p(a,a), derived through r(a, z, a).
        assert tree.root.atom == parse_atom("p(a,a)")
        assert tree.root.rule is not None and tree.root.rule.head[0].predicate == "p"
        child_predicates = {child.atom.predicate for child in tree.root.children}
        assert child_predicates == {"r"}
        assert tree.depth() >= 4

    def test_leaves_are_database_atoms(self):
        program, database = example_610()
        result = WardedEngine(program).materialise(database)
        tree = extract_proof_tree(parse_atom("p(a,a)"), result, database)
        assert tree.leaves_in_database()
        assert set(tree.leaves()) <= {parse_atom("s(a,a,a)"), parse_atom("t(a)")}

    def test_rules_used_come_from_the_program(self):
        program, database = example_610()
        result = WardedEngine(program).materialise(database)
        tree = extract_proof_tree(parse_atom("p(a,a)"), result, database)
        assert set(tree.rules_used()) <= set(program.rules)

    def test_render_mentions_every_atom(self):
        program, database = example_610()
        result = WardedEngine(program).materialise(database)
        tree = extract_proof_tree(parse_atom("p(a,a)"), result, database)
        rendering = tree.render()
        assert "p(a, a)" in rendering and "t(a)" in rendering
        assert rendering.count("\n") + 1 == tree.size()

    def test_size_and_depth_consistency(self):
        program, database = example_610()
        result = WardedEngine(program).materialise(database)
        tree = extract_proof_tree(parse_atom("q(a,a)"), result, database)
        assert tree.size() >= tree.depth()


class TestProofTreeErrors:
    def test_underived_atom_rejected(self):
        program, database = example_610()
        result = WardedEngine(program).materialise(database)
        with pytest.raises(ProofTreeError):
            extract_proof_tree(parse_atom("p(b,b)"), result, database)

    def test_database_atom_is_a_leaf_tree(self):
        program, database = example_610()
        result = WardedEngine(program).materialise(database)
        tree = extract_proof_tree(parse_atom("t(a)"), result, database)
        assert tree.size() == 1 and tree.root.is_leaf
