"""Shared-memory lifecycle: no leaked ``/dev/shm`` segments, ever.

The zero-copy protocol creates named segments in two places: the parent
promotes every predicate's :class:`ColumnBuffer` into a ``repro-col-*``
segment at sync time, and workers ship oversized match results through
anonymous one-shot segments the parent unlinks after reading.  Leaking
either would pin memory for the life of the machine (POSIX shared memory
survives process exit), so this suite forces real 2-worker dispatch through
the shared-memory path and asserts the segment population of ``/dev/shm``
returns exactly to its pre-test state:

* after :func:`shutdown_pool` — the explicit retirement path, which demotes
  every promoted buffer back to heap arrays;
* after :meth:`TermTable.begin_epoch` — the epoch reset retires the pool
  through the registered hook, so dictionary compaction must also release
  every segment;
* across promote/demote churn — repeated arm/retire cycles must not
  accumulate segments.

The suite skips where ``/dev/shm`` is unavailable (non-POSIX hosts);
everywhere else it is the regression gate for the attach protocol's
ownership rules (creator unlinks, attacher never registers).
"""

import os

import pytest

from repro.engine.colbuf import promoted_stats
from repro.engine.incremental import DeltaSession
from repro.engine.interning import TERMS
from repro.engine.mode import execution_mode
from repro.engine.parallel import (
    parallel_threshold_override,
    shm_override,
    shutdown_pool,
)
from test_engine_incremental_parity import TC_PROGRAM, edge

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="/dev/shm not available"
)

WORKERS = 2


def shm_entries():
    """Current segment names (ours and the interpreter's anonymous ones)."""
    return set(os.listdir("/dev/shm"))


def evaluate_parallel(edges):
    """One forced shared-memory parallel evaluation; returns sorted atoms."""
    with execution_mode("parallel", WORKERS):
        with parallel_threshold_override(0), shm_override(True):
            session = DeltaSession(TC_PROGRAM, edges[:10])
            session.push(edges[10:])
            atoms = session.instance.sorted_atoms()
            promoted, promoted_bytes = promoted_stats()
            session.close()
    return atoms, promoted, promoted_bytes


@pytest.fixture(autouse=True)
def retire_pool():
    yield
    shutdown_pool()


def test_pool_shutdown_releases_every_segment():
    edges = [edge(f"n{i}", f"n{i + 1}") for i in range(30)]
    before = shm_entries()
    atoms, promoted, promoted_bytes = evaluate_parallel(edges)
    # The zero-copy path actually armed: buffers were promoted into
    # segments while the pool was live (otherwise this suite tests nothing).
    assert promoted > 0 and promoted_bytes > 0
    shutdown_pool()
    assert promoted_stats() == (0, 0)
    leaked = shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"
    # And the shared-memory run computed the right closure.
    with execution_mode("row"):
        reference = DeltaSession(TC_PROGRAM, edges)
        assert atoms == reference.instance.sorted_atoms()
        reference.close()


def test_epoch_reset_releases_every_segment():
    edges = [edge(f"m{i}", f"m{i + 1}") for i in range(25)]
    before = shm_entries()
    _, promoted, _ = evaluate_parallel(edges)
    assert promoted > 0
    # The epoch hook retires the pool, which must also demote the buffers.
    TERMS.begin_epoch()
    assert promoted_stats() == (0, 0)
    leaked = shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def test_repeated_cycles_do_not_accumulate_segments():
    before = shm_entries()
    for cycle in range(3):
        edges = [edge(f"c{cycle}_{i}", f"c{cycle}_{i + 1}") for i in range(20)]
        evaluate_parallel(edges)
        shutdown_pool()
        leaked = shm_entries() - before
        assert not leaked, f"cycle {cycle} leaked: {sorted(leaked)}"
    assert promoted_stats() == (0, 0)
