"""Shared-memory lifecycle: no leaked ``/dev/shm`` segments, ever.

The zero-copy protocol creates named segments in two places: the parent
promotes every predicate's :class:`ColumnBuffer` into a ``repro-col-*``
segment at sync time, and workers ship oversized match results through
anonymous one-shot segments the parent unlinks after reading.  Leaking
either would pin memory for the life of the machine (POSIX shared memory
survives process exit), so this suite forces real 2-worker dispatch through
the shared-memory path and asserts the segment population of ``/dev/shm``
returns exactly to its pre-test state:

* after :func:`shutdown_pool` — the explicit retirement path, which demotes
  every promoted buffer back to heap arrays;
* after :meth:`TermTable.begin_epoch` — the epoch reset retires the pool
  through the registered hook, so dictionary compaction must also release
  every segment;
* across promote/demote churn — repeated arm/retire cycles must not
  accumulate segments.

The suite skips where ``/dev/shm`` is unavailable (non-POSIX hosts);
everywhere else it is the regression gate for the attach protocol's
ownership rules (creator unlinks, attacher never registers).
"""

import os

import pytest

from repro.engine.colbuf import promoted_stats
from repro.engine.incremental import DeltaSession
from repro.engine.interning import TERMS
from repro.engine.mode import execution_mode
from repro.engine.parallel import (
    csr_override,
    parallel_threshold_override,
    shm_override,
    shutdown_pool,
)
from test_engine_incremental_parity import TC_PROGRAM, edge

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="/dev/shm not available"
)

WORKERS = 2


def shm_entries():
    """Current segment names (ours and the interpreter's anonymous ones)."""
    return set(os.listdir("/dev/shm"))


def evaluate_parallel(edges):
    """One forced shared-memory parallel evaluation; returns sorted atoms."""
    with execution_mode("parallel", WORKERS):
        with parallel_threshold_override(0), shm_override(True):
            session = DeltaSession(TC_PROGRAM, edges[:10])
            session.push(edges[10:])
            atoms = session.instance.sorted_atoms()
            promoted, promoted_bytes = promoted_stats()
            session.close()
    return atoms, promoted, promoted_bytes


@pytest.fixture(autouse=True)
def retire_pool():
    yield
    shutdown_pool()


def test_pool_shutdown_releases_every_segment():
    edges = [edge(f"n{i}", f"n{i + 1}") for i in range(30)]
    before = shm_entries()
    atoms, promoted, promoted_bytes = evaluate_parallel(edges)
    # The zero-copy path actually armed: buffers were promoted into
    # segments while the pool was live (otherwise this suite tests nothing).
    assert promoted > 0 and promoted_bytes > 0
    shutdown_pool()
    assert promoted_stats() == (0, 0)
    leaked = shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"
    # And the shared-memory run computed the right closure.
    with execution_mode("row"):
        reference = DeltaSession(TC_PROGRAM, edges)
        assert atoms == reference.instance.sorted_atoms()
        reference.close()


def test_epoch_reset_releases_every_segment():
    edges = [edge(f"m{i}", f"m{i + 1}") for i in range(25)]
    before = shm_entries()
    _, promoted, _ = evaluate_parallel(edges)
    assert promoted > 0
    # The epoch hook retires the pool, which must also demote the buffers.
    TERMS.begin_epoch()
    assert promoted_stats() == (0, 0)
    leaked = shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def test_repeated_cycles_do_not_accumulate_segments():
    before = shm_entries()
    for cycle in range(3):
        edges = [edge(f"c{cycle}_{i}", f"c{cycle}_{i + 1}") for i in range(20)]
        evaluate_parallel(edges)
        shutdown_pool()
        leaked = shm_entries() - before
        assert not leaked, f"cycle {cycle} leaked: {sorted(leaked)}"
    assert promoted_stats() == (0, 0)


def _names(prefix):
    return {name for name in shm_entries() if name.startswith(prefix)}


def test_csr_seal_segments_rotate_and_release():
    """Each sync seals one ``repro-csr-*`` segment and unlinks its
    predecessor, so the live seal population never exceeds one per session —
    repeated pushes must rotate the segment, not accumulate a history."""
    edges = [edge(f"s{i}", f"s{i + 1}") for i in range(30)]
    before = shm_entries()
    with execution_mode("parallel", WORKERS):
        with parallel_threshold_override(0), shm_override(True), csr_override(True):
            session = DeltaSession(TC_PROGRAM, edges[:10])
            session.push(edges[10:20])
            first = _names("repro-csr-")
            assert len(first) == 1, sorted(first)
            session.push(edges[20:])
            second = _names("repro-csr-")
            assert len(second) == 1 and second != first, sorted(second)
            session.close()
    shutdown_pool()
    leaked = shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def test_result_rings_pooled_per_worker_and_released():
    """Workers ship match results through one persistent pooled ring each
    (``repro-res-*``), not one-shot segments — the population is bounded by
    the worker count across repeated dispatches and vanishes at shutdown."""
    edges = [edge(f"r{i}", f"r{i + 1}") for i in range(30)]
    before = shm_entries()
    with execution_mode("parallel", WORKERS):
        with parallel_threshold_override(0), shm_override(True):
            session = DeltaSession(TC_PROGRAM, edges[:10])
            session.push(edges[10:20])
            rings = _names("repro-res-")
            assert 0 < len(rings) <= WORKERS, sorted(rings)
            session.push(edges[20:])
            # Re-dispatching may regrow a ring (new name) but never mints
            # per-result one-shots: the bound stays the worker count.
            assert len(_names("repro-res-")) <= WORKERS
            session.close()
    shutdown_pool()
    leaked = shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def test_csr_off_leg_releases_every_segment():
    # The legacy rebuild protocol (REPRO_CSR=0) must stay leak-free too —
    # it is a supported CI leg, not a deprecated path.
    edges = [edge(f"o{i}", f"o{i + 1}") for i in range(25)]
    before = shm_entries()
    with csr_override(False):
        _, promoted, _ = evaluate_parallel(edges)
        assert promoted > 0
        shutdown_pool()
    leaked = shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"
