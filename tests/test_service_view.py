"""The materialized view: publication, epoch lifecycle, snapshot isolation.

The concurrent classes are the differential check ISSUE'd for this
subsystem: readers pinned to a published snapshot must see byte-identical
answers no matter how the single writer interleaves with them, and every
pinned state must equal a cold recompute of the corresponding push prefix.
"""

import threading

import pytest

from repro.datalog.semantics import INCONSISTENT
from repro.service import MaterializedView, StaleSnapshotError
from repro.sparql.parser import parse_sparql
from repro.translation.entailment_regime import evaluate_under_entailment
from repro.workloads.ontologies import university_graph

PERSON = parse_sparql("SELECT ?X WHERE { ?X rdf:type Person }")
WORKS = parse_sparql("SELECT ?X WHERE { ?X worksFor _:B }")


def small_graph():
    return university_graph(n_departments=1, students_per_department=3)


class TestPublication:
    def test_initial_snapshot_matches_oracle(self):
        graph = small_graph()
        with MaterializedView(graph) as view:
            for mode in ("U", "All"):
                assert view.query(PERSON, mode) == evaluate_under_entailment(
                    PERSON, graph, mode
                )

    def test_push_advances_watermark_and_answers(self):
        with MaterializedView(small_graph()) as view:
            before = view.query(PERSON)
            w0 = view.watermark
            result = view.push([("fresh_student", "rdf:type", "Student")])
            assert result.new_edb == 1
            assert view.watermark > w0
            after = view.query(PERSON)
            assert len(after) == len(before) + 1

    def test_pinned_snapshot_ignores_later_pushes(self):
        with MaterializedView(small_graph()) as view:
            with view.read() as snapshot:
                before = snapshot.query(PERSON)
                view.push([("late_student", "rdf:type", "Student")])
                # The pinned snapshot still answers from its frozen prefix.
                assert snapshot.query(PERSON) == before
            assert len(view.query(PERSON)) == len(before) + 1

    def test_inconsistent_push_reports_top(self):
        with MaterializedView(small_graph()) as view:
            assert view.consistent
            result = view.push(
                [
                    ("clash", "rdf:type", "Course"),
                    ("clash", "rdf:type", "Person"),
                    ("Course", "owl:disjointWith", "Person"),
                ]
            )
            assert not result.consistent
            assert not view.consistent
            assert view.query(PERSON) is INCONSISTENT


class TestEpochLifecycle:
    def test_rematerialize_preserves_answers_and_reclaims_nulls(self):
        from repro.engine.interning import TERMS

        with MaterializedView(small_graph()) as view:
            view.push([("s1", "rdf:type", "Student")])
            answers = {mode: view.query(WORKS, mode) for mode in ("U", "All")}
            nulls_before = TERMS.counts()[1]
            assert nulls_before > 0
            epoch_before = view.epoch
            new_epoch = view.rematerialize()
            assert new_epoch == epoch_before + 1
            assert view.epoch == new_epoch
            for mode in ("U", "All"):
                assert view.query(WORKS, mode) == answers[mode]

    def test_stale_snapshot_raises_after_rematerialize(self):
        with MaterializedView(small_graph()) as view:
            stale = view.current
            view.rematerialize()
            with pytest.raises(StaleSnapshotError):
                stale.query_ids(PERSON)

    def test_push_after_rematerialize_continues(self):
        with MaterializedView(small_graph()) as view:
            base = len(view.query(PERSON))
            view.rematerialize()
            view.push([("post_epoch", "rdf:type", "Student")])
            assert len(view.query(PERSON)) == base + 1


class TestRetraction:
    def test_retract_removes_answers_and_publishes(self):
        with MaterializedView(small_graph()) as view:
            view.push([("doomed", "rdf:type", "Student")])
            before = view.query(PERSON)
            result = view.retract([("doomed", "rdf:type", "Student")])
            assert result.removed_edb == 1
            assert result.overdeleted >= 1
            assert len(view.query(PERSON)) == len(before) - 1

    def test_pinned_snapshot_raises_after_retraction(self):
        # Regression: the engine tombstones rows in place, and a frozen
        # prefix view shares the live storage — a snapshot pinned before a
        # retraction used to keep answering, silently missing the deleted
        # rows.  It must fail as loudly as one pinned across an epoch reset.
        with MaterializedView(small_graph()) as view:
            view.push([("doomed", "rdf:type", "Student")])
            stale = view.current
            view.retract([("doomed", "rdf:type", "Student")])
            with pytest.raises(StaleSnapshotError):
                stale.query_ids(PERSON)

    def test_snapshot_published_after_retraction_is_valid(self):
        with MaterializedView(small_graph()) as view:
            view.push([("doomed", "rdf:type", "Student")])
            view.retract([("doomed", "rdf:type", "Student")])
            fresh = view.current
            assert fresh.query_ids(PERSON) == fresh.query_ids(PERSON)
            # And later pushes do not invalidate it (append-only isolation).
            view.push([("late", "rdf:type", "Student")])
            fresh.query_ids(PERSON)

    def test_retract_matches_cold_view_of_surviving_edb(self):
        graph = small_graph()
        batches = [
            [(f"s{i}", "rdf:type", "Student"), (f"s{i}", "worksFor", f"d{i % 2}")]
            for i in range(4)
        ]
        with MaterializedView(graph) as view:
            for batch in batches:
                view.push(batch)
            view.retract(batches[1])
            with MaterializedView(graph) as cold:
                for i, batch in enumerate(batches):
                    if i != 1:
                        cold.push(batch)
                for mode in ("U", "All"):
                    assert view.query(PERSON, mode) == cold.query(PERSON, mode)
            assert view.stats()["retractions"] == 1


class TestConcurrentSnapshotIsolation:
    """The differential read/write check: pinned reads are immovable."""

    BATCHES = [
        [(f"student_{i}", "rdf:type", "Student"), (f"student_{i}", "takesCourse", f"course_{i % 3}")]
        for i in range(12)
    ]

    def test_readers_see_only_published_prefixes(self):
        graph = small_graph()
        view = MaterializedView(graph)
        # watermark -> number of batches applied when it was published
        published = {view.watermark: 0}
        publish_lock = threading.Lock()
        errors = []
        observations = []
        done = threading.Event()

        def writer():
            try:
                for count, batch in enumerate(self.BATCHES, start=1):
                    view.push(batch)
                    with publish_lock:
                        published[view.watermark] = count
            except Exception as exc:  # pragma: no cover - surfaced via errors
                errors.append(exc)
            finally:
                done.set()

        def reader():
            try:
                while not done.is_set() or len(observations) < 4:
                    with view.read() as snapshot:
                        first = snapshot.query_ids(PERSON)
                        second = snapshot.query_ids(PERSON)
                        # Within one pinned snapshot the answer set cannot
                        # move, whatever the writer does meanwhile.
                        assert first == second
                        observations.append((snapshot.watermark, len(first)))
                    if len(observations) > 400:
                        break
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        view.close()
        assert not errors, errors

        # Every observed watermark is one the writer actually published, and
        # the answer cardinality at that watermark equals a cold recompute of
        # the corresponding push prefix.
        seen_watermarks = {watermark for watermark, _ in observations}
        assert seen_watermarks <= set(published)
        cold_sizes = {}
        for watermark, size in observations:
            count = published[watermark]
            if count not in cold_sizes:
                cold = MaterializedView(graph)
                for batch in self.BATCHES[:count]:
                    cold.push(batch)
                cold_sizes[count] = len(cold.query(PERSON))
                cold.close()
            assert size == cold_sizes[count], (watermark, count)

    def test_concurrent_reads_during_pushes_match_final_oracle(self):
        graph = small_graph()
        view = MaterializedView(graph)
        for batch in self.BATCHES:
            view.push(batch)
        final = view.query(PERSON)
        cold = MaterializedView(graph)
        for batch in self.BATCHES:
            cold.push(batch)
        assert cold.query(PERSON) == final
        view.close()
        cold.close()
