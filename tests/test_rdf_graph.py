"""Tests for the RDF graph substrate and tau_db."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant, Null
from repro.rdf.graph import RDFGraph, Triple, database_to_graph, graph_to_database, triple_atom
from repro.rdf.namespaces import OWL, RDF


class TestTriple:
    def test_string_coercion(self):
        triple = Triple("a", "knows", "b")
        assert triple.subject == Constant("a") and triple.object == Constant("b")

    def test_blank_node_coercion(self):
        triple = Triple("_:b1", "knows", "a")
        assert isinstance(triple.subject, Null)
        assert not triple.is_ground

    def test_to_atom(self):
        assert Triple("a", "p", "b").to_atom() == Atom(
            "triple", (Constant("a"), Constant("p"), Constant("b"))
        )
        assert triple_atom("a", "p", "b") == Triple("a", "p", "b").to_atom()

    def test_equality_and_hash(self):
        assert Triple("a", "p", "b") == Triple("a", "p", "b")
        assert len({Triple("a", "p", "b"), Triple("a", "p", "b")}) == 1

    def test_invalid_node_type(self):
        with pytest.raises(TypeError):
            Triple(3, "p", "b")


class TestRDFGraph:
    def test_add_and_len(self):
        graph = RDFGraph()
        assert graph.add(("a", "p", "b"))
        assert not graph.add(("a", "p", "b"))
        assert len(graph) == 1
        assert ("a", "p", "b") in graph

    def test_discard(self):
        graph = RDFGraph([("a", "p", "b")])
        assert graph.discard(("a", "p", "b"))
        assert len(graph) == 0

    def test_triples_lookup_by_components(self):
        graph = RDFGraph([("a", "p", "b"), ("a", "q", "c"), ("d", "p", "b")])
        assert len(list(graph.triples(subject="a"))) == 2
        assert len(list(graph.triples(predicate="p"))) == 2
        assert len(list(graph.triples(object="b"))) == 2
        assert len(list(graph.triples(subject="a", predicate="p"))) == 1
        assert list(graph.triples(subject="zzz")) == []

    def test_union(self):
        left = RDFGraph([("a", "p", "b")])
        right = RDFGraph([("c", "p", "d")])
        assert len(left | right) == 2

    def test_node_views(self):
        graph = RDFGraph([("a", "p", "b")])
        assert graph.subjects() == {Constant("a")}
        assert graph.predicates() == {Constant("p")}
        assert graph.objects() == {Constant("b")}
        assert graph.nodes() == {Constant("a"), Constant("p"), Constant("b")}

    def test_namespace_constants_work_as_nodes(self):
        graph = RDFGraph([("r1", RDF.type, OWL.Restriction)])
        assert ("r1", "rdf:type", "owl:Restriction") in graph


class TestTauDb:
    def test_graph_to_database(self):
        graph = RDFGraph([("a", "p", "b"), ("b", "q", "c")])
        database = graph_to_database(graph)
        assert len(database) == 2
        assert Atom("triple", (Constant("a"), Constant("p"), Constant("b"))) in database

    def test_blank_nodes_rejected_in_database(self):
        graph = RDFGraph([("_:b", "p", "a")])
        with pytest.raises(ValueError):
            graph.to_database()
        assert len(graph.to_instance()) == 1

    def test_database_to_graph_roundtrip(self):
        graph = RDFGraph([("a", "p", "b"), ("b", "q", "c")])
        assert database_to_graph(graph.to_database()) == graph

    def test_database_to_graph_ignores_other_predicates(self):
        facts = [
            Atom("triple", (Constant("a"), Constant("p"), Constant("b"))),
            Atom("other", (Constant("x"),)),
        ]
        assert len(database_to_graph(facts)) == 1
