"""Tests for the OWL 2 QL core entailment regimes (Sections 5.2-5.3)."""

import pytest

from repro.datalog.semantics import INCONSISTENT
from repro.datalog.terms import Variable
from repro.owl.dllite import DLLiteReasoner
from repro.owl.model import NamedClass, Ontology, inverse, some
from repro.owl.rdf_mapping import ontology_to_graph
from repro.sparql.mappings import Mapping
from repro.sparql.parser import parse_sparql
from repro.translation.entailment_regime import (
    entailment_regime_query,
    evaluate_under_entailment,
    translate_under_entailment,
)
from repro.workloads.graphs import section2_g3
from repro.workloads.ontologies import university_ontology

X = Variable("X")


def animal_graph():
    ontology = Ontology()
    ontology.assert_class("animal", "dog")
    ontology.sub_class("animal", some("eats"))
    return ontology_to_graph(ontology)


def herbivore_graph():
    ontology = Ontology()
    ontology.assert_class("animal", "dog")
    ontology.sub_class("animal", some("eats"))
    ontology.sub_class(some(inverse("eats")), "plant_material")
    return ontology_to_graph(ontology)


class TestSection52:
    def test_active_domain_semantics_misses_anonymous_witness(self):
        """⟦(?X, eats, _:B)⟧^U is empty on the animal graph (Section 5.2)."""
        query = parse_sparql("SELECT ?X WHERE { ?X eats _:B }")
        assert evaluate_under_entailment(query, animal_graph(), "U") == set()

    def test_rewritten_restriction_query_finds_dog(self):
        query = parse_sparql("SELECT ?X WHERE { ?X rdf:type some_eats }")
        answers = evaluate_under_entailment(query, animal_graph(), "U")
        assert answers == {Mapping({X: "dog"})}

    def test_section2_g3_authors_include_aho(self):
        """Over G3 the restriction encoding makes dbAho an author (Section 2)."""
        query = parse_sparql(
            """
            SELECT ?X WHERE {
              ?Y name ?X .
              ?Y rdf:type ?Z .
              ?Z rdf:type owl:Restriction .
              ?Z owl:onProperty is_author_of .
              ?Z owl:someValuesFrom owl:Thing
            }
            """
        )
        answers = evaluate_under_entailment(query, section2_g3(), "U")
        names = {mapping[X].value for mapping in answers}
        assert "Alfred Aho" in names and "Jeffrey Ullman" in names

    def test_translations_are_triq_lite_queries(self):
        """Corollaries 5.4 / 6.2."""
        query = parse_sparql("SELECT ?X WHERE { ?X eats _:B . ?X rdf:type animal }")
        for mode in ("U", "All"):
            triq_lite, translation = entailment_regime_query(query, mode)
            assert triq_lite.report.is_triq_lite
            assert translation.answer_variables == (X,)

    def test_fixed_program_is_shared_across_patterns(self):
        """The tau_owl2ql_core rules appear verbatim in every translation (black-box reuse)."""
        from repro.owl.entailment_rules import owl2ql_core_program

        fixed_rules = set(owl2ql_core_program().rules)
        for text in ("SELECT ?X WHERE { ?X eats _:B }", "SELECT ?X WHERE { ?X rdf:type animal }"):
            translation = translate_under_entailment(parse_sparql(text), "U")
            assert fixed_rules <= set(translation.program.rules)


class TestSection53:
    def test_all_semantics_finds_anonymous_witness(self):
        query = parse_sparql("SELECT ?X WHERE { ?X eats _:B }")
        answers = evaluate_under_entailment(query, animal_graph(), "All")
        assert answers == {Mapping({X: "dog"})}

    def test_herbivore_example(self):
        """Q = {(?X, eats, _:B), (_:B, rdf:type, plant_material)} from Section 5.3."""
        query = parse_sparql(
            "SELECT ?X WHERE { ?X eats _:B . _:B rdf:type plant_material }"
        )
        assert evaluate_under_entailment(query, herbivore_graph(), "U") == set()
        assert evaluate_under_entailment(query, herbivore_graph(), "All") == {
            Mapping({X: "dog"})
        }

    def test_all_subsumes_u_answers(self):
        """Every ⟦·⟧^U answer is also a ⟦·⟧^All answer (the converse fails)."""
        graph = ontology_to_graph(university_ontology(n_departments=1, students_per_department=4))
        for text in (
            "SELECT ?X WHERE { ?X rdf:type Person }",
            "SELECT ?X WHERE { ?X worksFor _:B }",
            "SELECT ?X WHERE { ?X takesCourse _:B }",
        ):
            query = parse_sparql(text)
            u_answers = evaluate_under_entailment(query, graph, "U")
            all_answers = evaluate_under_entailment(query, graph, "All")
            assert u_answers <= all_answers


class TestAgainstOracle:
    def test_class_queries_match_dllite_instances(self):
        ontology = university_ontology(n_departments=1, students_per_department=5)
        graph = ontology_to_graph(ontology)
        reasoner = DLLiteReasoner(ontology)
        for class_name in ("Person", "Student", "Faculty", "Employee", "Course"):
            query = parse_sparql(f"SELECT ?X WHERE {{ ?X rdf:type {class_name} }}")
            answers = evaluate_under_entailment(query, graph, "U")
            datalog_individuals = {mapping[X] for mapping in answers}
            oracle_individuals = set(reasoner.instances_of(NamedClass(class_name)))
            assert datalog_individuals == oracle_individuals, class_name

    def test_inconsistent_ontology_returns_top(self):
        ontology = Ontology()
        ontology.disjoint_classes("Cat", "Dog")
        ontology.assert_class("Cat", "felix").assert_class("Dog", "felix")
        query = parse_sparql("SELECT ?X WHERE { ?X rdf:type Cat }")
        assert evaluate_under_entailment(query, ontology_to_graph(ontology), "U") is INCONSISTENT

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            translate_under_entailment(parse_sparql("SELECT ?X WHERE { ?X p ?Y }"), "bogus")
