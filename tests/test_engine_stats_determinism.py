"""Counter determinism across runs and modes, and the pivot-skip regression.

The bench-smoke gate compares the :mod:`repro.engine.stats` counters against
a committed baseline recorded on a different machine, which is only sound if
the counters are (a) identical across repeated runs of the same scenario and
(b) identical between the row-at-a-time and batch executors.  This module
pins both properties, plus the cost-based pivot selection: semi-naive delta
rounds must skip pivots whose delta postings bucket is empty for a *bound*
term of the pivot atom, and count each skip in ``STATS.pivots_skipped``.
"""

import itertools

import pytest

from repro.core.warded_engine import WardedEngine
from repro.datalog.atoms import Atom
from repro.datalog.chase import ChaseEngine
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import SemiNaiveEvaluator
from repro.datalog.terms import Constant, Null
from repro.engine.mode import execution_mode, get_execution_mode, set_execution_mode
from repro.engine.stats import STATS
from repro.workloads.graphs import random_rdf_graph

C = Constant

TC_PROGRAM = """
    triple(?X, knows, ?Y) -> knows(?X, ?Y).
    knows(?X, ?Y) -> connected(?X, ?Y).
    connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
    knows(?X, ?Y), not connected(?Y, ?X) -> oneway(?X, ?Y).
"""

WARDED_PROGRAM = """
    triple(?X, knows, ?Y) -> knows(?X, ?Y).
    knows(?X, ?Y) -> exists ?Z . contact(?Y, ?Z).
    contact(?X, ?Z), knows(?W, ?X) -> reachable(?W, ?X).
"""


def counters_for(fn):
    """Gated (mode-independent) counters after a fresh run of ``fn``."""
    Null._counter = itertools.count()
    STATS.reset()
    fn()
    return STATS.gated()


def scenario_seminaive():
    database = random_rdf_graph(n_triples=100, n_nodes=16, seed=11).to_database()
    SemiNaiveEvaluator(parse_program(TC_PROGRAM)).evaluate(database)


def scenario_warded():
    database = random_rdf_graph(n_triples=60, n_nodes=12, seed=5).to_database()
    WardedEngine(parse_program(WARDED_PROGRAM)).materialise(database)


def scenario_chase():
    program = parse_program(
        "person(?X) -> exists ?Y . parent(?X, ?Y), person(?Y)."
    )
    database = [
        Atom("person", (C("alice"),)),
        Atom("parent", (C("alice"), C("bob"))),
        Atom("person", (C("bob"),)),
    ]
    ChaseEngine(max_null_depth=3, on_limit="stop").chase(database, program)


SCENARIOS = [scenario_seminaive, scenario_warded, scenario_chase]


class TestCounterDeterminism:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.__name__)
    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_repeated_runs_identical_within_mode(self, scenario, mode):
        with execution_mode(mode):
            first = counters_for(scenario)
            second = counters_for(scenario)
            third = counters_for(scenario)
        assert first == second == third
        assert first["facts_added"] > 0

    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.__name__)
    def test_modes_agree_on_gated_counters(self, scenario):
        with execution_mode("row"):
            row = counters_for(scenario)
        with execution_mode("batch"):
            batch = counters_for(scenario)
        assert row == batch

    def test_batch_instrumentation_only_moves_in_batch_mode(self):
        with execution_mode("row"):
            STATS.reset()
            scenario_seminaive()
            assert STATS.batch_probe_groups == 0
        with execution_mode("batch"):
            STATS.reset()
            scenario_seminaive()
            assert STATS.batch_probe_groups > 0


class TestExecutionModeToggle:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            set_execution_mode("vectorised")

    def test_context_manager_restores_previous_mode(self):
        before = get_execution_mode()
        with execution_mode("batch"):
            assert get_execution_mode() == "batch"
            with execution_mode("row"):
                assert get_execution_mode() == "row"
            assert get_execution_mode() == "batch"
        assert get_execution_mode() == before


class TestPivotSkipping:
    """Regression for the cost-based pivot selection (ROADMAP item).

    The program derives ``p`` facts whose second term is never ``flag``, so
    in every delta round the pivot plan for ``p(?X, flag)`` finds ``p`` in
    the delta but an empty ``(p, 1, flag)`` postings bucket — it must be
    skipped (and counted) rather than executed.
    """

    PROGRAM = """
        e(?X, ?Y) -> p(?X, ?Y).
        p(?X, ?Y), e(?Y, ?Z) -> p(?X, ?Z).
        p(?X, flag), p(?X, ?Y) -> out(?X, ?Y).
    """

    def database(self):
        chain = [C(f"n{i}") for i in range(6)]
        return [
            Atom("e", (chain[i], chain[i + 1])) for i in range(len(chain) - 1)
        ]

    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_empty_bound_term_bucket_skips_pivot(self, mode):
        program = parse_program(self.PROGRAM)
        with execution_mode(mode):
            STATS.reset()
            result = SemiNaiveEvaluator(program).evaluate(self.database())
        assert STATS.pivots_skipped > 0
        assert not any(atom.predicate == "out" for atom in result)

    def test_skip_counts_identical_across_modes(self):
        program = parse_program(self.PROGRAM)
        counts = {}
        for mode in ("row", "batch"):
            with execution_mode(mode):
                STATS.reset()
                SemiNaiveEvaluator(program).evaluate(self.database())
                counts[mode] = STATS.pivots_skipped
        assert counts["row"] == counts["batch"] > 0

    def test_skipping_never_loses_matches(self):
        # Same program, but now one chain edge does end in ``flag``: the
        # pivot becomes viable in the rounds that derive those p-facts and
        # the skip must not suppress any derivation.
        program = parse_program(self.PROGRAM)
        database = self.database() + [Atom("e", (C("n5"), C("flag")))]
        results = {}
        for mode in ("row", "batch"):
            with execution_mode(mode):
                STATS.reset()
                results[mode] = SemiNaiveEvaluator(program).evaluate(database)
        assert list(results["row"]) == list(results["batch"])
        derived = set(results["batch"])
        # n0..n5 all reach flag, so every prefix node emits out-facts.
        assert Atom("out", (C("n0"), C("flag"))) in derived
        assert any(
            atom == Atom("out", (C("n0"), C("n1"))) for atom in derived
        )


class TestSlotBoundPivotSkipping:
    """Regression for the slot-bound half of pivot viability (ROADMAP item).

    ``d(?X), r(?X, ?Z) -> out(?Z)`` has a pivot on ``d`` with **no constant
    probes** — the empty-bucket test of :class:`TestPivotSkipping` cannot
    fire.  But the second step probes ``r[0]`` with the slot bound at
    ``d[0]``, so the per-round bound-value summary of the delta's ``d``
    column decides viability: when no derived ``d`` value ever occurs in
    ``r[0]``, the pivot join provably has no match and must be skipped (and
    counted) in every mode.
    """

    PROGRAM = """
        e(?X, ?Y) -> d(?Y).
        d(?X), r(?X, ?Z) -> out(?Z).
    """

    def database(self, overlap=False):
        facts = [Atom("e", (C("a"), C(f"y{i}"))) for i in range(5)] + [
            Atom("r", (C(f"z{i}"), C("w"))) for i in range(5)
        ]
        if overlap:
            facts.append(Atom("r", (C("y3"), C("hit"))))
        return facts

    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_dead_end_slot_probe_skips_pivot(self, mode):
        program = parse_program(self.PROGRAM)
        with execution_mode(mode):
            STATS.reset()
            result = SemiNaiveEvaluator(program).evaluate(self.database())
        assert STATS.pivots_skipped > 0
        assert not any(atom.predicate == "out" for atom in result)

    def test_skip_counts_identical_across_modes(self):
        program = parse_program(self.PROGRAM)
        counts = {}
        for mode in ("row", "batch"):
            with execution_mode(mode):
                STATS.reset()
                SemiNaiveEvaluator(program).evaluate(self.database())
                counts[mode] = STATS.pivots_skipped
        assert counts["row"] == counts["batch"] > 0

    def test_overlapping_value_keeps_the_pivot_and_the_match(self):
        # One derived d-value does occur in r[0]: the summary test must keep
        # the pivot viable and the derivation must appear in every mode.
        program = parse_program(self.PROGRAM)
        results = {}
        for mode in ("row", "batch"):
            with execution_mode(mode):
                STATS.reset()
                results[mode] = SemiNaiveEvaluator(program).evaluate(
                    self.database(overlap=True)
                )
        assert list(results["row"]) == list(results["batch"])
        assert Atom("out", (C("hit"),)) in set(results["batch"])

    def test_wide_summaries_do_not_skip(self):
        # More distinct delta values than the summary cap: the viability test
        # must conservatively keep the pivot (and stay mode-identical).
        from repro.engine.index import _SUMMARY_CAP

        n = _SUMMARY_CAP + 20
        program = parse_program(self.PROGRAM)
        database = [Atom("e", (C("a"), C(f"y{i}"))) for i in range(n)] + [
            Atom("r", (C("y0"), C("hit")))
        ]
        results = {}
        for mode in ("row", "batch"):
            with execution_mode(mode):
                STATS.reset()
                results[mode] = SemiNaiveEvaluator(program).evaluate(database)
        assert list(results["row"]) == list(results["batch"])
        assert Atom("out", (C("hit"),)) in set(results["batch"])
